//! # ft-hypercube-sort
//!
//! Meta-crate of the reproduction of *"Fault-Tolerant Sorting Algorithm on
//! Hypercube Multicomputers"* (Sheu, Chen & Chang, ICPP 1992).
//!
//! Re-exports the two library crates:
//! * [`hypercube`] — the simulated hypercube multicomputer substrate;
//! * [`ftsort`] — the paper's algorithms (single-fault bitonic sort,
//!   partition algorithm, fault-tolerant sort, MFFS baseline).
//!
//! See the `examples/` directory for runnable walkthroughs, including a
//! reproduction of the paper's worked Examples 1 and 2.

#![warn(missing_docs)]

pub use ftsort;
pub use hypercube;

/// Crate-level convenience prelude re-exporting both sub-preludes.
pub mod prelude {
    pub use ftsort::prelude::*;
}
