//! Monte-Carlo fault-campaign CLI — the fleet-scale counterpart of
//! `ftsort-cli sort`.
//!
//! ```text
//! ftsort-campaign [--sizes 5,6] [--fault-counts 3] [--runs 256] [--m 4000]
//!                 [--seed 1992] [--jobs N] [--key-type u32|u64|i64|pair]
//!                 [--link-model uncontended|contended] [--out report.json]
//!                 [--capture-dir DIR] [--metrics-snapshot prom.txt]
//! ```
//!
//! Executes `--runs` seeded fault placements per (n, fault-count) cell
//! across a `--jobs`-wide std-thread pool (per-run seeds derive from
//! `--seed` alone, so the job count never changes a draw), streams every
//! run's summary into the online aggregators of
//! [`hypercube::obs::campaign`], and prints Table-1-style distribution
//! tables per cell. `--out` writes the versioned [`CampaignReport`] JSON
//! — byte-identical across `--jobs` values and invocations, the property
//! `tests/campaign_determinism.rs` and CI pin. `--capture-dir` re-executes
//! every outlier (≥ ~p99 makespan of its cell) and each cell's median
//! exemplar with a streaming sink, capturing gzip v2 run files plus their
//! live `RunReport` JSONs for `ftsort-cli replay`/`trace-diff` forensics.
//! `--metrics-snapshot` installs the global metrics registry and writes a
//! Prometheus snapshot once the campaign is half done (live progress:
//! runs-completed counter, per-cell makespan histograms), refreshing it at
//! completion.
//!
//! Progress goes to stderr; tables and the summary go to stdout.
//!
//! [`CampaignReport`]: hypercube::obs::campaign::CampaignReport

use ft_bench::campaign::{run_campaign, CampaignConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut key: Option<String> = None;
    for a in std::env::args().skip(1) {
        if let Some(stripped) = a.strip_prefix("--") {
            if let Some(k) = key.take() {
                flags.insert(k, String::from("true"));
            }
            key = Some(stripped.to_string());
        } else if let Some(k) = key.take() {
            flags.insert(k, a);
        } else {
            eprintln!("unexpected argument: {a}");
            return ExitCode::from(2);
        }
    }
    if let Some(k) = key.take() {
        flags.insert(k, String::from("true"));
    }

    match run(&flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(flags: &HashMap<String, String>) -> Result<(), String> {
    let known = [
        "sizes",
        "fault-counts",
        "runs",
        "m",
        "seed",
        "jobs",
        "key-type",
        "link-model",
        "out",
        "capture-dir",
        "metrics-snapshot",
    ];
    for k in flags.keys() {
        if !known.contains(&k.as_str()) {
            return Err(format!("unknown flag --{k} (known: {})", known.join(", ")));
        }
    }

    let sizes = parse_list(flags.get("sizes").map(String::as_str).unwrap_or("5"))?;
    let fault_counts = parse_list(flags.get("fault-counts").map(String::as_str).unwrap_or("3"))?;
    let key_type = match flags.get("key-type") {
        Some(v) => ftsort::seq::KeyType::parse(v)?,
        None => ftsort::seq::KeyType::default(),
    };
    let link_model = match flags.get("link-model") {
        Some(v) => hypercube::sim::LinkModel::parse(v)
            .ok_or_else(|| format!("unknown link model '{v}' (uncontended|contended)"))?,
        None => hypercube::sim::LinkModel::default(),
    };
    let cfg = CampaignConfig {
        sizes,
        fault_counts,
        runs_per_cell: flag(flags, "runs", "256")?,
        m_total: flag(flags, "m", "4000")?,
        seed: flag(flags, "seed", "1992")?,
        jobs: flag(
            flags,
            "jobs",
            &std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .to_string(),
        )?,
        key_type,
        link_model,
        capture_dir: flags.get("capture-dir").map(PathBuf::from),
    };
    if cfg.jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }

    // Telemetry attaches before anything it observes is constructed.
    let snapshot = flags.get("metrics-snapshot");
    if snapshot.is_some() {
        hypercube::obs::metrics::install_global();
    }

    // Progress to stderr; the mid-campaign Prometheus snapshot fires once
    // the pool crosses the halfway mark (and is refreshed at the end).
    let mut snapshot_written = false;
    let mut last_reported = usize::MAX;
    let outcome = run_campaign(&cfg, &mut |done, total| {
        if done != last_reported && (done == total || done % 32 == 0) {
            eprintln!("campaign: {done}/{total} runs");
            last_reported = done;
        }
        if !snapshot_written && done * 2 >= total {
            if let (Some(path), Some(g)) = (snapshot, hypercube::obs::metrics::global()) {
                std::fs::write(path, g.registry.render_prom())
                    .unwrap_or_else(|e| eprintln!("warning: metrics snapshot {path}: {e}"));
            }
            snapshot_written = true;
        }
    })?;

    for (n, r) in &outcome.skipped_cells {
        println!("skipped cell n={n} r={r}: r > n - 1 (no guaranteed single-fault structure)");
    }
    print!("{}", outcome.report.tables());
    if !outcome.captures.is_empty() {
        println!(
            "\ncaptured {} run file(s) for forensics (replay with ftsort-cli replay --trace <file>):",
            outcome.captures.len()
        );
        for path in &outcome.captures {
            println!("  {}", path.display());
        }
    }
    if let Some(out) = flags.get("out") {
        std::fs::write(out, outcome.report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("campaign report written: {out}");
    }
    if let (Some(path), Some(g)) = (snapshot, hypercube::obs::metrics::global()) {
        std::fs::write(path, g.registry.render_prom())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics snapshot written: {path}");
    }
    Ok(())
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    flags
        .get(key)
        .map(String::as_str)
        .unwrap_or(default)
        .parse()
        .map_err(|e| format!("bad --{key}: {e}"))
}

fn parse_list(spec: &str) -> Result<Vec<usize>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|e| format!("bad list entry '{s}': {e}"))
        })
        .collect()
}
