//! `ftsort-cli` — drive the simulated faulty hypercube from the command
//! line: plan partitions, sort workloads, diagnose syndromes, inspect
//! routes.
//!
//! ```text
//! ftsort-cli partition   --n 5 --faults 3,5,16,24
//! ftsort-cli sort        --n 6 --faults 9,22 --m 100000 [--protocol full] [--step8 fullsort] [--engine threaded|seq|par]
//!                        [--key-type u32|u64|i64|pair] [--threads N] [--link-model uncontended|contended]
//!                        [--trace-out trace.json] [--metrics-out report.json] [--run-out run.json[.gz]]
//!                        [--sched-profile] [--sched-out sched.json]
//!                        [--metrics-snapshot prom.txt] [--log-level info] [--log-out log.jsonl]
//! ftsort-cli mffs        --n 6 --faults 9,22 --m 100000
//! ftsort-cli route       --n 4 --faults 1,2 --model total --from 0 --to 3
//! ftsort-cli diagnose    --n 5 --faults 3,5,16 [--seed 7]
//! ftsort-cli trace-check --trace trace.json --metrics report.json --prom prom.txt
//! ftsort-cli replay      --trace run.json [--recost default|paper|t_sr=..,t_c=..,t_startup=..]
//!                        [--link-model uncontended|contended]
//!                        [--metrics-out report.json] [--trace-out trace.json]
//!                        [--run-out run.json] [--critical-path] [--width 72]
//! ftsort-cli trace-diff  --a run_a.json --b run_b.json
//! ```
//!
//! `--trace-out` writes Chrome-trace-event JSON loadable in
//! <https://ui.perfetto.dev>; `--metrics-out` writes the aggregate
//! [`RunReport`](hypercube::obs::RunReport); `--run-out` streams a
//! replayable run file to disk as the engine emits events (O(1) memory) —
//! a `.gz` suffix gzip-compresses it on the fly, and `replay`/`trace-diff`
//! sniff the compression back off by magic bytes.
//! `--sched-profile` attaches the wall-clock scheduler profiler to a
//! `--engine par` sort and prints the per-worker summary and ASCII
//! timeline; `--sched-out` additionally writes the
//! [`SchedReport`](hypercube::obs::sched::SchedReport) JSON plus a
//! `<path>.perfetto.json` worker-timeline trace (one track per worker,
//! steal flows, runnable-queue counters). Profiling observes the host
//! scheduler only — sorted output, reports and run files stay
//! byte-identical with it on or off.
//! `--key-type` picks the sorted key type (default `i64`; `pair` sorts
//! 16-byte key+payload records) — recorded in the `--metrics-out` report.
//! `--metrics-snapshot` turns on the live telemetry layer
//! ([`hypercube::obs::metrics`]) for the run and writes a
//! Prometheus-exposition snapshot of every registered counter, gauge and
//! histogram after the sort; `--log-level`/`--log-out` install the
//! structured JSON-lines logger ([`hypercube::obs::log`]). Both observe
//! the host only — sorted output, reports and run files stay
//! byte-identical with telemetry on or off.
//! `trace-check` re-parses the exports and validates trace invariants
//! (used by CI as an end-to-end check of the observability pipeline);
//! `--prom` validates a metrics snapshot (family declarations, duplicate
//! series, histogram bucket monotonicity).
//! `replay` rebuilds the full observation from a run file offline — the
//! report, Perfetto export and critical-path analysis it produces are
//! byte-identical to the live run's. `--recost` / `--link-model` re-price
//! the recorded schedule under a different cost model and/or link model;
//! because the sorts are data-oblivious the result is bit-identical to a
//! live run under the target pricing. `trace-diff` aligns two runs'
//! critical paths and attributes the makespan delta to (phase, link)
//! segments — including `wait dim j` buckets for contended runs.

use ftsort::prelude::*;
use hypercube::diagnosis::Syndrome;
use hypercube::routing;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!(
            "usage: ftsort-cli <partition|sort|mffs|route|diagnose|trace-check|replay|trace-diff> [--flags]"
        );
        return ExitCode::from(2);
    };
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(stripped) = a.strip_prefix("--") {
            if let Some(k) = key.take() {
                flags.insert(k, String::from("true"));
            }
            key = Some(stripped.to_string());
        } else if let Some(k) = key.take() {
            flags.insert(k, a);
        } else {
            eprintln!("unexpected argument: {a}");
            return ExitCode::from(2);
        }
    }
    if let Some(k) = key.take() {
        flags.insert(k, String::from("true"));
    }

    match run(&cmd, &flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    if cmd == "trace-check" {
        return trace_check_cmd(flags);
    }
    if cmd == "replay" {
        return replay_cmd(flags);
    }
    if cmd == "trace-diff" {
        return trace_diff_cmd(flags);
    }
    let n: usize = flag(flags, "n", "6")?;
    let cube = Hypercube::new(n);
    let fault_list: Vec<u32> = match flags.get("faults") {
        Some(s) if !s.is_empty() && s != "true" => s
            .split(',')
            .map(|x| {
                x.trim()
                    .parse()
                    .map_err(|e| format!("bad fault '{x}': {e}"))
            })
            .collect::<Result<_, _>>()?,
        _ => Vec::new(),
    };
    let model = match flags.get("model").map(String::as_str) {
        Some("total") => FaultModel::Total,
        Some("partial") | None => FaultModel::Partial,
        Some(other) => return Err(format!("unknown fault model '{other}'")),
    };
    let faults = FaultSet::from_raw(cube, &fault_list).with_model(model);

    match cmd {
        "partition" => partition_cmd(&faults),
        "sort" => sort_cmd(&faults, flags),
        "mffs" => mffs_cmd(&faults, flags),
        "route" => route_cmd(&faults, flags),
        "diagnose" => diagnose_cmd(&faults, flags),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    flags
        .get(key)
        .map(String::as_str)
        .unwrap_or(default)
        .parse()
        .map_err(|e| format!("bad --{key}: {e}"))
}

fn partition_cmd(faults: &FaultSet) -> Result<(), String> {
    let plan = FtPlan::new(faults).map_err(|e| e.to_string())?;
    let n = faults.cube().dim();
    println!("Q{n} with {} faults {:?}", faults.count(), faults.to_vec());
    println!("mincut m = {}", plan.partition().mincut);
    println!("cutting set Ψ (α = {}):", plan.partition().alpha());
    for d in &plan.partition().cutting_set {
        let (per_dim, cost) = ftsort::select::extra_comm_cost(faults, d);
        println!("  {d:?}  cost {cost}  per-dim {per_dim:?}");
    }
    println!(
        "selected D_β = {:?} (cost {}), dangling local w* = {:0width$b}",
        plan.selection().dims,
        plan.selection().cost,
        plan.selection().dangling_local,
        width = plan.structure().s().max(1),
    );
    for info in plan.structure().subcubes() {
        let dead = plan
            .structure()
            .dead_physical(info.v)
            .map(|p| p.raw().to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "  v={:0width$b}  {}  dead={}",
            info.v,
            info.subcube,
            dead,
            width = plan.structure().m().max(1)
        );
    }
    println!(
        "live N' = {} of {} normal ({:.1}% utilization)",
        plan.live_count(),
        faults.normal_count(),
        plan.utilization() * 100.0
    );
    Ok(())
}

fn parse_link_model(flags: &HashMap<String, String>) -> Result<Option<LinkModel>, String> {
    match flags.get("link-model") {
        None => Ok(None),
        Some(s) => LinkModel::parse(s)
            .map(Some)
            .ok_or_else(|| format!("unknown link model '{s}' (uncontended|contended)")),
    }
}

fn parse_protocol(flags: &HashMap<String, String>) -> Result<Protocol, String> {
    match flags.get("protocol").map(String::as_str) {
        Some("full") => Ok(Protocol::FullExchange),
        Some("half") | None => Ok(Protocol::HalfExchange),
        Some(other) => Err(format!("unknown protocol '{other}' (full|half)")),
    }
}

fn sort_cmd(faults: &FaultSet, flags: &HashMap<String, String>) -> Result<(), String> {
    use ftsort::seq::{KeyPair, KeyType};
    let m_total: usize = flag(flags, "m", "100000")?;
    let seed: u64 = flag(flags, "seed", "1992")?;
    let key_type = match flags.get("key-type") {
        None => KeyType::default(),
        Some(s) => KeyType::parse(s)?,
    };
    // Monomorphic dispatch: each key type gets its own specialized engine
    // and branchless-kernel instantiation.
    let mut rng = StdRng::seed_from_u64(seed);
    match key_type {
        KeyType::U32 => {
            let data: Vec<u32> = (0..m_total).map(|_| rng.random()).collect();
            run_sort(faults, flags, key_type, data)
        }
        KeyType::U64 => {
            let data: Vec<u64> = (0..m_total).map(|_| rng.random()).collect();
            run_sort(faults, flags, key_type, data)
        }
        KeyType::I64 => {
            let data: Vec<i64> = (0..m_total).map(|_| rng.random()).collect();
            run_sort(faults, flags, key_type, data)
        }
        KeyType::Pair => {
            let data: Vec<KeyPair> = (0..m_total)
                .map(|_| KeyPair::new(rng.random(), rng.random()))
                .collect();
            run_sort(faults, flags, key_type, data)
        }
    }
}

fn run_sort<K: ftsort::seq::Key>(
    faults: &FaultSet,
    flags: &HashMap<String, String>,
    key_type: ftsort::seq::KeyType,
    data: Vec<K>,
) -> Result<(), String> {
    let m_total = data.len();
    let protocol = parse_protocol(flags)?;
    let step8 = match flags.get("step8").map(String::as_str) {
        Some("fullsort") => Step8Strategy::FullSort,
        Some("merge") | None => Step8Strategy::BitonicMerge,
        Some(other) => return Err(format!("unknown step8 '{other}' (merge|fullsort)")),
    };
    let engine = match flags.get("engine") {
        None => EngineKind::default(),
        Some(s) => EngineKind::parse(s)
            .ok_or_else(|| format!("unknown engine '{s}' (threaded|seq|par)"))?,
    };
    let link_model = parse_link_model(flags)?.unwrap_or_default();
    let threads: Option<usize> = match flags.get("threads") {
        None => None,
        Some(s) => {
            let t: usize = s.parse().map_err(|e| format!("bad --threads: {e}"))?;
            if t == 0 {
                return Err("bad --threads: must be at least 1".into());
            }
            Some(t)
        }
    };
    let plan = FtPlan::new(faults).map_err(|e| e.to_string())?;
    let trace_out = flags.get("trace-out");
    let metrics_out = flags.get("metrics-out");
    let run_out = flags.get("run-out");
    let sched_out = flags.get("sched-out");
    let sched_wanted = sched_out.is_some() || flags.contains_key("sched-profile");
    let metrics_snapshot = flags.get("metrics-snapshot");
    // Telemetry attaches before anything it observes is constructed:
    // engines, pools and sinks resolve the global registry at build time.
    if metrics_snapshot.is_some() {
        hypercube::obs::metrics::install_global();
    }
    init_logging(flags)?;
    let config = FtConfig {
        protocol,
        step8,
        engine,
        link_model,
        include_host_io: flags.contains_key("host-io"),
        tracing: trace_out.is_some(),
        threads,
        ..FtConfig::default()
    };
    use hypercube::obs::sink::TraceSink;
    use std::sync::{Arc, Mutex};
    let sink: Option<Arc<Mutex<dyn TraceSink>>> = match run_out {
        None => None,
        Some(path) => {
            use hypercube::obs::sink::StreamingSink;
            let mut sink =
                StreamingSink::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            // Stamp the key type into the run-file header so offline
            // replay reproduces the keyed RunReport byte-for-byte.
            sink.set_key_type(key_type.as_str());
            Some(Arc::new(Mutex::new(sink)))
        }
    };
    let profiler = sched_wanted.then(|| Arc::new(hypercube::obs::sched::SchedProfiler::new()));
    // A stats-carrying pool only when telemetry is on, so the plain path
    // keeps the library default (no counters at all).
    let pool = metrics_snapshot
        .map(|_| hypercube::sim::BufferPool::<ftsort::distribute::Padded<K>>::with_stats());
    {
        use hypercube::obs::log::{info, Value};
        info(
            "ftsort::cli",
            "sort starting",
            &[
                ("n", Value::from(faults.cube().dim() as u64)),
                ("faults", Value::from(faults.count() as u64)),
                ("keys", Value::from(m_total as u64)),
                (
                    "engine",
                    Value::from(flags.get("engine").map_or("default", String::as_str)),
                ),
            ],
        );
    }
    let (out, phases, obs) = fault_tolerant_sort_instrumented(
        &plan,
        &config,
        data,
        sink,
        pool.as_ref(),
        profiler.clone(),
    );
    {
        use hypercube::obs::log::{info, Value};
        info(
            "ftsort::cli",
            "sort complete",
            &[
                ("keys", Value::from(m_total as u64)),
                ("processors", Value::from(out.processors_used as u64)),
                ("time_us", Value::from(out.time_us)),
                ("messages", Value::from(out.stats.messages)),
            ],
        );
    }
    if !out.sorted.windows(2).all(|w| w[0] <= w[1]) {
        return Err("output not sorted — this is a bug".into());
    }
    println!(
        "sorted {} keys on {} live processors of Q{} ({} faults)",
        m_total,
        out.processors_used,
        faults.cube().dim(),
        faults.count()
    );
    println!("simulated time : {:>12.1} ms", out.time_us / 1000.0);
    println!(
        "  scatter      : {:>12.1} ms",
        phases.host_scatter_us / 1000.0
    );
    println!("  step 3       : {:>12.1} ms", phases.step3_us / 1000.0);
    println!("  step 7       : {:>12.1} ms", phases.step7_us / 1000.0);
    println!("  step 8       : {:>12.1} ms", phases.step8_us / 1000.0);
    println!(
        "  gather       : {:>12.1} ms",
        phases.host_gather_us / 1000.0
    );
    println!("messages       : {:>12}", out.stats.messages);
    println!("element·hops   : {:>12}", out.stats.element_hops);
    println!("comparisons    : {:>12}", out.stats.comparisons);
    if link_model == LinkModel::Contended {
        let wait: f64 = obs.participants().map(|n| n.metrics.link_wait_us).sum();
        println!("link wait      : {:>12.1} ms", wait / 1000.0);
    }
    if let Some(path) = trace_out {
        let json = hypercube::obs::perfetto::perfetto_json(&obs, &phase_name);
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace written  : {path} (load in ui.perfetto.dev)");
    }
    if let Some(path) = metrics_out {
        let mut report = obs.report(&phase_name).with_key_type(key_type.as_str());
        if let Some(threads) = threads {
            // Record the effective schedule too: the par engine clamps the
            // worker count to the shard count (`schedule_for`).
            let (workers_effective, shard_size, _) =
                hypercube::sim::par::schedule_for(report.nodes.len(), Some(threads), None);
            report = report
                .with_threads(threads)
                .with_schedule(workers_effective, shard_size);
        }
        if let Some(counters) = pool.as_ref().and_then(|p| p.stats()).map(|s| s.counters()) {
            report =
                report.with_pool_stats(counters.takes, counters.puts, counters.slab_high_water);
        }
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics written: {path}");
    }
    if let Some(path) = run_out {
        println!("run written    : {path} (ftsort-cli replay --trace {path})");
    }
    if let Some(profiler) = profiler {
        match profiler.take() {
            Some(profile) => {
                let report = profile.report();
                if let Some(path) = sched_out {
                    std::fs::write(path, report.to_json())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    println!("sched written  : {path}");
                    let trace_path = format!("{path}.perfetto.json");
                    std::fs::write(&trace_path, profile.perfetto_json())
                        .map_err(|e| format!("writing {trace_path}: {e}"))?;
                    println!("sched trace    : {trace_path} (load in ui.perfetto.dev)");
                }
                print!("{}", report.summary());
                print!("{}", profile.timeline(64));
            }
            // Only the par engine has a work-stealing scheduler; other
            // engines ignore the profiler, so the flag had no effect.
            None => println!(
                "sched profile  : no scheduler to profile (--sched-profile needs --engine par)"
            ),
        }
    }
    if let Some(path) = metrics_snapshot {
        let global = hypercube::obs::metrics::global().expect("registry installed above");
        std::fs::write(path, global.registry.render_prom())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics snapshot: {path} (ftsort-cli trace-check --prom {path})");
    }
    Ok(())
}

/// Installs the structured logger when `--log-level` / `--log-out` ask
/// for one: records go to the `--log-out` file as JSON lines, or to
/// stderr without it. Level defaults to `info`.
fn init_logging(flags: &HashMap<String, String>) -> Result<(), String> {
    use hypercube::obs::log::{init, init_stderr, set_level, Level};
    let level = match flags.get("log-level") {
        None => None,
        Some(s) => Some(
            Level::parse(s)
                .ok_or_else(|| format!("unknown log level '{s}' (error|warn|info|debug|trace)"))?,
        ),
    };
    let out = flags.get("log-out");
    if level.is_none() && out.is_none() {
        return Ok(());
    }
    let level = level.unwrap_or(Level::Info);
    let installed = match out {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            init(level, Box::new(file))
        }
        None => init_stderr(level),
    };
    if !installed {
        // A logger already existed (first init wins the writer); still
        // honor the requested level.
        set_level(level);
    }
    Ok(())
}

/// Rebuilds a [`RunObservation`](hypercube::obs::RunObservation) from a
/// run file written by `sort --run-out` and reruns the offline analyzers
/// on it: `--metrics-out` the [`RunReport`](hypercube::obs::RunReport),
/// `--trace-out` the Perfetto export, `--critical-path` the same report
/// the `critical_path` bench binary prints — all byte-identical to what
/// the live run produces. `--recost MODEL` first re-prices every event
/// under a different [`CostModel`](hypercube::cost::CostModel) (see
/// [`recost`](hypercube::obs::replay::recost)); the analyzers then run on
/// the re-priced observation, and `--run-out` writes it back as a run
/// file. `--link-model` re-prices the schedule under a different link
/// model (contended ↔ uncontended), composably with `--recost`.
fn replay_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("trace")
        .ok_or("replay needs --trace FILE (a run file from sort --run-out)")?;
    let obs = hypercube::obs::replay::observation_from_file(path)?;
    println!(
        "replayed {path}: Q{} run, {} participants, {} trace events, makespan {:.1} us",
        obs.dim,
        obs.participants().count(),
        obs.trace.events().len(),
        obs.makespan()
    );
    let new_model = parse_link_model(flags)?;
    let obs = match (flags.get("recost"), new_model) {
        (None, None) => obs,
        (spec, model) => {
            let target = match spec {
                None => obs.cost,
                Some(spec) => parse_cost_spec(spec, obs.cost)?,
            };
            let model = model.unwrap_or(obs.link_model);
            let repriced = if model == obs.link_model {
                hypercube::obs::replay::recost(&obs, target)
            } else {
                hypercube::obs::schedule::reprice(&obs, target, model)
            }
            .map_err(|e| format!("{path}: {e}"))?;
            if model != obs.link_model {
                println!("link model     : {} -> {}", obs.link_model, model);
            }
            println!(
                "recosted       : (t_sr {}, t_c {}, t_startup {}) -> (t_sr {}, t_c {}, t_startup {}), makespan {:.1} -> {:.1} us",
                obs.cost.t_sr,
                obs.cost.t_c,
                obs.cost.t_startup,
                target.t_sr,
                target.t_c,
                target.t_startup,
                obs.makespan(),
                repriced.makespan()
            );
            repriced
        }
    };
    if let Some(out) = flags.get("run-out") {
        hypercube::obs::replay::write_run_file(&obs, out)
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("run written    : {out} (ftsort-cli replay --trace {out})");
    }
    if let Some(out) = flags.get("metrics-out") {
        let report = obs.report(&phase_name);
        std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("metrics written: {out}");
    }
    if let Some(out) = flags.get("trace-out") {
        let json = hypercube::obs::perfetto::perfetto_json(&obs, &phase_name);
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("trace written  : {out} (load in ui.perfetto.dev)");
    }
    if flags.contains_key("critical-path") {
        let width: usize = flag(flags, "width", "72")?;
        let cp = hypercube::obs::critical_path::CriticalPath::compute(&obs)
            .ok_or("no trace events in the run file — was the sort traced?")?;
        print!(
            "{}",
            hypercube::obs::critical_path::render_report(&obs, &cp, &phase_name, width)
        );
    }
    Ok(())
}

/// Parses a `--recost` model spec: `default` (the simulator's calibrated
/// iPSC/2-style constants), `paper` (the paper's analytic form, zero
/// startup), or comma-separated `t_sr=..`/`t_c=..`/`t_startup=..`
/// overrides applied on top of the run file's own cost model.
fn parse_cost_spec(
    spec: &str,
    base: hypercube::cost::CostModel,
) -> Result<hypercube::cost::CostModel, String> {
    match spec {
        "default" => Ok(hypercube::cost::CostModel::default()),
        "paper" => Ok(hypercube::cost::CostModel::paper_form()),
        _ => {
            let mut cost = base;
            for part in spec.split(',') {
                let (key, value) = part
                    .split_once('=')
                    .ok_or_else(|| format!("bad --recost component '{part}' (want key=value)"))?;
                let parsed: f64 = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad --recost value '{value}' for {key}: {e}"))?;
                match key.trim() {
                    "t_sr" => cost.t_sr = parsed,
                    "t_c" => cost.t_c = parsed,
                    "t_startup" => cost.t_startup = parsed,
                    other => {
                        return Err(format!(
                            "unknown --recost field '{other}' (t_sr|t_c|t_startup)"
                        ))
                    }
                }
            }
            Ok(cost)
        }
    }
}

/// Replays two run files and aligns their critical paths segment by
/// segment (bucketed by covering phase and link class), attributing 100%
/// of the makespan delta to named segments.
fn trace_diff_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    use hypercube::obs::critical_path::CriticalPath;
    use hypercube::obs::diff::{render_diff, SegmentProfile};
    let profile = |key: &str| -> Result<(String, SegmentProfile), String> {
        let path = flags
            .get(key)
            .ok_or(format!("trace-diff needs --{key} FILE"))?;
        let obs = hypercube::obs::replay::observation_from_file(path)?;
        let cp = CriticalPath::compute(&obs)
            .ok_or(format!("{path}: no trace events — was the sort traced?"))?;
        Ok((
            path.clone(),
            SegmentProfile::collect(&obs, &cp, &phase_name),
        ))
    };
    let (label_a, a) = profile("a")?;
    let (label_b, b) = profile("b")?;
    print!("{}", render_diff(&a, &b, &label_a, &label_b));
    Ok(())
}

/// Validates a `--trace-out` / `--metrics-out` pair written by `sort`:
/// the trace must be valid Chrome-trace JSON whose flow events pair up
/// (every `f` preceded by its `s`, no dangling ids) and whose counter
/// tracks stay sane (see
/// [`validate_chrome_trace`](hypercube::obs::perfetto::validate_chrome_trace)),
/// and the report must round-trip through
/// [`RunReport::from_json`](hypercube::obs::RunReport). `--prom`
/// validates a `--metrics-snapshot` exposition file with
/// [`validate_prom`](hypercube::obs::metrics::validate_prom): every
/// sample declared by a `# TYPE` family, no duplicate series, histogram
/// buckets cumulative with a `+Inf` bucket matching `_count`.
fn trace_check_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    use hypercube::obs::json::Json;
    let mut checked = 0;
    if let Some(path) = flags.get("trace") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        let check = hypercube::obs::perfetto::validate_chrome_trace(&doc)
            .map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: ok ({} events, {} spans, {} flows, {} counters)",
            check.events, check.spans, check.flows, check.counters
        );
        checked += 1;
    }
    if let Some(path) = flags.get("metrics") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let report =
            hypercube::obs::RunReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let phase_sum: f64 = report.phases.iter().map(|p| p.max_node_us).sum();
        if report.makespan_us > 0.0 && phase_sum < report.makespan_us * 0.99 {
            return Err(format!(
                "{path}: phases ({phase_sum} µs) do not account for the makespan ({} µs)",
                report.makespan_us
            ));
        }
        println!(
            "{path}: ok ({} phases, {} nodes, makespan {:.1} µs)",
            report.phases.len(),
            report.nodes.len(),
            report.makespan_us
        );
        checked += 1;
    }
    if let Some(path) = flags.get("prom") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let check =
            hypercube::obs::metrics::validate_prom(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: ok ({} families, {} series, {} samples)",
            check.families, check.series, check.samples
        );
        checked += 1;
    }
    if checked == 0 {
        return Err("trace-check needs --trace, --metrics and/or --prom FILE".into());
    }
    Ok(())
}

fn mffs_cmd(faults: &FaultSet, flags: &HashMap<String, String>) -> Result<(), String> {
    let m_total: usize = flag(flags, "m", "100000")?;
    let seed: u64 = flag(flags, "seed", "1992")?;
    let protocol = parse_protocol(flags)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<u32> = (0..m_total).map(|_| rng.random()).collect();
    let sc = max_fault_free_subcube(faults).ok_or("every processor is faulty")?;
    println!(
        "maximum fault-free subcube: {sc:?} ({} processors)",
        sc.len()
    );
    let out = mffs_sort(faults, CostModel::default(), data, protocol);
    println!("simulated time : {:>12.1} ms", out.time_us / 1000.0);
    println!("element·hops   : {:>12}", out.stats.element_hops);
    Ok(())
}

fn route_cmd(faults: &FaultSet, flags: &HashMap<String, String>) -> Result<(), String> {
    let from: u32 = flag(flags, "from", "0")?;
    let to: u32 = flag(flags, "to", "1")?;
    let n = faults.cube().dim();
    let src = NodeId::new(from);
    let dst = NodeId::new(to);
    match routing::route(faults, src, dst) {
        Some(r) => {
            let path: Vec<String> = r.path().iter().map(|p| p.to_bits(n)).collect();
            println!("oracle route ({} hops): {}", r.hops(), path.join(" → "));
        }
        None => println!("oracle route: unreachable"),
    }
    match routing::adaptive_route(faults, src, dst) {
        Some(r) => {
            let path: Vec<String> = r.path().iter().map(|p| p.to_bits(n)).collect();
            println!("adaptive walk ({} hops): {}", r.hops(), path.join(" → "));
        }
        None => println!("adaptive walk: unreachable"),
    }
    Ok(())
}

fn diagnose_cmd(faults: &FaultSet, flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flag(flags, "seed", "7")?;
    let n = faults.cube().dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let syndrome = Syndrome::collect(faults, &mut rng);
    println!(
        "collected {} mutual test results on Q{n}",
        syndrome.results().len()
    );
    match syndrome.diagnose(n.max(1) - 1) {
        Ok(diag) => {
            println!("diagnosed faults: {:?}", diag.to_vec());
            if diag.to_vec() == faults.to_vec() {
                println!("diagnosis matches the injected fault set ✓");
            } else {
                println!("diagnosis DIFFERS from injected {:?}", faults.to_vec());
            }
        }
        Err(e) => println!("diagnosis failed: {e}"),
    }
    Ok(())
}
