//! Quickstart: sort on a faulty hypercube in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ftsort::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    // An NCUBE/7-sized machine: Q6, 64 processors — with three of them dead.
    let cube = Hypercube::new(6);
    let faults = FaultSet::from_raw(cube, &[9, 22, 51]);
    println!(
        "machine: Q{} ({} processors), faulty: {:?}",
        cube.dim(),
        cube.len(),
        faults.to_vec()
    );

    // 100 000 random keys.
    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<u32> = (0..100_000).map(|_| rng.random()).collect();

    // Plan (partition + heuristics) and sort.
    let plan = FtPlan::new(&faults).expect("r ≤ n−1 is always tolerable");
    println!(
        "plan: mincut m = {}, D_β = {:?}, extra-communication cost = {}, \
         live processors N' = {}, utilization = {:.1}%",
        plan.partition().mincut,
        plan.selection().dims,
        plan.selection().cost,
        plan.live_count(),
        plan.utilization() * 100.0
    );

    let out = fault_tolerant_sort_with_plan(
        &plan,
        CostModel::default(),
        data.clone(),
        Protocol::HalfExchange,
    );

    // Verify against a sequential sort.
    let mut expect = data;
    expect.sort_unstable();
    assert_eq!(out.sorted, expect);
    println!(
        "sorted {} keys on {} live processors in {:.1} ms simulated time",
        out.sorted.len(),
        out.processors_used,
        out.time_us / 1000.0
    );
    println!(
        "traffic: {} messages, {} element·hops, {} comparisons",
        out.stats.messages, out.stats.element_hops, out.stats.comparisons
    );

    // Compare with the maximum fault-free subcube baseline.
    let baseline = mffs_sort(
        &faults,
        CostModel::default(),
        expect.clone(),
        Protocol::HalfExchange,
    );
    println!(
        "MFFS baseline: {} processors, {:.1} ms — ours is {:.2}× faster",
        baseline.processors_used,
        baseline.time_us / 1000.0,
        baseline.time_us / out.time_us
    );
}
