//! A Figure-6-style walkthrough: the paper's Q5 example with 4 faults
//! sorting 47 elements, showing the data layout after each algorithm phase.
//!
//! The paper's Figure 6 traces 47 unsorted elements through step 3 (local
//! sort + subcube bitonic sort) and every (i, j) iteration of steps 7/8.
//! Here we reproduce the same machine state transitions, printing each
//! subcube's contents per step by instrumenting the public building blocks.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use ftsort::bitonic::{compare_split_remote, distributed_bitonic_sort, KeepHalf, Protocol};
use ftsort::distribute::{chunk_len, scatter, Padded};
use ftsort::ftsort::FtPlan;
use ftsort::seq::{heapsort, Direction, Scratch};
use hypercube::cost::CostModel;
use hypercube::prelude::*;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// Pretty-prints the machine state grouped by subcube.
fn print_state(plan: &FtPlan, label: &str, state: &[Option<Vec<Padded<u32>>>]) {
    println!("--- {label} ---");
    let st = plan.structure();
    for v in 0..(1u32 << st.m()) {
        let members = st.members(v);
        print!("  v={v:03b}:");
        for (w, &p) in members.iter().enumerate() {
            match &state[p.index()] {
                Some(run) => {
                    let keys: Vec<String> = run
                        .iter()
                        .map(|k| match k {
                            Padded::Real(x) => x.to_string(),
                            Padded::Dummy => "∞".into(),
                        })
                        .collect();
                    print!("  w{}=[{}]", w, keys.join(","));
                }
                None => print!("  w{w}=dead"),
            }
        }
        println!();
    }
}

fn main() {
    let cube = Hypercube::new(5);
    let faults = FaultSet::from_raw(cube, &[3, 5, 16, 24]);
    let plan = FtPlan::new(&faults).expect("tolerable");
    let st = plan.structure().clone();
    println!(
        "Q5, faults {:?}; D_β = {:?}; N' = {} live processors; 47 elements → {} each\n",
        faults.to_vec(),
        plan.selection().dims,
        plan.live_count(),
        chunk_len(47, plan.live_count())
    );

    // 47 shuffled keys, like the paper's Figure 6(a).
    let mut rng = StdRng::seed_from_u64(1992);
    let mut data: Vec<u32> = (1..=47).collect();
    data.shuffle(&mut rng);

    let live = st.live_in_order();
    let chunks = scatter(data, live.len());
    let mut inputs: Vec<Option<Vec<Padded<u32>>>> = vec![None; cube.len()];
    for (&p, c) in live.iter().zip(chunks) {
        inputs[p.index()] = Some(c);
    }
    print_state(&plan, "Fig 6(a): initial distribution", &inputs);

    // Run the algorithm phase by phase on the engine, collecting the state
    // after each phase by running the program up to that phase. The engine
    // is deterministic, so re-running a longer prefix reproduces the same
    // intermediate states.
    let m = st.m();
    let mut phase_plans: Vec<(String, usize)> = vec![("Fig 6(b): after step 3".into(), 0)];
    let mut count = 0usize;
    for i in 0..m {
        for j in (0..=i).rev() {
            count += 1;
            phase_plans.push((format!("after steps 7+8 with i={i}, j={j}"), count));
        }
    }

    for (label, upto) in phase_plans {
        let engine = Engine::new(faults.clone(), CostModel::default());
        let st_ref = &st;
        let out = engine.run(inputs.clone(), async move |ctx, mut chunk| {
            let (v, w) = st_ref.locate(ctx.me());
            let members = st_ref.members(v);
            let dead = st_ref.subcube(v).dead_local.map(|_| 0usize);
            let mut scratch = Scratch::new();
            let cmp = heapsort(&mut chunk, Direction::Ascending);
            ctx.charge_comparisons(cmp as usize);
            let mut run = distributed_bitonic_sort(
                ctx,
                &members,
                w as usize,
                dead,
                Direction::from_parity(v),
                chunk,
                2,
                Protocol::HalfExchange,
                &mut scratch,
            )
            .await;
            let mut done = 0usize;
            for i in 0..st_ref.m() {
                let mask = (v >> (i + 1)) & 1;
                for j in (0..=i).rev() {
                    if done == upto {
                        return run;
                    }
                    done += 1;
                    let partner = st_ref.members(v ^ (1 << j))[w as usize];
                    let keep = if (v >> j) & 1 == mask {
                        KeepHalf::Low
                    } else {
                        KeepHalf::High
                    };
                    run = compare_split_remote(
                        ctx,
                        partner,
                        Tag::phase(3, i as u16, j as u16),
                        run,
                        keep,
                        Protocol::HalfExchange,
                        &mut scratch,
                    )
                    .await;
                    let dir = if (if j == 0 { 0 } else { (v >> (j - 1)) & 1 }) == mask {
                        Direction::Ascending
                    } else {
                        Direction::Descending
                    };
                    run = distributed_bitonic_sort(
                        ctx,
                        &members,
                        w as usize,
                        dead,
                        dir,
                        run,
                        100 + (i * 16 + j) as u16,
                        Protocol::HalfExchange,
                        &mut scratch,
                    )
                    .await;
                }
            }
            run
        });
        let mut state: Vec<Option<Vec<Padded<u32>>>> = vec![None; cube.len()];
        for (node, run) in out.into_results() {
            state[node.index()] = Some(run);
        }
        print_state(&plan, &label, &state);
    }

    println!("\nFinal state is globally sorted in subcube-address order (Fig 6(i)).");
}
