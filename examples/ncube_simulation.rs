//! NCUBE/7-scale MIMD simulation: 64 node threads, message-passing links,
//! the full diagnose → partition → sort pipeline, and a comparison against
//! the MFFS baseline — the experiment of the paper's §4 in miniature.
//!
//! ```text
//! cargo run --release --example ncube_simulation [r] [M]
//! ```

use ftsort::prelude::*;
use hypercube::diagnosis::Syndrome;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let r: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let m_total: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(320_000);

    let n = 6; // NCUBE/7: 64 processors
    let cube = Hypercube::new(n);
    assert!(r < cube.len(), "too many faults");
    let mut rng = StdRng::seed_from_u64(7);

    // Inject faults and let the off-line diagnosis find them.
    let truth = FaultSet::random(cube, r, &mut rng);
    println!("injected faults: {:?}", truth.to_vec());
    let syndrome = Syndrome::collect(&truth, &mut rng);
    let faults = match syndrome.diagnose(n.max(1) - 1) {
        Ok(d) => d,
        Err(e) => {
            println!("diagnosis failed ({e}); falling back to ground truth");
            truth.clone()
        }
    };
    println!("diagnosed faults: {:?}", faults.to_vec());

    let data: Vec<u32> = (0..m_total).map(|_| rng.random()).collect();
    let mut expect = data.clone();
    expect.sort_unstable();

    // Our algorithm.
    match fault_tolerant_sort(
        &faults,
        CostModel::default(),
        data.clone(),
        Protocol::HalfExchange,
    ) {
        Ok(out) => {
            assert_eq!(out.sorted, expect);
            println!(
                "\nfault-tolerant sort: {} keys on {} live processors",
                m_total, out.processors_used
            );
            println!("  simulated time : {:>10.1} ms", out.time_us / 1000.0);
            println!("  messages       : {:>10}", out.stats.messages);
            println!("  element·hops   : {:>10}", out.stats.element_hops);
            println!("  comparisons    : {:>10}", out.stats.comparisons);
            println!("  max hops/msg   : {:>10}", out.stats.max_hops);

            // Baseline.
            let base = mffs_sort(&faults, CostModel::default(), data, Protocol::HalfExchange);
            assert_eq!(base.sorted, expect);
            println!(
                "\nMFFS baseline: Q{} → {} processors",
                base.processors_used.trailing_zeros(),
                base.processors_used
            );
            println!("  simulated time : {:>10.1} ms", base.time_us / 1000.0);
            println!("\nspeedup over MFFS: {:.2}×", base.time_us / out.time_us);
        }
        Err(e) => println!("cannot sort: {e}"),
    }
}
