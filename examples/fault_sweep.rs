//! Sweeps the number of faults `r` on a `Q_n` and compares the proposed
//! algorithm against the MFFS baseline on utilization and simulated time —
//! a condensed view of the paper's Tables 1–2 and Figure 7.
//!
//! ```text
//! cargo run --release --example fault_sweep [n] [M] [trials]
//! ```

use ftsort::mffs::{max_fault_free_subcube, mffs_sort};
use ftsort::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let m_total: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64_000);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    let cube = Hypercube::new(n);
    let mut rng = StdRng::seed_from_u64(3);
    println!(
        "Q{n} ({} processors), M = {m_total} keys, {trials} random fault placements per r\n",
        cube.len()
    );
    println!(
        "{:>2} | {:>7} {:>9} {:>11} | {:>7} {:>9} {:>11} | {:>7}",
        "r", "ours N'", "util %", "time ms", "MFFS N", "util %", "time ms", "speedup"
    );
    println!("{}", "-".repeat(80));

    for r in 0..n {
        let mut ours_live = 0.0;
        let mut ours_util = 0.0;
        let mut ours_time = 0.0;
        let mut mffs_live = 0.0;
        let mut mffs_util = 0.0;
        let mut mffs_time = 0.0;
        for _ in 0..trials {
            let faults = FaultSet::random(cube, r, &mut rng);
            let data: Vec<u32> = (0..m_total).map(|_| rng.random()).collect();
            let plan = FtPlan::new(&faults).expect("tolerable");
            let out = fault_tolerant_sort_with_plan(
                &plan,
                CostModel::default(),
                data.clone(),
                Protocol::HalfExchange,
            );
            ours_live += plan.live_count() as f64;
            ours_util += plan.utilization() * 100.0;
            ours_time += out.time_us / 1000.0;

            let sc = max_fault_free_subcube(&faults).expect("normal node exists");
            let base = mffs_sort(&faults, CostModel::default(), data, Protocol::HalfExchange);
            mffs_live += sc.len() as f64;
            mffs_util += sc.len() as f64 / faults.normal_count() as f64 * 100.0;
            mffs_time += base.time_us / 1000.0;
        }
        let t = trials as f64;
        println!(
            "{:>2} | {:>7.1} {:>9.1} {:>11.1} | {:>7.1} {:>9.1} {:>11.1} | {:>6.2}×",
            r,
            ours_live / t,
            ours_util / t,
            ours_time / t,
            mffs_live / t,
            mffs_util / t,
            mffs_time / t,
            mffs_time / ours_time
        );
    }
}
