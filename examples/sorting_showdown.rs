//! Compares every parallel sort in the repository on the same machine and
//! data: bitonic (the paper's workhorse), odd-even transposition on the
//! Gray-code ring, hyperquicksort, and — with faults injected — the
//! fault-tolerant sort against the MFFS baseline.
//!
//! ```text
//! cargo run --release --example sorting_showdown [n] [M]
//! ```

use ftsort::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let m_total: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64_000);

    let cube = Hypercube::new(n);
    let cost = CostModel::default();
    let mut rng = StdRng::seed_from_u64(17);
    let data: Vec<u32> = (0..m_total).map(|_| rng.random()).collect();
    let mut expect = data.clone();
    expect.sort_unstable();

    println!(
        "Q{n} ({} processors), M = {m_total} random keys\n",
        cube.len()
    );
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>14} {:>12}",
        "algorithm", "procs", "time ms", "messages", "element·hops", "comparisons"
    );
    println!("{}", "-".repeat(90));

    let report = |name: &str, out: &SortOutcome<u32>| {
        assert_eq!(out.sorted, expect, "{name} must sort correctly");
        println!(
            "{:<28} {:>6} {:>12.1} {:>12} {:>14} {:>12}",
            name,
            out.processors_used,
            out.time_us / 1000.0,
            out.stats.messages,
            out.stats.element_hops,
            out.stats.comparisons
        );
    };

    // fault-free contenders
    let out = bitonic_sort(cube, cost, data.clone(), Protocol::HalfExchange);
    report("bitonic (fault-free)", &out);
    let out = odd_even_ring_sort(cube, cost, data.clone(), Protocol::HalfExchange);
    report("odd-even ring (fault-free)", &out);
    let out = hyperquicksort(cube, cost, data.clone());
    report("hyperquicksort (fault-free)", &out);

    // now break n−1 processors
    let faults = FaultSet::random(cube, n - 1, &mut rng);
    println!("\ninjecting {} faults: {:?}\n", n - 1, faults.to_vec());
    let plan = FtPlan::new(&faults).expect("tolerable");
    let out = fault_tolerant_sort_with_plan(&plan, cost, data.clone(), Protocol::HalfExchange);
    report("fault-tolerant sort (ours)", &out);
    let out = mffs_sort(&faults, cost, data, Protocol::HalfExchange);
    report("MFFS baseline", &out);
}
