//! Space-time trace of a small fault-tolerant sort: every message and
//! computation, with virtual timestamps — the view a logic analyzer would
//! give you on the real machine — followed by the run's critical path
//! (the happens-before chain that gated the makespan) drawn on an ASCII
//! gantt chart.
//!
//! ```text
//! cargo run --release --example message_trace [n] [r] [M]
//! ```

use ftsort::bitonic::distributed_bitonic_sort;
use ftsort::distribute::{chunk_len, scatter, Padded};
use ftsort::prelude::*;
use ftsort::seq::{heapsort, Scratch};
use hypercube::obs::critical_path::{gantt, CriticalPath, SegmentKind};
use hypercube::sim::TraceKind;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let r: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let m_total: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(21);

    let cube = Hypercube::new(n);
    if r > 1 {
        eprintln!("this trace demonstrates the single-fault sort: r must be 0 or 1");
        std::process::exit(2);
    }
    let mut rng = StdRng::seed_from_u64(3);
    let faults = FaultSet::random(cube, r, &mut rng);
    println!(
        "tracing a single-fault bitonic sort: Q{n}, faults {:?}, M = {m_total}\n",
        faults.to_vec()
    );

    // Run the distributed bitonic sort (with reindexing if r == 1) under a
    // tracing engine.
    let fault_mask = faults.iter().next().map(|f| f.raw()).unwrap_or(0);
    let members: Vec<NodeId> = (0..cube.len() as u32)
        .map(|l| NodeId::new(l ^ fault_mask))
        .collect();
    let dead = (!faults.is_empty()).then_some(0usize);
    let live: Vec<usize> = (0..members.len()).filter(|&l| dead != Some(l)).collect();
    let data: Vec<u32> = (0..m_total as u32)
        .map(|_| rng.random_range(0..100))
        .collect();
    let chunks = scatter(data, live.len());
    let k = chunk_len(m_total, live.len());
    let mut inputs: Vec<Option<Vec<Padded<u32>>>> = vec![None; cube.len()];
    for (&logical, chunk) in live.iter().zip(chunks) {
        inputs[members[logical].index()] = Some(chunk);
    }

    let engine = Engine::new(faults.clone(), CostModel::paper_form()).with_tracing();
    let members_ref = &members;
    let out = engine.run(inputs, async move |ctx, mut chunk| {
        let my_logical = members_ref
            .iter()
            .position(|&p| p == ctx.me())
            .expect("member");
        let mut scratch = Scratch::new();
        let c = heapsort(&mut chunk, Direction::Ascending);
        ctx.charge_comparisons(c as usize);
        distributed_bitonic_sort(
            ctx,
            members_ref,
            my_logical,
            dead,
            Direction::Ascending,
            chunk,
            1,
            Protocol::HalfExchange,
            &mut scratch,
        )
        .await
    });

    // Render the trace.
    println!("{:>10}  {:>4}  event", "time µs", "node");
    println!("{}", "-".repeat(64));
    for e in out.trace().events() {
        let desc = match e.kind {
            TraceKind::Send { to, elements, hops } => {
                format!("send → P{:<2}  {elements} keys, {hops} hop(s)", to.raw())
            }
            TraceKind::Recv { from, elements, .. } => {
                format!("recv ← P{:<2}  {elements} keys", from.raw())
            }
            TraceKind::Compute { comparisons } => format!("compute    {comparisons} comparisons"),
        };
        println!("{:>10.1}  P{:<3}  {desc}", e.time, e.node.raw());
    }
    println!(
        "\n{} events; turnaround {:.1} µs; {} keys per live processor",
        out.trace().len(),
        out.turnaround(),
        k
    );

    // Walk the happens-before graph backward from the last-finishing node
    // and show which stretches were local work vs message transfers.
    let obs = out.observation();
    let path = CriticalPath::compute(&obs).expect("traced run has a path");
    println!("\ncritical path ({} segments):", path.segments.len());
    for seg in &path.segments {
        match seg.kind {
            SegmentKind::Local => println!(
                "  {:>8.1} – {:>8.1} µs  P{:<3} local",
                seg.begin,
                seg.end,
                seg.node.raw()
            ),
            SegmentKind::Transfer => println!(
                "  {:>8.1} – {:>8.1} µs  P{} → P{} transfer",
                seg.begin,
                seg.end,
                seg.from.expect("transfer has a sender").raw(),
                seg.node.raw()
            ),
            SegmentKind::Wait => println!(
                "  {:>8.1} – {:>8.1} µs  P{} → P{} link wait",
                seg.begin,
                seg.end,
                seg.from.expect("wait has a sender").raw(),
                seg.node.raw()
            ),
        }
    }
    println!();
    print!("{}", gantt(&obs, &path, &ftsort::ftsort::phase_name, 64));
}
