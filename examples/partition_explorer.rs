//! Reproduces the paper's worked Examples 1 and 2 end-to-end, printing the
//! cutting-dimension search, the checking tree, formula (1) costs, and the
//! dangling-processor designation.
//!
//! ```text
//! cargo run --release --example partition_explorer
//! ```

use ftsort::partition::{partition, CheckingTree, SingleFaultStructure};
use ftsort::select::{dangling_local_address, extra_comm_cost, select_cutting_sequence};
use hypercube::fault::FaultSet;
use hypercube::topology::Hypercube;

fn main() {
    println!("=== Paper Example 1: Q5 with faults 00011, 00101, 10000, 11000 ===\n");
    let cube = Hypercube::new(5);
    let faults = FaultSet::from_raw(cube, &[0b00011, 0b00101, 0b10000, 0b11000]);
    for f in faults.iter() {
        println!("  faulty processor {:>2} = {}", f.raw(), f.to_bits(5));
    }

    let result = partition(&faults).expect("separable");
    println!(
        "\npartition algorithm: mincut m = {}, visited {} tree nodes (≤ 2^5 − 1 = 31)",
        result.mincut, result.nodes_visited
    );
    println!("cutting set Ψ (α = {}):", result.alpha());
    for (i, d) in result.cutting_set.iter().enumerate() {
        let (per_dim, cost) = extra_comm_cost(&faults, d);
        println!(
            "  D{} = {:?}   formula-(1) cost = {}  (per dimension: {:?})",
            i + 1,
            d,
            cost,
            per_dim
        );
    }

    println!("\n=== Paper Example 2: selection and dangling processors ===\n");
    let sel = select_cutting_sequence(&faults, &result.cutting_set);
    println!(
        "selected D_β = {:?} with extra-communication cost {}",
        sel.dims, sel.cost
    );
    let w = dangling_local_address(&faults, &sel.dims);
    println!("dangling local address w* = {w:02b} (most frequent among faulty subcubes)");

    let st = SingleFaultStructure::new(&faults, &sel.dims).with_danglings(w);
    println!(
        "structure F_5^{}: {} subcubes of dimension s = {}, N' = {} live processors\n",
        st.m(),
        st.subcubes().len(),
        st.s(),
        st.live_count()
    );
    for info in st.subcubes() {
        let dead = st
            .dead_physical(info.v)
            .map(|p| format!("{:>2} ({})", p.raw(), p.to_bits(5)))
            .unwrap_or_else(|| "-".into());
        let kind = match info.dead_local {
            Some((_, ftsort::partition::DeadKind::Faulty)) => "faulty  ",
            Some((_, ftsort::partition::DeadKind::Dangling)) => "dangling",
            None => "none    ",
        };
        println!(
            "  subcube v = {:03b}  {}   dead: {} {}",
            info.v, info.subcube, kind, dead
        );
    }
    let dangling: Vec<u32> = (0..8u32)
        .filter(|&v| {
            matches!(
                st.subcube(v).dead_local,
                Some((_, ftsort::partition::DeadKind::Dangling))
            )
        })
        .map(|v| st.dead_physical(v).unwrap().raw())
        .collect();
    println!(
        "\ndangling processors: {:?} (paper: 18, 25, 26, 27)",
        dangling
    );

    println!("\n=== Paper Fig. 3/4: checking tree for Q4, faults {{0, 6, 9}}, D = (1, 3) ===\n");
    let q4_faults = FaultSet::from_raw(Hypercube::new(4), &[0, 6, 9]);
    let tree = CheckingTree::build(&q4_faults, &[1, 3]);
    for depth in 0..=tree.depth() {
        print!("  level {depth}:");
        for node in tree.level(depth) {
            let faults: Vec<u32> = node.faults.iter().map(|f| f.raw()).collect();
            print!("  {}{:?}", node.subcube, faults);
        }
        println!();
    }
    println!(
        "\n  single-fault structure achieved: {}",
        tree.is_single_fault()
    );
}
