//! Property-style integration tests over seeded-random instances: for
//! arbitrary fault placements and arbitrary data, the fault-tolerant sort
//! is a permutation-preserving sorting function, and the core invariants
//! of the partition machinery hold.
//!
//! (The instances are drawn from a seeded RNG rather than a shrinking
//! property-test framework — the build environment is offline, so no
//! proptest. Failures print the generating seed and case index.)

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{fault_tolerant_sort, FtPlan};
use ftsort::partition::partition;
use ftsort::select::select_cutting_sequence;
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

/// One random instance: a cube dimension `2..=5`, up to `n − 1` distinct
/// fault addresses, and a data vector of up to 400 arbitrary keys.
fn cube_faults_data(rng: &mut StdRng) -> (usize, Vec<u32>, Vec<i64>) {
    let n = rng.random_range(2usize..=5);
    let nn = 1u32 << n;
    let r = rng.random_range(0usize..n);
    let mut faults = Vec::with_capacity(r);
    while faults.len() < r {
        let f = rng.random_range(0..nn);
        if !faults.contains(&f) {
            faults.push(f);
        }
    }
    let len = rng.random_range(0usize..400);
    let data = (0..len).map(|_| rng.random::<i64>()).collect();
    (n, faults, data)
}

#[test]
fn ft_sort_sorts_any_input() {
    let mut rng = StdRng::seed_from_u64(0x5eed_2001);
    for case in 0..CASES {
        let (n, faults, data) = cube_faults_data(&mut rng);
        let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
        let mut expect = data.clone();
        expect.sort_unstable();
        let out = fault_tolerant_sort(&fs, CostModel::default(), data, Protocol::HalfExchange)
            .expect("r ≤ n−1 is always tolerable");
        assert_eq!(out.sorted, expect, "case {case}: n={n} faults={faults:?}");
    }
}

#[test]
fn partition_invariants() {
    let mut rng = StdRng::seed_from_u64(0x5eed_2002);
    for case in 0..CASES {
        let (n, faults, _data) = cube_faults_data(&mut rng);
        let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
        let result = partition(&fs).expect("distinct faults are separable");
        // every sequence separates the faults, is ascending, has mincut len
        for d in &result.cutting_set {
            assert_eq!(d.len(), result.mincut, "case {case}");
            assert!(d.windows(2).all(|w| w[0] < w[1]), "case {case}");
            let mut groups = std::collections::HashMap::new();
            for f in fs.iter() {
                let key = d.iter().fold(0u32, |acc, &dim| (acc << 1) | f.bit(dim));
                *groups.entry(key).or_insert(0usize) += 1;
            }
            assert!(
                groups.values().all(|&c| c <= 1),
                "case {case}: sequence {d:?} does not separate {faults:?}"
            );
        }
        // paper bound: r ≤ n−1 ⟹ mincut ≤ n−2 (for r ≥ 2)
        if fs.count() >= 2 {
            assert!(
                result.mincut <= n.saturating_sub(2).max(1),
                "case {case}: mincut {} on Q{n} with {faults:?}",
                result.mincut
            );
        }
    }
}

#[test]
fn plan_structure_invariants() {
    let mut rng = StdRng::seed_from_u64(0x5eed_2003);
    for case in 0..CASES {
        let (n, faults, _data) = cube_faults_data(&mut rng);
        let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
        let plan = FtPlan::new(&fs).expect("tolerable");
        let st = plan.structure();
        // every fault is dead, every dead sits at reindexed local 0
        for v in 0..(1u32 << st.m()) {
            let members = st.members(v);
            assert_eq!(members.len(), 1 << st.s(), "case {case}");
            if let Some(dead) = st.dead_physical(v) {
                assert_eq!(members[0], dead, "case {case}");
            }
            // members are a bijection onto the subcube
            let mut seen = std::collections::HashSet::new();
            for &p in &members {
                assert!(st.subcube(v).subcube.contains(p), "case {case}");
                assert!(seen.insert(p), "case {case}: duplicate member {p:?}");
            }
        }
        for f in fs.iter() {
            let (v, w) = st.locate(f);
            assert_eq!(w, 0, "case {case}: fault must reindex to local 0");
            assert_eq!(st.dead_physical(v), Some(f), "case {case}");
        }
        // live processors = N − (subcubes with a dead node), all normal
        let live = st.live_in_order();
        assert!(live.iter().all(|&p| fs.is_normal(p)), "case {case}");
        if fs.count() >= 2 {
            assert_eq!(live.len(), (1 << n) - (1 << st.m()), "case {case}");
        }
    }
}

#[test]
fn selection_cost_is_min_over_psi() {
    let mut rng = StdRng::seed_from_u64(0x5eed_2004);
    let mut checked = 0usize;
    while checked < CASES {
        let (n, faults, _data) = cube_faults_data(&mut rng);
        if faults.len() < 2 {
            continue;
        }
        checked += 1;
        let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
        let psi = partition(&fs).unwrap().cutting_set;
        let sel = select_cutting_sequence(&fs, &psi);
        for d in &psi {
            let (_, cost) = ftsort::select::extra_comm_cost(&fs, d);
            assert!(
                sel.cost <= cost,
                "n={n} faults={faults:?}: selected {} but {d:?} costs {cost}",
                sel.cost
            );
        }
    }
}
