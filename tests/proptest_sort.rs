//! Property-based integration tests: for arbitrary fault placements and
//! arbitrary data, the fault-tolerant sort is a permutation-preserving
//! sorting function, and the core invariants of the partition machinery
//! hold.

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{fault_tolerant_sort, FtPlan};
use ftsort::partition::partition;
use ftsort::select::select_cutting_sequence;
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::topology::Hypercube;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: a cube dimension, a set of distinct fault addresses with
/// `r ≤ n − 1`, and a data vector.
fn cube_faults_data() -> impl Strategy<Value = (usize, Vec<u32>, Vec<i64>)> {
    (2usize..=5)
        .prop_flat_map(|n| {
            let nn = 1u32 << n;
            (
                Just(n),
                proptest::sample::subsequence((0..nn).collect::<Vec<u32>>(), 0..n),
                vec(any::<i64>(), 0..400),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ft_sort_sorts_any_input((n, faults, data) in cube_faults_data()) {
        let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
        let mut expect = data.clone();
        expect.sort_unstable();
        let out = fault_tolerant_sort(
            &fs,
            CostModel::default(),
            data,
            Protocol::HalfExchange,
        ).expect("r ≤ n−1 is always tolerable");
        prop_assert_eq!(out.sorted, expect);
    }

    #[test]
    fn partition_invariants((n, faults, _data) in cube_faults_data()) {
        let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
        let result = partition(&fs).expect("distinct faults are separable");
        // every sequence separates the faults, is ascending, has mincut len
        for d in &result.cutting_set {
            prop_assert_eq!(d.len(), result.mincut);
            prop_assert!(d.windows(2).all(|w| w[0] < w[1]));
            let mut groups = std::collections::HashMap::new();
            for f in fs.iter() {
                let key = d.iter().fold(0u32, |acc, &dim| {
                    (acc << 1) | f.bit(dim)
                });
                *groups.entry(key).or_insert(0usize) += 1;
            }
            prop_assert!(groups.values().all(|&c| c <= 1));
        }
        // paper bound: r ≤ n−1 ⟹ mincut ≤ n−2 (for r ≥ 2)
        if fs.count() >= 2 {
            prop_assert!(result.mincut <= n.saturating_sub(2).max(1));
        }
    }

    #[test]
    fn plan_structure_invariants((n, faults, _data) in cube_faults_data()) {
        let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
        let plan = FtPlan::new(&fs).expect("tolerable");
        let st = plan.structure();
        // every fault is dead, every dead sits at reindexed local 0
        for v in 0..(1u32 << st.m()) {
            let members = st.members(v);
            prop_assert_eq!(members.len(), 1 << st.s());
            if let Some(dead) = st.dead_physical(v) {
                prop_assert_eq!(members[0], dead);
            }
            // members are a bijection onto the subcube
            let mut seen = std::collections::HashSet::new();
            for &p in &members {
                prop_assert!(st.subcube(v).subcube.contains(p));
                prop_assert!(seen.insert(p));
            }
        }
        for f in fs.iter() {
            let (v, w) = st.locate(f);
            prop_assert_eq!(w, 0, "fault must reindex to local 0");
            prop_assert_eq!(st.dead_physical(v), Some(f));
        }
        // live processors = N − (subcubes with a dead node), all normal
        let live = st.live_in_order();
        prop_assert!(live.iter().all(|&p| fs.is_normal(p)));
        if fs.count() >= 2 {
            prop_assert_eq!(live.len(), (1 << n) - (1 << st.m()));
        }
    }

    #[test]
    fn selection_cost_is_min_over_psi((n, faults, _data) in cube_faults_data()) {
        prop_assume!(faults.len() >= 2);
        let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
        let psi = partition(&fs).unwrap().cutting_set;
        let sel = select_cutting_sequence(&fs, &psi);
        for d in &psi {
            let (_, cost) = ftsort::select::extra_comm_cost(&fs, d);
            prop_assert!(sel.cost <= cost);
        }
    }
}
