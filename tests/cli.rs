//! Integration tests of the `ftsort-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsort-cli"))
}

#[test]
fn partition_reproduces_paper_example() {
    let out = cli()
        .args(["partition", "--n", "5", "--faults", "3,5,16,24"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mincut m = 3"), "{text}");
    assert!(text.contains("[0, 1, 3]"), "{text}");
    assert!(text.contains("selected D_β = [0, 1, 3]"), "{text}");
    assert!(text.contains("w* = 10"), "{text}");
    assert!(text.contains("live N' = 24 of 28"), "{text}");
}

#[test]
fn sort_produces_summary() {
    let out = cli()
        .args(["sort", "--n", "4", "--faults", "2,9", "--m", "5000"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("sorted 5000 keys on 14 live processors"),
        "{text}"
    );
    assert!(text.contains("simulated time"), "{text}");
}

#[test]
fn route_prints_both_routers() {
    let out = cli()
        .args([
            "route", "--n", "3", "--faults", "1,2", "--model", "total", "--from", "0", "--to", "3",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("oracle route (4 hops)"), "{text}");
    assert!(text.contains("adaptive walk"), "{text}");
}

#[test]
fn diagnose_matches_injection() {
    let out = cli()
        .args(["diagnose", "--n", "5", "--faults", "3,5,16"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("matches the injected fault set"), "{text}");
}

#[test]
fn sort_engine_flag_is_result_invariant() {
    // all three engines simulate the same machine: the printed summary
    // (keys, live processors, simulated time, stats) must be identical
    let run = |engine: &str| {
        let out = cli()
            .args([
                "sort", "--n", "4", "--faults", "2,9", "--m", "2000", "--engine", engine,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let seq = run("seq");
    assert_eq!(seq, run("threaded"));
    assert_eq!(seq, run("par"));
}

#[test]
fn replay_recost_reprices_a_run_file() {
    let dir = std::env::temp_dir();
    let run = dir.join("ftsort_cli_recost_run.json");
    let repriced = dir.join("ftsort_cli_recost_out.json");
    let out = cli()
        .args([
            "sort",
            "--n",
            "3",
            "--faults",
            "1",
            "--m",
            "1000",
            "--engine",
            "par",
            "--run-out",
            run.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args([
            "replay",
            "--trace",
            run.to_str().unwrap(),
            "--recost",
            "paper",
            "--run-out",
            repriced.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("recosted"), "{text}");
    assert!(text.contains("t_startup 0"), "{text}");
    // the re-priced run file must itself replay cleanly, and re-costing
    // it with explicit overrides equal to its own model is the identity
    let again = cli()
        .args([
            "replay",
            "--trace",
            repriced.to_str().unwrap(),
            "--recost",
            "t_startup=0",
        ])
        .output()
        .expect("binary runs");
    assert!(
        again.status.success(),
        "{}",
        String::from_utf8_lossy(&again.stderr)
    );
    let text = String::from_utf8(again.stdout).unwrap();
    let makespans: Vec<&str> = text
        .lines()
        .filter_map(|l| l.split("makespan ").nth(1))
        .collect();
    assert!(makespans.len() >= 2, "{text}");
    let _ = std::fs::remove_file(&run);
    let _ = std::fs::remove_file(&repriced);
}

#[test]
fn replay_rejects_bad_recost_spec() {
    let dir = std::env::temp_dir();
    let run = dir.join("ftsort_cli_recost_bad.json");
    let out = cli()
        .args([
            "sort",
            "--n",
            "2",
            "--faults",
            "1",
            "--m",
            "200",
            "--run-out",
            run.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let out = cli()
        .args([
            "replay",
            "--trace",
            run.to_str().unwrap(),
            "--recost",
            "t_bogus=1",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown --recost field"), "{err}");
    let _ = std::fs::remove_file(&run);
}

#[test]
fn sort_contended_prints_link_wait() {
    let out = cli()
        .args([
            "sort",
            "--n",
            "4",
            "--faults",
            "2,9",
            "--m",
            "2000",
            "--link-model",
            "contended",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("link wait"), "{text}");

    // the uncontended summary never mentions waits, and bogus models fail
    let out = cli()
        .args(["sort", "--n", "4", "--faults", "2,9", "--m", "2000"])
        .output()
        .expect("binary runs");
    assert!(!String::from_utf8(out.stdout).unwrap().contains("link wait"));
    let out = cli()
        .args([
            "sort",
            "--n",
            "3",
            "--faults",
            "1",
            "--m",
            "100",
            "--link-model",
            "psychic",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown link model"), "{err}");
}

#[test]
fn replay_reprices_across_link_models_and_gzip() {
    // sort --run-out foo.jsonl.gz (gzipped, uncontended) → replay
    // --link-model contended → replay the contended file back down:
    // the makespans must return to the original value.
    let dir = std::env::temp_dir();
    let run = dir.join("ftsort_cli_linkmodel_run.jsonl.gz");
    let contended = dir.join("ftsort_cli_linkmodel_con.jsonl.gz");
    let out = cli()
        .args([
            "sort",
            "--n",
            "4",
            "--faults",
            "2,9",
            "--m",
            "2000",
            "--run-out",
            run.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&run).expect("run file written");
    assert_eq!(&bytes[..2], &[0x1f, 0x8b], "--run-out *.gz must gzip");

    let makespan_of = |text: &str, idx: usize| -> f64 {
        text.lines()
            .filter(|l| l.starts_with("replayed"))
            .nth(idx)
            .and_then(|l| l.split("makespan ").nth(1))
            .and_then(|l| l.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no makespan in {text}"))
    };
    let out = cli()
        .args([
            "replay",
            "--trace",
            run.to_str().unwrap(),
            "--link-model",
            "contended",
            "--run-out",
            contended.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("link model     : uncontended -> contended"),
        "{text}"
    );
    let original = makespan_of(&text, 0);

    let out = cli()
        .args([
            "replay",
            "--trace",
            contended.to_str().unwrap(),
            "--link-model",
            "uncontended",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("link model     : contended -> uncontended"),
        "{text}"
    );
    let contended_makespan = makespan_of(&text, 0);
    assert!(contended_makespan > original, "{text}");
    let down = text
        .lines()
        .find(|l| l.starts_with("recosted"))
        .and_then(|l| l.split("-> ").last())
        .and_then(|l| l.split(' ').next())
        .and_then(|s| s.parse::<f64>().ok())
        .expect("recosted line");
    assert_eq!(
        down, original,
        "re-pricing back down must restore the makespan"
    );
    let _ = std::fs::remove_file(&run);
    let _ = std::fs::remove_file(&contended);
}

#[test]
fn sort_rejects_unknown_engine() {
    let out = cli()
        .args([
            "sort", "--n", "3", "--faults", "1", "--m", "100", "--engine", "warp",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown engine"), "{err}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = cli().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn isolation_reported_as_error() {
    // Q2 with both neighbors of node 0 dead cannot be tolerated
    let out = cli()
        .args(["partition", "--n", "2", "--faults", "1,2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot tolerate"), "{err}");
}

#[test]
fn sort_sched_profile_writes_report_and_valid_trace() {
    let dir = std::env::temp_dir();
    let sched = dir.join("ftsort_cli_sched.json");
    let trace = dir.join("ftsort_cli_sched.json.perfetto.json");
    let out = cli()
        .args([
            "sort",
            "--n",
            "4",
            "--faults",
            "2,9",
            "--m",
            "2000",
            "--engine",
            "par",
            "--threads",
            "4",
            "--sched-out",
            sched.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("sched written"), "{text}");
    assert!(text.contains("sched trace"), "{text}");
    assert!(text.contains("utilization"), "{text}");
    assert!(text.contains("worker timeline"), "{text}");

    // The written report round-trips through the library parser.
    let report_text = std::fs::read_to_string(&sched).expect("sched report written");
    let report =
        hypercube::obs::sched::SchedReport::from_json(&report_text).expect("sched report parses");
    assert!(report.workers >= 1 && report.makespan_ns > 0);

    // The worker-track Perfetto export passes trace-check...
    let check = cli()
        .args(["trace-check", "--trace", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let text = String::from_utf8(check.stdout).unwrap();
    assert!(text.contains(": ok ("), "{text}");

    // ...and a corrupted copy (a dangling steal flow on an undeclared
    // track) is rejected with a diagnostic.
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    let tail = trace_text.rfind(']').expect("traceEvents array");
    let mut corrupted = trace_text.clone();
    corrupted.insert_str(
        tail,
        ",{\"ph\":\"s\",\"pid\":1,\"tid\":9999,\"id\":777777,\"cat\":\"steal\",\"ts\":1}",
    );
    let bad = dir.join("ftsort_cli_sched_corrupt.perfetto.json");
    std::fs::write(&bad, corrupted).unwrap();
    let check = cli()
        .args(["trace-check", "--trace", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        !check.status.success(),
        "corrupted trace must fail trace-check"
    );
    let err = String::from_utf8(check.stderr).unwrap();
    assert!(err.contains("track") || err.contains("flow"), "{err}");

    let _ = std::fs::remove_file(&sched);
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn sort_sched_profile_is_byte_invisible_in_run_files() {
    // Satellite of the profiler work: `--sched-profile` must not change
    // the simulation. The streamed run files of a profiled and an
    // unprofiled run of the same seeded sort are byte-identical.
    let dir = std::env::temp_dir();
    let plain = dir.join("ftsort_cli_sched_plain_run.json");
    let profiled = dir.join("ftsort_cli_sched_profiled_run.json");
    let run = |run_out: &std::path::Path, sched: bool| {
        let mut args = vec![
            "sort",
            "--n",
            "4",
            "--faults",
            "2,9",
            "--m",
            "2000",
            "--engine",
            "par",
            "--threads",
            "3",
            "--seed",
            "7",
            "--run-out",
        ];
        args.push(run_out.to_str().unwrap());
        if sched {
            args.push("--sched-profile");
        }
        let out = cli().args(&args).output().expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let plain_text = run(&plain, false);
    let profiled_text = run(&profiled, true);
    assert!(!plain_text.contains("worker timeline"), "{plain_text}");
    assert!(profiled_text.contains("worker timeline"), "{profiled_text}");

    let plain_bytes = std::fs::read(&plain).expect("plain run written");
    let profiled_bytes = std::fs::read(&profiled).expect("profiled run written");
    assert!(!plain_bytes.is_empty());
    assert!(
        plain_bytes == profiled_bytes,
        "--sched-profile changed the streamed run file ({} vs {} bytes)",
        plain_bytes.len(),
        profiled_bytes.len()
    );
    let _ = std::fs::remove_file(&plain);
    let _ = std::fs::remove_file(&profiled);
}

#[test]
fn sort_sched_profile_needs_the_par_engine() {
    let out = cli()
        .args([
            "sort",
            "--n",
            "3",
            "--faults",
            "1",
            "--m",
            "500",
            "--engine",
            "seq",
            "--sched-profile",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("no scheduler to profile"), "{text}");
}

#[test]
fn sort_metrics_snapshot_is_byte_invisible_in_run_files() {
    // House rule of the live-telemetry layer: metrics and logging observe
    // the host only. Streamed run files of a telemetry-on and a
    // telemetry-off run of the same seeded sort are byte-identical.
    // (Separate processes, so the on-run's global registry cannot leak
    // into the off-run.)
    let dir = std::env::temp_dir();
    let plain = dir.join("ftsort_cli_metrics_plain_run.json");
    let metered = dir.join("ftsort_cli_metrics_metered_run.json");
    let prom = dir.join("ftsort_cli_metrics_metered.prom");
    let log = dir.join("ftsort_cli_metrics_metered.jsonl");
    let base = |run_out: &std::path::Path| {
        vec![
            "sort".into(),
            "--n".into(),
            "4".into(),
            "--faults".into(),
            "2,9".into(),
            "--m".into(),
            "2000".into(),
            "--engine".into(),
            "par".into(),
            "--threads".into(),
            "3".into(),
            "--seed".into(),
            "7".into(),
            "--run-out".into(),
            run_out.to_str().unwrap().to_string(),
        ]
    };
    let run = |args: Vec<String>| {
        let out = cli().args(&args).output().expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    run(base(&plain));
    let mut args = base(&metered);
    args.extend([
        "--metrics-snapshot".into(),
        prom.to_str().unwrap().to_string(),
        "--log-level".into(),
        "debug".into(),
        "--log-out".into(),
        log.to_str().unwrap().to_string(),
    ]);
    let metered_text = run(args);
    assert!(metered_text.contains("metrics snapshot"), "{metered_text}");

    let plain_bytes = std::fs::read(&plain).expect("plain run written");
    let metered_bytes = std::fs::read(&metered).expect("metered run written");
    assert!(!plain_bytes.is_empty());
    assert!(
        plain_bytes == metered_bytes,
        "telemetry changed the streamed run file ({} vs {} bytes)",
        plain_bytes.len(),
        metered_bytes.len()
    );

    // The snapshot is a valid Prometheus exposition carrying the core
    // counters, and `trace-check --prom` accepts it.
    let text = std::fs::read_to_string(&prom).expect("snapshot written");
    assert!(text.contains("ftsort_rounds_total"), "{text}");
    assert!(text.contains("ftsort_messages_delivered_total"), "{text}");
    assert!(text.contains("ftsort_pool_takes_total"), "{text}");
    assert!(
        text.contains("# TYPE ftsort_msg_elements histogram"),
        "{text}"
    );
    let check = cli()
        .args(["trace-check", "--prom", prom.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let check_text = String::from_utf8(check.stdout).unwrap();
    assert!(check_text.contains("families"), "{check_text}");

    // Every log line is a JSON object with the structured fields.
    let log_text = std::fs::read_to_string(&log).expect("log written");
    assert!(!log_text.is_empty());
    for line in log_text.lines() {
        let doc = hypercube::obs::json::Json::parse(line).expect("log line is JSON");
        assert!(doc.get("ts").is_some(), "{line}");
        assert!(doc.get("level").is_some(), "{line}");
        assert!(doc.get("msg").is_some(), "{line}");
    }
    assert!(log_text.contains("sort complete"), "{log_text}");

    let _ = std::fs::remove_file(&plain);
    let _ = std::fs::remove_file(&metered);
    let _ = std::fs::remove_file(&prom);
    let _ = std::fs::remove_file(&log);
}

#[test]
fn trace_check_rejects_corrupt_prom_snapshot() {
    let dir = std::env::temp_dir();
    let prom = dir.join("ftsort_cli_corrupt.prom");
    // A counter that lost its TYPE declaration and a histogram whose
    // bucket counts decrease: both must be rejected.
    std::fs::write(&prom, "ftsort_rounds_total 5\n").unwrap();
    let out = cli()
        .args(["trace-check", "--prom", prom.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "undeclared family must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("ftsort_rounds_total"), "{err}");

    std::fs::write(
        &prom,
        "# TYPE bad_hist histogram\n\
         bad_hist_bucket{le=\"1\"} 5\n\
         bad_hist_bucket{le=\"2\"} 3\n\
         bad_hist_bucket{le=\"+Inf\"} 5\n\
         bad_hist_sum 9\n\
         bad_hist_count 5\n",
    )
    .unwrap();
    let out = cli()
        .args(["trace-check", "--prom", prom.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let _ = std::fs::remove_file(&prom);
    assert!(!out.status.success(), "non-monotone buckets must fail");
}

#[test]
fn sort_metrics_report_carries_pool_stats() {
    // `--metrics-snapshot` switches the CLI onto a stats-carrying
    // BufferPool; the RunReport then records the pool counters.
    let dir = std::env::temp_dir();
    let prom = dir.join("ftsort_cli_poolstats.prom");
    let report = dir.join("ftsort_cli_poolstats_report.json");
    let out = cli()
        .args([
            "sort",
            "--n",
            "4",
            "--faults",
            "2",
            "--m",
            "2000",
            "--metrics-snapshot",
            prom.to_str().unwrap(),
            "--metrics-out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&report).expect("report written");
    let parsed = hypercube::obs::RunReport::from_json(&json).expect("report parses");
    assert!(parsed.pool_takes.expect("pool_takes recorded") > 0);
    assert!(parsed.pool_puts.expect("pool_puts recorded") > 0);
    assert!(parsed.pool_slab_high_water.expect("high water recorded") > 0);

    // Without telemetry, the report omits the pool fields entirely.
    let out = cli()
        .args([
            "sort",
            "--n",
            "4",
            "--faults",
            "2",
            "--m",
            "2000",
            "--metrics-out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(!json.contains("pool_takes"), "{json}");
    let _ = std::fs::remove_file(&prom);
    let _ = std::fs::remove_file(&report);
}

#[test]
fn sort_key_type_flag_runs_every_type_and_records_it() {
    // one CLI test per key type: the sort succeeds and the RunReport
    // records which type ran
    let dir = std::env::temp_dir();
    for key_type in ["u32", "u64", "i64", "pair"] {
        let report = dir.join(format!("ftsort_cli_keytype_{key_type}.json"));
        let out = cli()
            .args([
                "sort",
                "--n",
                "4",
                "--faults",
                "2",
                "--m",
                "3000",
                "--key-type",
                key_type,
                "--metrics-out",
                report.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--key-type {key_type}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(
            text.contains("sorted 3000 keys on 15 live processors"),
            "--key-type {key_type}: {text}"
        );
        let json = std::fs::read_to_string(&report).expect("report written");
        let parsed = hypercube::obs::RunReport::from_json(&json).expect("report parses");
        assert_eq!(parsed.key_type.as_deref(), Some(key_type));
        let _ = std::fs::remove_file(&report);
    }
}

#[test]
fn sort_key_type_defaults_to_i64_and_rejects_junk() {
    let dir = std::env::temp_dir();
    let report = dir.join("ftsort_cli_keytype_default.json");
    let out = cli()
        .args([
            "sort",
            "--n",
            "4",
            "--faults",
            "2",
            "--m",
            "1000",
            "--metrics-out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(json.contains("\"key_type\":\"i64\""), "{json}");
    let _ = std::fs::remove_file(&report);

    let out = cli()
        .args([
            "sort",
            "--n",
            "4",
            "--faults",
            "2",
            "--m",
            "1000",
            "--key-type",
            "f32",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown key type"), "{err}");
}

#[test]
fn sort_key_type_is_result_invariant_across_engines() {
    // the engine differential holds for every key type, not just the default
    for key_type in ["u32", "pair"] {
        let run = |engine: &str| {
            let out = cli()
                .args([
                    "sort",
                    "--n",
                    "4",
                    "--faults",
                    "2,9",
                    "--m",
                    "4000",
                    "--key-type",
                    key_type,
                    "--engine",
                    engine,
                ])
                .output()
                .expect("binary runs");
            assert!(
                out.status.success(),
                "{}",
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8(out.stdout).unwrap()
        };
        let threaded = run("threaded");
        assert_eq!(threaded, run("seq"), "--key-type {key_type}");
        assert_eq!(threaded, run("par"), "--key-type {key_type}");
    }
}
