//! Integration tests of the `ftsort-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsort-cli"))
}

#[test]
fn partition_reproduces_paper_example() {
    let out = cli()
        .args(["partition", "--n", "5", "--faults", "3,5,16,24"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mincut m = 3"), "{text}");
    assert!(text.contains("[0, 1, 3]"), "{text}");
    assert!(text.contains("selected D_β = [0, 1, 3]"), "{text}");
    assert!(text.contains("w* = 10"), "{text}");
    assert!(text.contains("live N' = 24 of 28"), "{text}");
}

#[test]
fn sort_produces_summary() {
    let out = cli()
        .args(["sort", "--n", "4", "--faults", "2,9", "--m", "5000"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("sorted 5000 keys on 14 live processors"),
        "{text}"
    );
    assert!(text.contains("simulated time"), "{text}");
}

#[test]
fn route_prints_both_routers() {
    let out = cli()
        .args([
            "route", "--n", "3", "--faults", "1,2", "--model", "total", "--from", "0", "--to", "3",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("oracle route (4 hops)"), "{text}");
    assert!(text.contains("adaptive walk"), "{text}");
}

#[test]
fn diagnose_matches_injection() {
    let out = cli()
        .args(["diagnose", "--n", "5", "--faults", "3,5,16"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("matches the injected fault set"), "{text}");
}

#[test]
fn sort_engine_flag_is_result_invariant() {
    // both engines simulate the same machine: the printed summary
    // (keys, live processors, simulated time, stats) must be identical
    let run = |engine: &str| {
        let out = cli()
            .args([
                "sort", "--n", "4", "--faults", "2,9", "--m", "2000", "--engine", engine,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(run("seq"), run("threaded"));
}

#[test]
fn sort_rejects_unknown_engine() {
    let out = cli()
        .args([
            "sort", "--n", "3", "--faults", "1", "--m", "100", "--engine", "warp",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown engine"), "{err}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = cli().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn isolation_reported_as_error() {
    // Q2 with both neighbors of node 0 dead cannot be tolerated
    let out = cli()
        .args(["partition", "--n", "2", "--faults", "1,2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot tolerate"), "{err}");
}
