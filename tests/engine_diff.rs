//! Differential test between the two simulation engines: across ≥ 64
//! random `(n, r, M)` instances, the threaded MIMD engine and the
//! sequential event-driven engine must produce **byte-identical** results —
//! the same sorted output, the same virtual completion time, and the same
//! operation counters. The algorithms are data-oblivious and the engines
//! share the cost model and hop charging, so any divergence is an engine
//! bug, not noise.

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{fault_tolerant_sort_configured, FtConfig, FtPlan};
use hypercube::fault::FaultSet;
use hypercube::sim::EngineKind;
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn engines_agree_on_64_random_instances() {
    let mut rng = StdRng::seed_from_u64(0x5eed_d1ff);
    for case in 0..64 {
        let n = rng.random_range(2usize..=8);
        let r = rng.random_range(0usize..n);
        let m = rng.random_range(0usize..4_000);
        let faults = FaultSet::random(Hypercube::new(n), r, &mut rng);
        let plan = FtPlan::new(&faults).expect("r ≤ n−1 tolerable");
        let data: Vec<u64> = (0..m).map(|_| rng.random()).collect();
        let protocol = if case % 2 == 0 {
            Protocol::HalfExchange
        } else {
            Protocol::FullExchange
        };
        let host_io = case % 3 == 0;
        let run = |engine: EngineKind| {
            fault_tolerant_sort_configured(
                &plan,
                &FtConfig {
                    protocol,
                    include_host_io: host_io,
                    engine,
                    ..FtConfig::default()
                },
                data.clone(),
            )
        };
        let seq = run(EngineKind::Seq);
        let thr = run(EngineKind::Threaded);
        let tag = format!(
            "case {case}: n={n} r={r} m={m} {protocol:?} host_io={host_io} \
             faults={:?}",
            faults.to_vec()
        );
        assert_eq!(seq.sorted, thr.sorted, "sorted output differs — {tag}");
        assert_eq!(
            seq.time_us.to_bits(),
            thr.time_us.to_bits(),
            "virtual time differs ({} vs {}) — {tag}",
            seq.time_us,
            thr.time_us
        );
        assert_eq!(seq.stats, thr.stats, "operation counters differ — {tag}");
        assert_eq!(
            seq.processors_used, thr.processors_used,
            "processor count differs — {tag}"
        );
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(seq.sorted, expect, "not actually sorted — {tag}");
    }
}
