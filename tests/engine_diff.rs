//! Differential test between the three simulation engines: across ≥ 64
//! random `(n, r, M)` instances, the threaded MIMD engine, the sequential
//! event-driven engine and the parallel frontier engine must produce
//! **byte-identical** results — the same sorted output, the same virtual
//! completion time, and the same operation counters. The algorithms are
//! data-oblivious and the engines share the cost model and hop charging,
//! so any divergence is an engine bug, not noise.
//!
//! The sequential and parallel engines additionally share the
//! round/frontier schedule, so their streamed [`TraceSink`] output is
//! compared byte for byte too (the threaded engine streams records live
//! from concurrent node threads, so its interleaving — and only its
//! interleaving — is executor-dependent).
//!
//! The parallel engine's worker count is swept across `{1, 2, 4, auto}`
//! per case — the work-stealing scheduler must be byte-deterministic at
//! *every* worker count, including oversubscribed ones on a small host —
//! and the streamed-bytes cases compare par at 1, 2 and 4 workers each.

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{
    fault_tolerant_sort_configured, fault_tolerant_sort_streamed, FtConfig, FtPlan,
};
use hypercube::fault::FaultSet;
use hypercube::obs::sink::{StreamingSink, TraceSink};
use hypercube::sim::{EngineKind, LinkModel};
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Runs the sort streaming into an in-memory [`StreamingSink`] and returns
/// the exact bytes the sink wrote.
fn streamed_bytes(plan: &FtPlan, config: &FtConfig, data: Vec<u64>) -> Vec<u8> {
    let sink = Arc::new(Mutex::new(StreamingSink::new(Vec::<u8>::new())));
    let dyn_sink: Arc<Mutex<dyn TraceSink>> = sink.clone();
    fault_tolerant_sort_streamed(plan, config, data, dyn_sink);
    Arc::try_unwrap(sink)
        .ok()
        .expect("the engine dropped its sink handle")
        .into_inner()
        .unwrap()
        .into_inner()
        .unwrap()
}

#[test]
fn engines_agree_on_64_random_instances() {
    let mut rng = StdRng::seed_from_u64(0x5eed_d1ff);
    for case in 0..64 {
        let n = rng.random_range(2usize..=8);
        let r = rng.random_range(0usize..n);
        let m = rng.random_range(0usize..4_000);
        let faults = FaultSet::random(Hypercube::new(n), r, &mut rng);
        let plan = FtPlan::new(&faults).expect("r ≤ n−1 tolerable");
        let data: Vec<u64> = (0..m).map(|_| rng.random()).collect();
        let protocol = if case % 2 == 0 {
            Protocol::HalfExchange
        } else {
            Protocol::FullExchange
        };
        let host_io = case % 3 == 0;
        // Par worker-count sweep: every case pins a different count
        // (None = available parallelism); the other engines ignore it.
        let threads = [Some(1), Some(2), Some(4), None][case % 4];
        let config = |engine: EngineKind| FtConfig {
            protocol,
            include_host_io: host_io,
            engine,
            threads,
            ..FtConfig::default()
        };
        let run = |engine: EngineKind| {
            fault_tolerant_sort_configured(&plan, &config(engine), data.clone())
        };
        let seq = run(EngineKind::Seq);
        let tag = format!(
            "case {case}: n={n} r={r} m={m} {protocol:?} host_io={host_io} \
             threads={threads:?} faults={:?}",
            faults.to_vec()
        );
        for kind in [EngineKind::Threaded, EngineKind::Par] {
            let other = run(kind);
            assert_eq!(
                seq.sorted, other.sorted,
                "sorted output differs seq vs {kind} — {tag}"
            );
            assert_eq!(
                seq.time_us.to_bits(),
                other.time_us.to_bits(),
                "virtual time differs seq vs {kind} ({} vs {}) — {tag}",
                seq.time_us,
                other.time_us
            );
            assert_eq!(
                seq.stats, other.stats,
                "operation counters differ seq vs {kind} — {tag}"
            );
            assert_eq!(
                seq.processors_used, other.processors_used,
                "processor count differs seq vs {kind} — {tag}"
            );
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(seq.sorted, expect, "not actually sorted — {tag}");

        // Every 8th instance: the frontier engines' streamed run files are
        // the same bytes (header, every record line, node footer) — par
        // checked at 1, 2 and 4 workers.
        if case % 8 == 0 {
            let seq_bytes = streamed_bytes(&plan, &config(EngineKind::Seq), data.clone());
            for workers in [1usize, 2, 4] {
                let par_config = FtConfig {
                    threads: Some(workers),
                    ..config(EngineKind::Par)
                };
                let par_bytes = streamed_bytes(&plan, &par_config, data.clone());
                assert!(
                    seq_bytes == par_bytes,
                    "streamed TraceSink output differs seq vs par@{workers} — {tag}"
                );
            }
            assert!(!seq_bytes.is_empty(), "sink saw no records — {tag}");
        }
    }
}

/// The contended link model must not break engine equivalence: across
/// ≥ 64 random instances the three engines produce byte-identical sorted
/// output, virtual times (waits included) and counters — and, because the
/// threaded engine re-emits its sink records through the schedule
/// replayer in canonical (round, node) order, its streamed v2 run file is
/// byte-identical to the frontier engines' too.
#[test]
fn engines_agree_under_contended_link_model() {
    let mut rng = StdRng::seed_from_u64(0xc0a7_e57ed);
    for case in 0..64 {
        let n = rng.random_range(2usize..=7);
        let r = rng.random_range(0usize..n);
        let m = rng.random_range(0usize..3_000);
        let faults = FaultSet::random(Hypercube::new(n), r, &mut rng);
        let plan = FtPlan::new(&faults).expect("r ≤ n−1 tolerable");
        let data: Vec<u64> = (0..m).map(|_| rng.random()).collect();
        let protocol = if case % 2 == 0 {
            Protocol::HalfExchange
        } else {
            Protocol::FullExchange
        };
        let host_io = case % 3 == 0;
        let threads = [Some(1), Some(2), Some(4), None][case % 4];
        let config = |engine: EngineKind| FtConfig {
            protocol,
            include_host_io: host_io,
            engine,
            threads,
            link_model: LinkModel::Contended,
            ..FtConfig::default()
        };
        let run = |engine: EngineKind| {
            fault_tolerant_sort_configured(&plan, &config(engine), data.clone())
        };
        let seq = run(EngineKind::Seq);
        let tag = format!(
            "case {case}: n={n} r={r} m={m} {protocol:?} host_io={host_io} contended \
             threads={threads:?} faults={:?}",
            faults.to_vec()
        );
        for kind in [EngineKind::Threaded, EngineKind::Par] {
            let other = run(kind);
            assert_eq!(
                seq.sorted, other.sorted,
                "sorted output differs seq vs {kind} — {tag}"
            );
            assert_eq!(
                seq.time_us.to_bits(),
                other.time_us.to_bits(),
                "virtual time differs seq vs {kind} ({} vs {}) — {tag}",
                seq.time_us,
                other.time_us
            );
            assert_eq!(
                seq.stats, other.stats,
                "operation counters differ seq vs {kind} — {tag}"
            );
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(seq.sorted, expect, "not actually sorted — {tag}");

        // Every 8th instance: all three engines' streamed v2 run files
        // are the same bytes, threaded included, and par checked at
        // 1, 2 and 4 workers.
        if case % 8 == 0 {
            let seq_bytes = streamed_bytes(&plan, &config(EngineKind::Seq), data.clone());
            let threaded_bytes = streamed_bytes(&plan, &config(EngineKind::Threaded), data.clone());
            assert!(
                seq_bytes == threaded_bytes,
                "streamed v2 run file differs seq vs threaded — {tag}"
            );
            for workers in [1usize, 2, 4] {
                let par_config = FtConfig {
                    threads: Some(workers),
                    ..config(EngineKind::Par)
                };
                let par_bytes = streamed_bytes(&plan, &par_config, data.clone());
                assert!(
                    seq_bytes == par_bytes,
                    "streamed v2 run file differs seq vs par@{workers} — {tag}"
                );
            }
            assert!(!seq_bytes.is_empty(), "sink saw no records — {tag}");
        }
    }
}
