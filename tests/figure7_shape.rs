//! Integration test: the qualitative claims of the paper's Figure 7 hold
//! end-to-end under the default NCUBE-calibrated cost model.
//!
//! We do not chase absolute milliseconds (the NCUBE/7 is long gone); we pin
//! the *shape*: who wins, and where the fault-tolerant sort falls relative
//! to the fault-free subcube fallbacks the MFFS baseline would use.

use ftsort::bitonic::{bitonic_sort, Protocol};
use ftsort::ftsort::fault_tolerant_sort;
use ftsort::mffs::mffs_sort;
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::topology::Hypercube;
use rand::{rngs::StdRng, Rng, SeedableRng};

const M: usize = 32_000;

fn data(seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..M).map(|_| rng.random()).collect()
}

fn ft_time(n: usize, faults: &[u32], seed: u64) -> f64 {
    let fs = FaultSet::from_raw(Hypercube::new(n), faults);
    let out = fault_tolerant_sort(
        &fs,
        CostModel::default(),
        data(seed),
        Protocol::HalfExchange,
    )
    .expect("tolerable fault set");
    let mut expect = data(seed);
    expect.sort_unstable();
    assert_eq!(out.sorted, expect, "result must be sorted");
    out.time_us
}

fn fault_free_time(n: usize, seed: u64) -> f64 {
    bitonic_sort(
        Hypercube::new(n),
        CostModel::default(),
        data(seed),
        Protocol::HalfExchange,
    )
    .time_us
}

/// Figure 7(a): on Q6, r = 1 or 2 beats the fault-free Q5 fallback.
#[test]
fn q6_one_or_two_faults_beat_q5_fallback() {
    let q5 = fault_free_time(5, 1);
    let r1 = ft_time(6, &[17], 1);
    let r2 = ft_time(6, &[17, 40], 1);
    assert!(r1 < q5, "r=1: {r1} vs Q5 {q5}");
    assert!(r2 < q5, "r=2: {r2} vs Q5 {q5}");
}

/// Figure 7(a): on Q6, r = 3, 4, 5 beat the fault-free Q4 fallback (while
/// being slower than a fault-free Q5 — which MFFS can rarely use).
#[test]
fn q6_three_to_five_faults_beat_q4_fallback() {
    let q4 = fault_free_time(4, 2);
    let q5 = fault_free_time(5, 2);
    let mut rng = StdRng::seed_from_u64(99);
    for r in 3..=5 {
        let fs = FaultSet::random(Hypercube::new(6), r, &mut rng);
        let faults: Vec<u32> = fs.iter().map(|p| p.raw()).collect();
        let t = ft_time(6, &faults, 2);
        assert!(t < q4, "r={r}: {t} vs Q4 {q4} (faults {faults:?})");
        assert!(
            t > q5 * 0.8,
            "r={r}: unexpectedly faster than Q5 would allow"
        );
    }
}

/// Figure 7(b): on Q5, r = 1 or 2 beats Q4; r = 3 or 4 beats Q3.
#[test]
fn q5_claims() {
    let q4 = fault_free_time(4, 3);
    let q3 = fault_free_time(3, 3);
    assert!(ft_time(5, &[9], 3) < q4);
    assert!(ft_time(5, &[9, 22], 3) < q4);
    let mut rng = StdRng::seed_from_u64(7);
    for r in 3..=4 {
        let fs = FaultSet::random(Hypercube::new(5), r, &mut rng);
        let faults: Vec<u32> = fs.iter().map(|p| p.raw()).collect();
        let t = ft_time(5, &faults, 3);
        assert!(t < q3, "r={r}: {t} vs Q3 {q3} (faults {faults:?})");
    }
}

/// Figure 7(c)/(d): on Q3, r = 1, 2 beat the Q2 fallback; on Q4, r = 1, 2
/// beat Q3.
#[test]
fn q3_q4_panels() {
    let q2 = fault_free_time(2, 6);
    assert!(ft_time(3, &[5], 6) < q2);
    assert!(ft_time(3, &[5, 2], 6) < q2);
    let q3 = fault_free_time(3, 6);
    assert!(ft_time(4, &[11], 6) < q3);
    assert!(ft_time(4, &[11, 4], 6) < q3);
}

/// The paper's worked case: Q5 with faults {3, 5, 16, 24} (max fault-free
/// subcube only Q3) — the proposed sort beats the MFFS baseline.
#[test]
fn paper_example_beats_mffs() {
    let fs = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
    let input = data(4);
    let ours = fault_tolerant_sort(
        &fs,
        CostModel::default(),
        input.clone(),
        Protocol::HalfExchange,
    )
    .unwrap();
    let baseline = mffs_sort(&fs, CostModel::default(), input, Protocol::HalfExchange);
    assert_eq!(ours.sorted, baseline.sorted);
    assert_eq!(baseline.processors_used, 8);
    assert_eq!(ours.processors_used, 24);
    assert!(
        ours.time_us < baseline.time_us,
        "ours {} vs MFFS {}",
        ours.time_us,
        baseline.time_us
    );
}

/// Execution time grows with M for fixed machine (Figure 7's x-axis).
#[test]
fn time_monotone_in_m() {
    let fs = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
    let mut rng = StdRng::seed_from_u64(5);
    let mut last = 0.0;
    for m in [3_200usize, 16_000, 64_000] {
        let input: Vec<u32> = (0..m).map(|_| rng.random()).collect();
        let t = fault_tolerant_sort(&fs, CostModel::default(), input, Protocol::HalfExchange)
            .unwrap()
            .time_us;
        assert!(t > last, "M={m}: {t} vs previous {last}");
        last = t;
    }
}
