//! White-box verification of the fault-tolerant sort's phase invariants:
//! after step 3 and after every step-8 re-sort, each subcube must hold a
//! sorted distributed run in exactly the direction the schedule prescribes,
//! and the global key multiset must be preserved.
//!
//! The engine is deterministic, so running successively longer prefixes of
//! the algorithm reproduces every intermediate machine state.

use ftsort::bitonic::{compare_split_remote, distributed_bitonic_sort, KeepHalf, Protocol};
use ftsort::distribute::{scatter, Padded};
use ftsort::ftsort::FtPlan;
use ftsort::seq::{heapsort, Direction, Scratch};
use hypercube::cost::CostModel;
use hypercube::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The direction a subcube must hold after step 8 of substage `(i, j)`
/// (ascending iff `v_{j-1} == mask`, `v_{-1} ≡ 0`).
fn scheduled_direction(v: u32, i: usize, j: usize) -> Direction {
    let mask = (v >> (i + 1)) & 1;
    let v_jm1 = if j == 0 { 0 } else { (v >> (j - 1)) & 1 };
    if v_jm1 == mask {
        Direction::Ascending
    } else {
        Direction::Descending
    }
}

/// Runs the algorithm up to (and including) the `upto`-th (i, j) substage
/// (0 = just step 3) and returns each node's run.
fn run_prefix(
    plan: &FtPlan,
    inputs: &[Option<Vec<Padded<u32>>>],
    upto: usize,
) -> Vec<Option<Vec<Padded<u32>>>> {
    let st = plan.structure().clone();
    let engine = Engine::new(plan.faults().clone(), CostModel::paper_form());
    let st_ref = &st;
    let out = engine.run(inputs.to_vec(), async move |ctx, mut chunk| {
        let (v, w) = st_ref.locate(ctx.me());
        let members = st_ref.members(v);
        let dead = st_ref.subcube(v).dead_local.map(|_| 0usize);
        let mut scratch = Scratch::new();
        let c = heapsort(&mut chunk, Direction::Ascending);
        ctx.charge_comparisons(c as usize);
        let mut run = distributed_bitonic_sort(
            ctx,
            &members,
            w as usize,
            dead,
            Direction::from_parity(v),
            chunk,
            2,
            Protocol::HalfExchange,
            &mut scratch,
        )
        .await;
        let mut done = 0usize;
        for i in 0..st_ref.m() {
            let mask = (v >> (i + 1)) & 1;
            for j in (0..=i).rev() {
                if done == upto {
                    return run;
                }
                done += 1;
                let partner = st_ref.members(v ^ (1 << j))[w as usize];
                let keep = if (v >> j) & 1 == mask {
                    KeepHalf::Low
                } else {
                    KeepHalf::High
                };
                run = compare_split_remote(
                    ctx,
                    partner,
                    Tag::phase(3, i as u16, j as u16),
                    run,
                    keep,
                    Protocol::HalfExchange,
                    &mut scratch,
                )
                .await;
                run = distributed_bitonic_sort(
                    ctx,
                    &members,
                    w as usize,
                    dead,
                    scheduled_direction(v, i, j),
                    run,
                    100 + (i * 16 + j) as u16,
                    Protocol::HalfExchange,
                    &mut scratch,
                )
                .await;
            }
        }
        run
    });
    let mut state: Vec<Option<Vec<Padded<u32>>>> = vec![None; plan.faults().cube().len()];
    for (node, run) in out.into_results() {
        state[node.index()] = Some(run);
    }
    state
}

#[test]
fn every_intermediate_state_respects_the_schedule() {
    let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
    let plan = FtPlan::new(&faults).unwrap();
    let st = plan.structure();
    let m = st.m();

    let mut rng = StdRng::seed_from_u64(1992);
    let data: Vec<u32> = (0..96).map(|_| rng.random_range(0..1000)).collect();
    let mut multiset = data.clone();
    multiset.sort_unstable();

    let live = st.live_in_order();
    let chunks = scatter(data, live.len());
    let mut inputs: Vec<Option<Vec<Padded<u32>>>> = vec![None; 32];
    for (&p, c) in live.iter().zip(chunks) {
        inputs[p.index()] = Some(c);
    }

    // enumerate the (i, j) schedule
    let mut schedule = vec![None]; // prefix 0 = after step 3 only
    for i in 0..m {
        for j in (0..=i).rev() {
            schedule.push(Some((i, j)));
        }
    }

    for (upto, stage) in schedule.iter().enumerate() {
        let state = run_prefix(&plan, &inputs, upto);
        // multiset preservation
        let mut all: Vec<u32> = state
            .iter()
            .flatten()
            .flatten()
            .filter_map(|p| (*p).into_real())
            .collect();
        all.sort_unstable();
        assert_eq!(all, multiset, "keys corrupted at prefix {upto}");
        // per-subcube order
        for v in 0..(1u32 << m) {
            let members = st.members(v);
            let mut flat: Vec<Padded<u32>> = Vec::new();
            for (w, &p) in members.iter().enumerate() {
                match &state[p.index()] {
                    Some(run) => {
                        assert!(
                            run.windows(2).all(|x| x[0] <= x[1]),
                            "local run unsorted at prefix {upto}, v={v}, w={w}"
                        );
                        flat.extend(run.iter().copied());
                    }
                    None => assert_eq!(w, 0, "only the dead node may be absent"),
                }
            }
            let dir = match stage {
                None => Direction::from_parity(v),
                Some((i, j)) => scheduled_direction(v, *i, *j),
            };
            let ok = match dir {
                Direction::Ascending => flat.windows(2).all(|x| x[0] <= x[1]),
                // descending window order with ascending local runs: check
                // at window granularity (every key of window t+1 ≤ every
                // key of window t) — equivalently the flattened sequence
                // reversed window-by-window is ascending. Simplest check:
                // chunk comparison.
                Direction::Descending => {
                    let k = state[members[1].index()].as_ref().unwrap().len();
                    flat.chunks(k)
                        .collect::<Vec<_>>()
                        .windows(2)
                        .all(|w| w[1].last().unwrap() <= w[0].first().unwrap())
                }
            };
            assert!(
                ok,
                "subcube v={v:03b} not in scheduled {dir:?} order at prefix {upto}: {flat:?}"
            );
        }
    }
}
