//! Invariants of the observability stack end to end: trace/report JSON
//! round-trips, Perfetto flow-event validity, engine-differential span
//! attribution, agreement between the span-derived `PhaseBreakdown` and
//! the aggregate `RunReport`, streaming-vs-buffered sink byte
//! equivalence, replay exactness, and critical-path diff invariants.

use ftsort::ftsort::{
    fault_tolerant_sort_observed, fault_tolerant_sort_streamed, phase_name, FtConfig, FtPlan,
    PhaseBreakdown,
};
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::obs::critical_path::{render_report, CriticalPath};
use hypercube::obs::diff::{diff_profiles, SegmentProfile};
use hypercube::obs::json::{trace_from_json, trace_to_json, Json};
use hypercube::obs::perfetto::perfetto_json;
use hypercube::obs::replay::{observation_from_json, recost, run_to_json};
use hypercube::obs::schedule::reprice;
use hypercube::obs::sink::{BufferedSink, StreamingSink, TraceSink};
use hypercube::obs::{RunObservation, RunReport};
use hypercube::sim::{EngineKind, LinkModel};
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

fn observed(engine: EngineKind, host_io: bool) -> (PhaseBreakdown, RunObservation) {
    observed_with(engine, host_io, LinkModel::Uncontended)
}

fn observed_with(
    engine: EngineKind,
    host_io: bool,
    link_model: LinkModel,
) -> (PhaseBreakdown, RunObservation) {
    let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 9]);
    let plan = FtPlan::new(&faults).expect("tolerable");
    let mut rng = StdRng::seed_from_u64(0x0b5e_11e5);
    let data: Vec<u32> = (0..2_000).map(|_| rng.random()).collect();
    let config = FtConfig {
        engine,
        include_host_io: host_io,
        link_model,
        tracing: true,
        ..FtConfig::default()
    };
    let (out, breakdown, obs) = fault_tolerant_sort_observed(&plan, &config, data.clone());
    let mut expect = data;
    expect.sort_unstable();
    assert_eq!(out.sorted, expect, "run must actually sort");
    (breakdown, obs)
}

#[test]
fn trace_json_roundtrip_is_bitexact() {
    let (_, obs) = observed(EngineKind::Seq, false);
    assert!(!obs.trace.is_empty(), "tracing was on");
    let text = trace_to_json(&obs.trace);
    let back = trace_from_json(&text).expect("parses");
    assert_eq!(back.len(), obs.trace.len());
    for (a, b) in obs.trace.events().iter().zip(back.events()) {
        assert_eq!(a.time.to_bits(), b.time.to_bits(), "timestamp drifted");
        assert_eq!(a.node, b.node);
        assert_eq!(a.tag, b.tag);
        assert_eq!(a.kind, b.kind);
    }
}

#[test]
fn run_report_roundtrips_and_matches_breakdown() {
    let (breakdown, obs) = observed(EngineKind::Seq, true);
    let report = obs.report(&phase_name);
    let back = RunReport::from_json(&report.to_json()).expect("parses");
    assert_eq!(report, back, "report JSON round-trip must be exact");

    // the span-derived PhaseBreakdown is the same aggregation the report
    // performs — the two views may not drift apart
    let us_of = |name: &str| {
        report
            .phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.max_node_us)
            .unwrap_or(0.0)
    };
    let tol = 1e-9 * report.makespan_us.max(1.0);
    assert!((breakdown.host_scatter_us - us_of("scatter")).abs() <= tol);
    assert!((breakdown.step3_us - us_of("step3")).abs() <= tol);
    assert!((breakdown.step7_us - us_of("step7")).abs() <= tol);
    assert!((breakdown.step8_us - us_of("step8")).abs() <= tol);
    assert!((breakdown.host_gather_us - us_of("gather")).abs() <= tol);
    // and the phases account for (at least) the makespan, as the old
    // inline subtraction guaranteed
    let sum: f64 = report.phases.iter().map(|p| p.max_node_us).sum();
    assert!(
        sum >= report.makespan_us * 0.99,
        "phases {sum} vs makespan {}",
        report.makespan_us
    );
}

#[test]
fn perfetto_flows_respect_happens_before() {
    let (_, obs) = observed(EngineKind::Seq, false);
    let text = perfetto_json(&obs, &phase_name);
    let doc = Json::parse(&text).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let mut open = std::collections::HashMap::new();
    let mut flows = 0;
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("s") => {
                let id = e.get("id").and_then(Json::as_u64).expect("flow id");
                let ts = e.get("ts").and_then(Json::as_f64).expect("flow ts");
                assert!(open.insert(id, ts).is_none(), "duplicate flow id {id}");
            }
            Some("f") => {
                let id = e.get("id").and_then(Json::as_u64).expect("flow id");
                let ts = e.get("ts").and_then(Json::as_f64).expect("flow ts");
                let sent = open.remove(&id).expect("finish after start");
                assert!(ts >= sent, "flow {id} finishes before it starts");
                flows += 1;
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "{} flows never finished", open.len());
    assert!(flows > 0, "a sort produces message flows");
}

#[test]
fn engines_agree_on_observations() {
    let (bd_seq, seq) = observed(EngineKind::Seq, false);

    for kind in [EngineKind::Threaded, EngineKind::Par] {
        let (bd_other, other) = observed(kind, false);

        // identical span attribution, node by node
        for (a, b) in seq.nodes.iter().zip(&other.nodes) {
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.node, b.node);
                    assert_eq!(a.clock.to_bits(), b.clock.to_bits(), "node {}", a.node);
                    assert_eq!(a.spans, b.spans, "span log differs on node {}", a.node);
                    // metrics agree except inbox_peak, which is
                    // executor-dependent in the threaded engine (documented
                    // on NodeMetrics::inbox_peak); the frontier engines
                    // must agree on it exactly.
                    let mut bm = b.metrics.clone();
                    if kind == EngineKind::Threaded {
                        bm.inbox_peak = a.metrics.inbox_peak;
                    }
                    assert_eq!(a.metrics, bm, "metrics differ on node {} ({kind})", a.node);
                }
                _ => panic!("participation differs ({kind})"),
            }
        }
        assert_eq!(bd_seq, bd_other, "phase breakdowns differ ({kind})");

        // identical traces, hence identical critical paths
        assert_eq!(
            seq.trace.events(),
            other.trace.events(),
            "traces differ ({kind})"
        );
        let cp_seq = CriticalPath::compute(&seq).expect("path");
        let cp_other = CriticalPath::compute(&other).expect("path");
        assert_eq!(cp_seq, cp_other, "critical paths differ ({kind})");
        assert_eq!(
            cp_seq.makespan.to_bits(),
            seq.makespan().to_bits(),
            "path extent is the makespan"
        );
        let sum: f64 = cp_seq
            .attribute(&seq, &phase_name)
            .iter()
            .map(|(_, us)| us)
            .sum();
        assert!(
            (sum - cp_seq.makespan).abs() <= 1e-6 * cp_seq.makespan.max(1.0),
            "attribution {sum} must sum to the makespan {}",
            cp_seq.makespan
        );
    }

    // The frontier engines' observations are fully byte-identical — the
    // RunReport JSON is one serialization of everything above.
    let (_, par) = observed(EngineKind::Par, false);
    assert_eq!(
        seq.report(&phase_name).to_json(),
        par.report(&phase_name).to_json(),
        "seq and par reports must be the same bytes"
    );
}

/// The deterministic run of [`observed`], but streamed through a caller-
/// supplied sink instead of (only) buffered in engine memory.
fn streamed(engine: EngineKind, sink: Arc<Mutex<dyn TraceSink>>) -> RunObservation {
    let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 9]);
    let plan = FtPlan::new(&faults).expect("tolerable");
    let mut rng = StdRng::seed_from_u64(0x0b5e_11e5);
    let data: Vec<u32> = (0..2_000).map(|_| rng.random()).collect();
    let config = FtConfig {
        engine,
        tracing: true,
        ..FtConfig::default()
    };
    let (_, _, obs) = fault_tolerant_sort_streamed(&plan, &config, data, sink);
    obs
}

#[test]
fn streaming_and_buffered_sinks_write_identical_bytes() {
    // Two identical deterministic seq runs, one per sink flavor: the
    // sinks see the same record stream, so the streamed file must be
    // byte-for-byte the buffered render.
    let buffered = Arc::new(Mutex::new(BufferedSink::new()));
    streamed(EngineKind::Seq, buffered.clone());
    let buffered_json = buffered.lock().unwrap().to_json();

    let stream_of = |engine: EngineKind| {
        let streaming = Arc::new(Mutex::new(StreamingSink::new(Vec::<u8>::new())));
        streamed(engine, streaming.clone());
        let bytes = Arc::try_unwrap(streaming)
            .ok()
            .expect("the engine dropped its sink handle")
            .into_inner()
            .unwrap()
            .into_inner()
            .unwrap();
        String::from_utf8(bytes).expect("UTF-8")
    };
    assert_eq!(
        stream_of(EngineKind::Seq),
        buffered_json,
        "streaming and buffered sinks diverged"
    );
    // the parallel engine's barrier flush reproduces the same stream —
    // same record order, same bytes
    assert_eq!(
        stream_of(EngineKind::Par),
        buffered_json,
        "par streamed different bytes than seq"
    );
    // and both replay (the acceptance path behind sort --run-out)
    let replayed = observation_from_json(&buffered_json).expect("replays");
    assert!(!replayed.trace.is_empty());
}

#[test]
fn run_file_replay_is_byte_identical_for_every_engine() {
    for engine in [EngineKind::Seq, EngineKind::Threaded, EngineKind::Par] {
        let (_, live) = observed(engine, false);
        let file = run_to_json(&live);
        let replayed = observation_from_json(&file).expect("run file replays");

        // field-for-field equality, float bits included
        assert_eq!(replayed.dim, live.dim);
        assert_eq!(replayed.trace.events(), live.trace.events(), "{engine:?}");
        for (a, b) in live.nodes.iter().zip(&replayed.nodes) {
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.node, b.node);
                    assert_eq!(a.clock.to_bits(), b.clock.to_bits());
                    assert_eq!(a.stats, b.stats, "stats differ on node {}", a.node);
                    assert_eq!(a.spans, b.spans, "spans differ on node {}", a.node);
                    assert_eq!(a.metrics, b.metrics, "metrics differ on node {}", a.node);
                }
                _ => panic!("participation differs after replay"),
            }
        }

        // hence every analyzer is byte-identical on live vs replayed input
        assert_eq!(
            replayed.report(&phase_name).to_json(),
            live.report(&phase_name).to_json(),
            "{engine:?}: replayed report drifted"
        );
        assert_eq!(
            perfetto_json(&replayed, &phase_name),
            perfetto_json(&live, &phase_name),
            "{engine:?}: replayed Perfetto export drifted"
        );
        let cp_live = CriticalPath::compute(&live).expect("path");
        let cp_replayed = CriticalPath::compute(&replayed).expect("path");
        assert_eq!(cp_live, cp_replayed, "{engine:?}: critical path drifted");
        assert_eq!(
            render_report(&replayed, &cp_replayed, &phase_name, 72),
            render_report(&live, &cp_live, &phase_name, 72),
            "{engine:?}: critical-path report drifted"
        );

        // and a second serialize round-trips to the same file
        assert_eq!(run_to_json(&replayed), file, "{engine:?}: run file drifted");
    }
}

#[test]
fn recost_matches_a_live_run_under_the_target_model() {
    // A traced run under the default (NCUBE-calibrated) model, re-priced
    // to the paper's zero-startup form, must equal a live run under that
    // form byte for byte: the schedule is data-oblivious, so recost and
    // the engine charge the same clock algebra in the same order.
    let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 9]);
    let plan = FtPlan::new(&faults).expect("tolerable");
    let mut rng = StdRng::seed_from_u64(0x0b5e_11e5);
    let data: Vec<u32> = (0..2_000).map(|_| rng.random()).collect();
    let run_under = |cost: CostModel| {
        let config = FtConfig {
            cost,
            tracing: true,
            ..FtConfig::default()
        };
        let (_, _, obs) = fault_tolerant_sort_observed(&plan, &config, data.clone());
        obs
    };
    let base = run_under(CostModel::default());
    let target = CostModel::paper_form();
    let live = run_under(target);
    let repriced = recost(&base, target).expect("run was traced");

    // the whole run file — every event timestamp, clock, blocked time and
    // inbox peak — is the same bytes
    assert_eq!(
        run_to_json(&repriced),
        run_to_json(&live),
        "recost diverged from the live run"
    );
    assert_eq!(
        repriced.report(&phase_name).to_json(),
        live.report(&phase_name).to_json(),
        "recosted report diverged"
    );

    // recosting to the run's own model is the identity
    let same = recost(&base, base.cost).expect("run was traced");
    assert_eq!(
        run_to_json(&same),
        run_to_json(&base),
        "identity recost drifted"
    );
}

#[test]
fn cross_model_reprice_matches_live_runs_bit_exactly() {
    // The contended link model is a pure function of the data-oblivious
    // schedule, so re-pricing a run across link models must reproduce a
    // live run under the target model bit for bit — in both directions,
    // and composably with the run-file round trip.
    let (_, unc) = observed_with(EngineKind::Seq, false, LinkModel::Uncontended);
    let (_, con) = observed_with(EngineKind::Seq, false, LinkModel::Contended);
    assert!(
        con.makespan() > unc.makespan(),
        "a Q4 sort has link conflicts, so contention must cost time"
    );

    let up = reprice(&unc, unc.cost, LinkModel::Contended).expect("traced");
    assert_eq!(
        run_to_json(&up),
        run_to_json(&con),
        "uncontended -> contended reprice diverged from the live run"
    );
    let down = reprice(&con, con.cost, LinkModel::Uncontended).expect("traced");
    assert_eq!(
        run_to_json(&down),
        run_to_json(&unc),
        "contended -> uncontended reprice diverged from the live run"
    );

    // recost on a contended run preserves the model (identity here)
    let same = recost(&con, con.cost).expect("traced");
    assert_eq!(
        run_to_json(&same),
        run_to_json(&con),
        "identity recost drifted on a contended run"
    );

    // and the v2 run file round-trips the contended observation exactly
    let replayed = observation_from_json(&run_to_json(&con)).expect("replays");
    assert_eq!(replayed.link_model, LinkModel::Contended);
    assert_eq!(
        replayed.report(&phase_name).to_json(),
        con.report(&phase_name).to_json(),
        "replayed contended report drifted"
    );
}

#[test]
fn contended_report_and_perfetto_carry_wait_accounting() {
    let (_, con) = observed_with(EngineKind::Seq, false, LinkModel::Contended);
    let report = con.report(&phase_name);
    assert_eq!(report.link_model, LinkModel::Contended);
    let total_wait: f64 = report.nodes.iter().map(|n| n.link_wait_us).sum();
    assert!(total_wait > 0.0, "a Q4 sort must queue somewhere");
    let back = RunReport::from_json(&report.to_json()).expect("parses");
    assert_eq!(
        report, back,
        "contended report JSON round-trip must be exact"
    );

    // the Perfetto export stays structurally valid and gains per-dim link
    // occupancy/queue counter tracks plus wait args on flow starts
    let text = perfetto_json(&con, &phase_name);
    let doc = Json::parse(&text).expect("valid JSON");
    let check = hypercube::obs::perfetto::validate_chrome_trace(&doc).expect("structurally valid");
    assert!(check.flows > 0 && check.counters > 0);
    assert!(
        text.contains("link dim 0 busy"),
        "occupancy counter missing"
    );
    assert!(text.contains("link dim 0 queue"), "queue counter missing");
    assert!(text.contains("\"wait\":"), "flow wait args missing");

    // uncontended exports never mention waits or link tracks
    let (_, unc) = observed(EngineKind::Seq, false);
    let unc_text = perfetto_json(&unc, &phase_name);
    assert!(!unc_text.contains("\"wait\":"));
    assert!(!unc_text.contains("link dim"));
}

#[test]
fn contended_diff_tiles_the_makespan_delta_with_wait_buckets() {
    // Diffing an uncontended run against its contended twin must
    // attribute 100% of the extra makespan, and the growth must land in
    // wait buckets (the transfer/compute schedule is identical).
    let (_, unc) = observed(EngineKind::Seq, false);
    let (_, con) = observed_with(EngineKind::Seq, false, LinkModel::Contended);
    let profile = |obs: &RunObservation| {
        let cp = CriticalPath::compute(obs).expect("path");
        SegmentProfile::collect(obs, &cp, &phase_name)
    };
    let a = profile(&unc);
    let b = profile(&con);
    let rows = diff_profiles(&a, &b);
    let total: f64 = rows.iter().map(|r| r.delta()).sum();
    let delta = b.makespan - a.makespan;
    assert!(
        (total - delta).abs() <= 1e-6 * delta.abs().max(1.0),
        "diff rows {total} must tile the makespan delta {delta}"
    );
    assert!(delta > 0.0, "contention must cost time on this instance");
    let wait_growth: f64 = rows
        .iter()
        .filter(|r| r.key.link.starts_with("wait "))
        .map(|r| r.delta())
        .sum();
    assert!(
        wait_growth > 0.0,
        "the contended path must spend time in wait buckets"
    );

    // the contended profile still tiles its own makespan
    let sum: f64 = b.rows.iter().map(|(_, us)| us).sum();
    assert!(
        (sum - b.makespan).abs() <= 1e-6 * b.makespan.max(1.0),
        "contended profile rows {sum} must sum to the makespan {}",
        b.makespan
    );
}

#[test]
fn critical_path_diff_attributes_the_full_makespan() {
    let (_, seq) = observed(EngineKind::Seq, false);
    let (_, thr) = observed(EngineKind::Threaded, false);
    let cp = CriticalPath::compute(&seq).expect("path");
    let profile = SegmentProfile::collect(&seq, &cp, &phase_name);

    // the profile tiles [0, makespan]
    let sum: f64 = profile.rows.iter().map(|(_, us)| us).sum();
    assert!(
        (sum - profile.makespan).abs() <= 1e-6 * profile.makespan.max(1.0),
        "profile rows {sum} must sum to the makespan {}",
        profile.makespan
    );
    assert!(!profile.rows.is_empty());

    // self-diff: every bucket's delta is exactly zero
    let self_diff = diff_profiles(&profile, &profile);
    assert!(
        self_diff.iter().all(|r| r.delta() == 0.0),
        "self-diff must be all zeros"
    );

    // engine-diff: identical traces give identical profiles, so the
    // cross-engine diff is all zeros too
    let cp_thr = CriticalPath::compute(&thr).expect("path");
    let profile_thr = SegmentProfile::collect(&thr, &cp_thr, &phase_name);
    assert_eq!(profile, profile_thr, "engines disagree on the profile");
    assert!(diff_profiles(&profile, &profile_thr)
        .iter()
        .all(|r| r.delta() == 0.0));

    let (_, par) = observed(EngineKind::Par, false);
    let cp_par = CriticalPath::compute(&par).expect("path");
    let profile_par = SegmentProfile::collect(&par, &cp_par, &phase_name);
    assert_eq!(profile, profile_par, "par disagrees on the profile");
}
