//! Integration tests for the work-stealing scheduler profiler
//! ([`hypercube::obs::sched`]) attached to the full fault-tolerant sort.
//!
//! Three properties are pinned here, end to end through the real par
//! engine rather than against synthetic recorders:
//!
//! 1. **Tiling** — the profiler's category state machine charges every
//!    nanosecond of a worker's wall time to exactly one category, so per
//!    worker `busy + steal + park + barrier` must cover ≥ 95 % of that
//!    worker's wall time (the remainder is the explicit `other` bucket:
//!    barrier hand-off and loop glue). This is the issue's acceptance
//!    bar, and it holds at every worker count, oversubscribed included.
//! 2. **Invisibility** — profiling must not perturb the simulation:
//!    a profiled run produces byte-identical sorted output, operation
//!    counters and streamed v2 run files to an unprofiled run of the
//!    same seeded instance.
//! 3. **Trace validity** — the per-worker Perfetto export passes the
//!    same structural validator `ftsort-cli trace-check` uses (declared
//!    worker tracks, per-track monotonic sched spans, steal flows that
//!    resolve and respect happens-before), and a corrupted trace is
//!    rejected.

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{fault_tolerant_sort_sched, fault_tolerant_sort_streamed, FtConfig, FtPlan};
use hypercube::fault::FaultSet;
use hypercube::obs::json::Json;
use hypercube::obs::perfetto::validate_chrome_trace;
use hypercube::obs::sched::{SchedProfile, SchedProfiler, SchedReport};
use hypercube::obs::sink::{StreamingSink, TraceSink};
use hypercube::sim::EngineKind;
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// A seeded `(plan, data)` instance with `r = n − 1` faults.
fn instance(n: usize, m: usize, seed: u64) -> (FtPlan, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let faults = FaultSet::random(Hypercube::new(n), n - 1, &mut rng);
    let plan = FtPlan::new(&faults).expect("r = n − 1 tolerable");
    let data: Vec<u64> = (0..m).map(|_| rng.random()).collect();
    (plan, data)
}

fn par_config(workers: usize) -> FtConfig {
    FtConfig {
        protocol: Protocol::HalfExchange,
        engine: EngineKind::Par,
        threads: Some(workers),
        ..FtConfig::default()
    }
}

/// Runs the sort on the par engine with a profiler attached and returns
/// the installed profile (plus the sorted output for sanity).
fn profiled_run(plan: &FtPlan, data: Vec<u64>, workers: usize) -> (SchedProfile, Vec<u64>) {
    let profiler = Arc::new(SchedProfiler::new());
    let (out, _, _) = fault_tolerant_sort_sched(
        plan,
        &par_config(workers),
        data,
        None,
        Arc::clone(&profiler),
    );
    let profile = profiler.take().expect("par run installs a profile");
    (profile, out.sorted)
}

/// Acceptance bar: per worker, `busy + steal + park + barrier` tiles
/// ≥ 95 % of that worker's wall time, at 1, 2, 4 and 8 workers.
#[test]
fn categories_tile_every_workers_wall_time() {
    let (plan, data) = instance(6, 4_000, 0x5c4e_d001);
    for workers in [1usize, 2, 4, 8] {
        let (profile, sorted) = profiled_run(&plan, data.clone(), workers);
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect, "workers={workers}: sort broke");

        let report = profile.report();
        assert_eq!(
            report.events_dropped, 0,
            "workers={workers}: ring overflowed"
        );
        assert_eq!(report.per_worker.len(), report.workers);
        for w in &report.per_worker {
            let covered = w.busy_ns() + w.steal_ns + w.park_ns + w.barrier_ns;
            assert!(
                covered as f64 >= 0.95 * w.wall_ns as f64,
                "workers={workers} worker {}: busy+steal+park+barrier = {covered} ns \
                 covers < 95% of wall {} ns (other = {} ns)",
                w.worker,
                w.wall_ns,
                w.other_ns,
            );
            // ...and the full seven-way split tiles the wall exactly.
            assert_eq!(
                w.accounted_ns(),
                w.wall_ns,
                "workers={workers} worker {}: categories do not tile the wall",
                w.worker
            );
        }
        let util = report.utilization();
        assert!(
            util > 0.0 && util <= 1.0,
            "workers={workers}: utilization {util} out of (0, 1]"
        );

        // The report round-trips through its hand-written JSON exactly.
        let json = report.to_json();
        let back = SchedReport::from_json(&json).expect("report JSON parses");
        assert_eq!(
            back.to_json(),
            json,
            "workers={workers}: JSON round-trip drifted"
        );
    }
}

/// Requesting more workers than shards exist must clamp: the profile
/// reports both the request and what actually ran.
#[test]
fn profile_records_effective_schedule_after_clamp() {
    // n = 2, r = 1: 3 live nodes → 3 shards of 1 → at most 3 workers.
    let (plan, data) = instance(2, 500, 0x5c4e_d002);
    let (profile, _) = profiled_run(&plan, data, 8);
    assert_eq!(profile.workers_requested, 8);
    assert_eq!(
        profile.workers, 3,
        "8 workers over 3 shards must clamp to 3"
    );
    assert_eq!(profile.shard_size, 1);
    assert_eq!(profile.shard_count, 3);
    assert_eq!(profile.workers_prof.len(), 3);
    // schedule_for is the single source of truth the reports reuse.
    assert_eq!(
        hypercube::sim::par::schedule_for(plan.live_count(), Some(8), None),
        (3, 1, 3)
    );
}

/// Satellite 3, library half: attaching the profiler is invisible to the
/// simulation — identical sorted output and byte-identical streamed v2
/// run files with profiling on vs off.
#[test]
fn profiling_is_byte_invisible() {
    let (plan, data) = instance(5, 3_000, 0x5c4e_d003);
    let config = par_config(4);

    let streamed = |profiled: bool| -> (Vec<u64>, Vec<u8>) {
        let sink = Arc::new(Mutex::new(StreamingSink::new(Vec::<u8>::new())));
        let dyn_sink: Arc<Mutex<dyn TraceSink>> = sink.clone();
        let (out, _, _) = if profiled {
            let profiler = Arc::new(SchedProfiler::new());
            let run = fault_tolerant_sort_sched(
                &plan,
                &config,
                data.clone(),
                Some(dyn_sink),
                Arc::clone(&profiler),
            );
            assert!(
                profiler.take().is_some(),
                "profiled run installed no profile"
            );
            run
        } else {
            fault_tolerant_sort_streamed(&plan, &config, data.clone(), dyn_sink)
        };
        let bytes = Arc::try_unwrap(sink)
            .ok()
            .expect("engine dropped its sink handle")
            .into_inner()
            .unwrap()
            .into_inner()
            .unwrap();
        (out.sorted, bytes)
    };

    let (plain_sorted, plain_bytes) = streamed(false);
    let (prof_sorted, prof_bytes) = streamed(true);
    assert_eq!(
        plain_sorted, prof_sorted,
        "profiling changed the sorted output"
    );
    assert!(!plain_bytes.is_empty(), "sink saw no records");
    assert!(
        plain_bytes == prof_bytes,
        "profiling changed the streamed run file ({} vs {} bytes)",
        plain_bytes.len(),
        prof_bytes.len()
    );
}

/// The worker-track Perfetto export of a real run passes the structural
/// validator, and an injected dangling steal-flow is rejected.
#[test]
fn sched_perfetto_validates_and_rejects_corruption() {
    let (plan, data) = instance(6, 4_000, 0x5c4e_d004);
    let (profile, _) = profiled_run(&plan, data, 4);
    let trace = profile.perfetto_json();

    let doc = Json::parse(&trace).expect("sched perfetto export is valid JSON");
    let check = validate_chrome_trace(&doc).expect("sched perfetto export validates");
    assert!(check.spans > 0, "export has no worker spans");
    assert!(check.events > 0);

    // Corrupt: a steal-flow start on an undeclared track that never
    // finishes. The validator must reject it, exactly as `ftsort-cli
    // trace-check` would on the written file.
    let tail = trace.rfind(']').expect("traceEvents array");
    let mut corrupted = trace.clone();
    corrupted.insert_str(
        tail,
        ",{\"ph\":\"s\",\"pid\":1,\"tid\":9999,\"id\":777777,\"cat\":\"steal\",\"ts\":1}",
    );
    let doc = Json::parse(&corrupted).expect("corrupted trace is still JSON");
    let err = validate_chrome_trace(&doc).expect_err("corrupted trace must be rejected");
    assert!(
        err.contains("track") || err.contains("never finished"),
        "unexpected rejection reason: {err}"
    );
}
