//! Integration test: the complete operational pipeline the paper assumes —
//! off-line diagnosis identifies the faults, the partition algorithm plans,
//! the fault-tolerant sort runs — across fault models and protocols.

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{
    fault_tolerant_sort, fault_tolerant_sort_configured, FtConfig, FtPlan, Step8Strategy,
};
use hypercube::cost::CostModel;
use hypercube::diagnosis::Syndrome;
use hypercube::fault::{FaultModel, FaultSet};
use hypercube::topology::Hypercube;
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn diagnose_then_sort_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2024);
    for n in 3..=5 {
        let cube = Hypercube::new(n);
        let truth = FaultSet::random(cube, n - 1, &mut rng);
        // 1. off-line diagnosis recovers the fault set from the syndrome
        let syndrome = Syndrome::collect(&truth, &mut rng);
        let diagnosed = syndrome.diagnose(n - 1).expect("diagnosable");
        assert_eq!(diagnosed.to_vec(), truth.to_vec());
        // 2. plan and sort on the diagnosed fault set
        let data: Vec<u64> = (0..5_000).map(|_| rng.random()).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let out = fault_tolerant_sort(
            &diagnosed,
            CostModel::default(),
            data,
            Protocol::HalfExchange,
        )
        .expect("tolerable");
        assert_eq!(out.sorted, expect, "n={n}");
    }
}

#[test]
fn total_fault_model_costs_at_least_partial() {
    // §4: "The execution time will be more than the partial fault if the
    // cube has the fault total property."
    let mut rng = StdRng::seed_from_u64(7);
    let data: Vec<u32> = (0..8_000).map(|_| rng.random()).collect();
    let faults = [3u32, 5, 16, 24];
    let partial = FaultSet::from_raw(Hypercube::new(5), &faults).with_model(FaultModel::Partial);
    let total = FaultSet::from_raw(Hypercube::new(5), &faults).with_model(FaultModel::Total);
    let t_partial = fault_tolerant_sort(
        &partial,
        CostModel::default(),
        data.clone(),
        Protocol::HalfExchange,
    )
    .unwrap();
    let t_total =
        fault_tolerant_sort(&total, CostModel::default(), data, Protocol::HalfExchange).unwrap();
    assert_eq!(t_partial.sorted, t_total.sorted);
    assert!(
        t_total.time_us >= t_partial.time_us,
        "total {} < partial {}",
        t_total.time_us,
        t_partial.time_us
    );
    assert!(t_total.stats.element_hops >= t_partial.stats.element_hops);
}

#[test]
fn step8_strategies_agree_on_results() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..5 {
        let faults = FaultSet::random(Hypercube::new(5), 4, &mut rng);
        let plan = FtPlan::new(&faults).unwrap();
        let data: Vec<u32> = (0..3_000).map(|_| rng.random()).collect();
        let merge = fault_tolerant_sort_configured(
            &plan,
            &FtConfig {
                step8: Step8Strategy::BitonicMerge,
                ..FtConfig::default()
            },
            data.clone(),
        );
        let full = fault_tolerant_sort_configured(
            &plan,
            &FtConfig {
                step8: Step8Strategy::FullSort,
                ..FtConfig::default()
            },
            data,
        );
        assert_eq!(merge.sorted, full.sorted);
        // the merge strategy must be strictly cheaper in time and hops
        assert!(
            merge.time_us < full.time_us,
            "merge {} vs full {}",
            merge.time_us,
            full.time_us
        );
        assert!(merge.stats.element_hops < full.stats.element_hops);
    }
}

#[test]
fn link_faults_are_routed_around() {
    use hypercube::address::NodeId;
    use hypercube::fault::Link;
    let mut rng = StdRng::seed_from_u64(23);
    let data: Vec<u32> = (0..4_000).map(|_| rng.random()).collect();
    let mut expect = data.clone();
    expect.sort_unstable();
    let clean = FaultSet::from_raw(Hypercube::new(4), &[6, 9]);
    let broken = clean
        .clone()
        .with_faulty_links([Link::new(NodeId::new(0), 0), Link::new(NodeId::new(5), 2)]);
    assert!(broken.is_connected());
    let out_clean = fault_tolerant_sort(
        &clean,
        CostModel::default(),
        data.clone(),
        Protocol::HalfExchange,
    )
    .unwrap();
    let out_broken =
        fault_tolerant_sort(&broken, CostModel::default(), data, Protocol::HalfExchange).unwrap();
    assert_eq!(out_clean.sorted, expect);
    assert_eq!(out_broken.sorted, expect);
    // broken links force detours: strictly more element·hops, never less time
    assert!(out_broken.stats.element_hops > out_clean.stats.element_hops);
    assert!(out_broken.time_us >= out_clean.time_us);
}

#[test]
fn absorbing_link_faults_also_works() {
    use hypercube::address::NodeId;
    use hypercube::fault::Link;
    let mut rng = StdRng::seed_from_u64(29);
    let data: Vec<u32> = (0..2_000).map(|_| rng.random()).collect();
    let mut expect = data.clone();
    expect.sort_unstable();
    let faults = FaultSet::from_raw(Hypercube::new(4), &[3])
        .with_faulty_links([Link::new(NodeId::new(8), 1)]);
    let absorbed = faults.absorb_link_faults();
    assert_eq!(absorbed.count(), 2);
    let out = fault_tolerant_sort(
        &absorbed,
        CostModel::default(),
        data,
        Protocol::HalfExchange,
    )
    .unwrap();
    assert_eq!(out.sorted, expect);
}

#[test]
fn adaptive_router_costs_at_least_the_oracle() {
    use hypercube::sim::RouterKind;
    let mut rng = StdRng::seed_from_u64(31);
    let faults =
        FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]).with_model(FaultModel::Total);
    let plan = FtPlan::new(&faults).unwrap();
    let data: Vec<u32> = (0..4_000).map(|_| rng.random()).collect();
    let mut expect = data.clone();
    expect.sort_unstable();
    let oracle = fault_tolerant_sort_configured(
        &plan,
        &FtConfig {
            router: RouterKind::Oracle,
            ..FtConfig::default()
        },
        data.clone(),
    );
    let adaptive = fault_tolerant_sort_configured(
        &plan,
        &FtConfig {
            router: RouterKind::Adaptive,
            ..FtConfig::default()
        },
        data,
    );
    assert_eq!(oracle.sorted, expect);
    assert_eq!(adaptive.sorted, expect);
    assert!(adaptive.stats.element_hops >= oracle.stats.element_hops);
    assert!(adaptive.time_us >= oracle.time_us);
}

#[test]
fn sorts_structs_not_just_integers() {
    // the API is generic over Key types: any Ord + Copy record works
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
    struct Record {
        key: u32,
        payload: [u8; 8],
    }
    impl ftsort::seq::Key for Record {}
    let mut rng = StdRng::seed_from_u64(13);
    let data: Vec<Record> = (0..500)
        .map(|_| Record {
            key: rng.random_range(0..100),
            payload: rng.random(),
        })
        .collect();
    let mut expect = data.clone();
    expect.sort();
    let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 9]);
    let out =
        fault_tolerant_sort(&faults, CostModel::default(), data, Protocol::FullExchange).unwrap();
    assert_eq!(out.sorted, expect);
}

#[test]
fn bitonic_communication_is_data_oblivious() {
    // identical message counts / element·hops for any input of the same
    // size; only comparison counts may differ
    let faults = FaultSet::from_raw(Hypercube::new(4), &[6, 9]);
    let m = 1_600usize;
    let inputs: Vec<Vec<u32>> = vec![
        (0..m as u32).collect(),
        (0..m as u32).rev().collect(),
        vec![7; m],
        (0..m as u32).map(|i| i % 3).collect(),
    ];
    let mut baseline: Option<(u64, u64)> = None;
    for data in inputs {
        let out = fault_tolerant_sort(&faults, CostModel::default(), data, Protocol::HalfExchange)
            .unwrap();
        let key = (out.stats.messages, out.stats.element_hops);
        match &baseline {
            None => baseline = Some(key),
            Some(b) => assert_eq!(&key, b, "communication varied with data"),
        }
    }
}

#[test]
fn scales_to_q7_with_128_processors() {
    // double the NCUBE/7: 128 node threads, r = n − 1 = 6 faults
    let mut rng = StdRng::seed_from_u64(64);
    let faults = FaultSet::random(Hypercube::new(7), 6, &mut rng);
    let data: Vec<u32> = (0..20_000).map(|_| rng.random()).collect();
    let mut expect = data.clone();
    expect.sort_unstable();
    let out = fault_tolerant_sort(&faults, CostModel::default(), data, Protocol::HalfExchange)
        .expect("tolerable");
    assert_eq!(out.sorted, expect);
    assert!(out.processors_used >= 112, "at least 2^7 − 2^4 live");
}

#[test]
fn stats_are_internally_consistent() {
    let mut rng = StdRng::seed_from_u64(17);
    let faults = FaultSet::from_raw(Hypercube::new(4), &[1, 6, 12]);
    let data: Vec<u32> = (0..2_000).map(|_| rng.random()).collect();
    let out =
        fault_tolerant_sort(&faults, CostModel::default(), data, Protocol::HalfExchange).unwrap();
    let s = out.stats;
    assert!(s.messages > 0);
    assert!(
        s.element_hops >= s.elements_sent,
        "every element moves ≥1 hop"
    );
    assert!(s.max_hops >= 1);
    assert!(s.comparisons > 0);
    assert!(s.max_message_elements > 0);
    assert!(out.time_us > 0.0);
}
