//! Exhaustive small-machine verification: the fault-tolerant sort is run on
//! **every** fault placement with `r ≤ n − 1` on Q3 and Q4 (and a sampled
//! sweep of data shapes), leaving no untested configuration at these sizes.

use ftsort::bitonic::Protocol;
use ftsort::ftsort::fault_tolerant_sort;
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::topology::Hypercube;

/// Enumerates every `r`-subset of nodes of `Q_n`.
fn all_fault_sets(n: usize, r: usize) -> Vec<FaultSet> {
    let cube = Hypercube::new(n);
    let p = cube.len();
    let mut out = Vec::new();
    let mut idx: Vec<u32> = (0..r as u32).collect();
    loop {
        out.push(FaultSet::from_raw(cube, &idx));
        let mut i = r;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != (i + p - r) as u32 {
                idx[i] += 1;
                for j in i + 1..r {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn check(faults: &FaultSet, data: Vec<u32>) {
    let mut expect = data.clone();
    expect.sort_unstable();
    let out = fault_tolerant_sort(
        faults,
        CostModel::paper_form(),
        data,
        Protocol::HalfExchange,
    )
    .unwrap_or_else(|e| panic!("{:?}: {e}", faults.to_vec()));
    assert_eq!(out.sorted, expect, "faults {:?}", faults.to_vec());
}

#[test]
fn every_fault_placement_on_q3() {
    // adversarial data shape: reversed with duplicates
    let data: Vec<u32> = (0..33).map(|i| (33 - i) % 7).collect();
    for r in 0..=2 {
        for faults in all_fault_sets(3, r) {
            check(&faults, data.clone());
        }
    }
}

#[test]
fn every_fault_placement_on_q4() {
    let data: Vec<u32> = (0..47).map(|i| (i * 37) % 23).collect();
    for r in 0..=3 {
        for faults in all_fault_sets(4, r) {
            check(&faults, data.clone());
        }
    }
}

#[test]
fn adversarial_data_shapes_on_the_paper_machine() {
    let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
    let shapes: Vec<(&str, Vec<u32>)> = vec![
        ("empty", vec![]),
        ("singleton", vec![42]),
        ("all-equal", vec![7; 100]),
        ("sorted", (0..100).collect()),
        ("reversed", (0..100).rev().collect()),
        ("sawtooth", (0..100).map(|i| i % 10).collect()),
        ("organ-pipe", (0..50).chain((0..50).rev()).collect()),
        ("two-values", (0..100).map(|i| i & 1).collect()),
        ("exact-multiple", (0..24u32 * 4).rev().collect()),
        ("one-over", (0..24u32 * 4 + 1).rev().collect()),
        ("one-under", (0..24u32 * 4 - 1).rev().collect()),
    ];
    for (name, data) in shapes {
        let mut expect = data.clone();
        expect.sort_unstable();
        let out = fault_tolerant_sort(
            &faults,
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        )
        .unwrap();
        assert_eq!(out.sorted, expect, "shape {name}");
    }
}
