//! Stress test for the work-stealing scheduler: the parallel engine must
//! stay byte-deterministic under *adversarial* scheduler configurations —
//! worker counts far above the live node count, 1-node shards (maximum
//! steal traffic), shard sizes that leave one worker idle, and the 1-node
//! degenerate cube where the whole machine fits in a single shard.
//!
//! Every case runs the full fault-tolerant sort three ways — sequential,
//! parallel at the randomized `(workers, shard)` point, and parallel at a
//! second independent point — and demands identical sorted output, virtual
//! time bits and operation counters. Every third case runs under the
//! contended link model (which routes the par engine through its serial
//! commit path), and every fourth case also compares the streamed v2 run
//! file byte for byte: scheduler parameters must never leak into any
//! observable output.

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{
    fault_tolerant_sort_configured, fault_tolerant_sort_streamed, FtConfig, FtPlan,
};
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::obs::sink::{StreamingSink, TraceSink};
use hypercube::sim::{Comm, Engine, EngineKind, LinkModel};
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Worker counts to draw from: 1 (fully inline), small, odd (uneven
/// affinity splits), and far above any live node count in the sweep.
const WORKERS: [usize; 8] = [1, 2, 3, 4, 5, 9, 33, 200];

/// Shard sizes: 1 (every node its own steal unit), primes that don't
/// divide the live counts, and 64 (the auto-sizing cap — usually one
/// shard per machine here, so no stealing at all).
const SHARDS: [usize; 6] = [1, 2, 3, 5, 16, 64];

fn streamed_bytes(plan: &FtPlan, config: &FtConfig, data: Vec<u64>) -> Vec<u8> {
    let sink = Arc::new(Mutex::new(StreamingSink::new(Vec::<u8>::new())));
    let dyn_sink: Arc<Mutex<dyn TraceSink>> = sink.clone();
    fault_tolerant_sort_streamed(plan, config, data, dyn_sink);
    Arc::try_unwrap(sink)
        .ok()
        .expect("the engine dropped its sink handle")
        .into_inner()
        .unwrap()
        .into_inner()
        .unwrap()
}

#[test]
fn randomized_worker_and_shard_points_are_byte_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x57ea_15eed);
    for case in 0..48 {
        let n = rng.random_range(1usize..=7);
        let r = rng.random_range(0usize..n);
        let m = rng.random_range(0usize..2_500);
        let faults = FaultSet::random(Hypercube::new(n), r, &mut rng);
        let plan = FtPlan::new(&faults).expect("r ≤ n−1 tolerable");
        let data: Vec<u64> = (0..m).map(|_| rng.random()).collect();
        let link_model = if case % 3 == 0 {
            LinkModel::Contended
        } else {
            LinkModel::Uncontended
        };
        let point_a = (
            WORKERS[rng.random_range(0..WORKERS.len())],
            SHARDS[rng.random_range(0..SHARDS.len())],
        );
        let point_b = (
            WORKERS[rng.random_range(0..WORKERS.len())],
            SHARDS[rng.random_range(0..SHARDS.len())],
        );
        let config = |engine: EngineKind, point: Option<(usize, usize)>| FtConfig {
            protocol: Protocol::HalfExchange,
            engine,
            link_model,
            threads: point.map(|(w, _)| w),
            par_shard: point.map(|(_, s)| s),
            ..FtConfig::default()
        };
        let tag = format!(
            "case {case}: n={n} r={r} m={m} {link_model:?} \
             points {point_a:?}/{point_b:?} faults={:?}",
            faults.to_vec()
        );
        let seq =
            fault_tolerant_sort_configured(&plan, &config(EngineKind::Seq, None), data.clone());
        for point in [point_a, point_b] {
            let par = fault_tolerant_sort_configured(
                &plan,
                &config(EngineKind::Par, Some(point)),
                data.clone(),
            );
            assert_eq!(
                seq.sorted, par.sorted,
                "sorted output differs seq vs par@{point:?} — {tag}"
            );
            assert_eq!(
                seq.time_us.to_bits(),
                par.time_us.to_bits(),
                "virtual time differs seq vs par@{point:?} — {tag}"
            );
            assert_eq!(
                seq.stats, par.stats,
                "operation counters differ seq vs par@{point:?} — {tag}"
            );
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(seq.sorted, expect, "not actually sorted — {tag}");

        if case % 4 == 0 {
            let seq_bytes = streamed_bytes(&plan, &config(EngineKind::Seq, None), data.clone());
            for point in [point_a, point_b] {
                let par_bytes =
                    streamed_bytes(&plan, &config(EngineKind::Par, Some(point)), data.clone());
                assert!(
                    seq_bytes == par_bytes,
                    "streamed run file differs seq vs par@{point:?} — {tag}"
                );
            }
            assert!(!seq_bytes.is_empty(), "sink saw no records — {tag}");
        }
    }
}

/// The degenerate single-node cube (`Q0`): one live node, no messages,
/// workers and shard size both larger than everything. The scheduler must
/// fall back to one effective worker and still run the program to
/// completion.
#[test]
fn one_node_cube_with_oversubscribed_workers() {
    let cube = Hypercube::new(0);
    let engine = Engine::new(FaultSet::none(cube), CostModel::default())
        .with_engine(EngineKind::Par)
        .with_workers(3)
        .with_shard_size(7);
    let inputs: Vec<Option<Vec<u64>>> = vec![Some(vec![3, 1, 2])];
    let out = engine.run(inputs, async |ctx, mut data: Vec<u64>| {
        data.sort_unstable();
        ctx.charge_comparisons(data.len());
        ctx.span_enter(1);
        ctx.span_exit();
        data
    });
    let results: Vec<_> = out.into_results();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1, vec![1, 2, 3]);
}
