//! Campaign-observatory invariants (ISSUE: Monte-Carlo fault-campaign
//! runner): output determinism across `--jobs` and invocations, outlier
//! run-file forensics replaying byte-identical, and the aggregate
//! exactness contract — online means/counts equal an offline brute-force
//! recomputation, quantile estimates within one log₂ bucket of the exact
//! order statistics.

use ft_bench::campaign::{run_campaign, CampaignConfig};
use hypercube::obs::campaign::CampaignReport;
use hypercube::obs::hist::LogHistogram;
use std::path::{Path, PathBuf};
use std::process::Command;

fn campaign_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsort-campaign"))
}

fn ftsort_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsort-cli"))
}

/// Runs a small campaign through the CLI, returning the report path and
/// capture directory it wrote.
fn run_cli_campaign(tag: &str, jobs: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let out = dir.join(format!("campaign_det_{tag}.json"));
    let captures = dir.join(format!("campaign_det_{tag}_captures"));
    let _ = std::fs::remove_dir_all(&captures);
    let output = campaign_cli()
        .args([
            "--sizes",
            "4,5",
            "--fault-counts",
            "2",
            "--runs",
            "12",
            "--m",
            "600",
            "--seed",
            "77",
            "--jobs",
            jobs,
            "--out",
            out.to_str().unwrap(),
            "--capture-dir",
            captures.to_str().unwrap(),
        ])
        .output()
        .expect("run ftsort-campaign");
    assert!(
        output.status.success(),
        "campaign failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("outlier runs"), "{stdout}");
    (out, captures)
}

/// Sorted (file name, bytes) listing of a capture directory.
fn dir_contents(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read capture dir")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read capture file"),
            )
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

#[test]
fn campaign_output_is_byte_identical_across_jobs_and_invocations() {
    let (out_a, cap_a) = run_cli_campaign("a", "1");
    let (out_b, cap_b) = run_cli_campaign("b", "4");
    let (out_c, cap_c) = run_cli_campaign("c", "4");

    // Report JSON: identical across --jobs 1 vs 4 and across two
    // same-seed invocations.
    let a = std::fs::read(&out_a).expect("read report a");
    assert_eq!(a, std::fs::read(&out_b).expect("read report b"));
    assert_eq!(a, std::fs::read(&out_c).expect("read report c"));

    // Captured run files (outliers + median exemplars): same set, same
    // bytes, regardless of the job count.
    let files_a = dir_contents(&cap_a);
    assert!(!files_a.is_empty(), "no captures in {}", cap_a.display());
    assert!(
        files_a.iter().any(|(name, _)| name.contains("outlier")),
        "no outlier capture among {:?}",
        files_a.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    assert_eq!(files_a, dir_contents(&cap_b));
    assert_eq!(files_a, dir_contents(&cap_c));

    // The report parses and round-trips exactly.
    let text = String::from_utf8(a).expect("utf8 report");
    let report = CampaignReport::from_json(&text).expect("parse report");
    assert_eq!(report.to_json(), text);
    assert_eq!(report.cells.len(), 2); // n=4 and n=5, r=2
}

#[test]
fn captured_outlier_replays_byte_identical_to_live_report() {
    let (_, captures) = run_cli_campaign("replay", "2");
    let mut checked = 0;
    for (name, _) in dir_contents(&captures) {
        if !name.ends_with(".jsonl.gz") {
            continue;
        }
        let run_file = captures.join(&name);
        let live_report = captures.join(name.replace(".jsonl.gz", ".report.json"));
        let replayed = std::env::temp_dir().join(format!("campaign_det_replayed_{name}.json"));
        let output = ftsort_cli()
            .args([
                "replay",
                "--trace",
                run_file.to_str().unwrap(),
                "--metrics-out",
                replayed.to_str().unwrap(),
            ])
            .output()
            .expect("run ftsort-cli replay");
        assert!(
            output.status.success(),
            "replay of {name} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert_eq!(
            std::fs::read(&replayed).expect("read replayed report"),
            std::fs::read(&live_report).expect("read live report"),
            "replayed RunReport differs from live for {name}"
        );
        checked += 1;
    }
    assert!(
        checked >= 2,
        "expected outlier + median captures, got {checked}"
    );
}

#[test]
fn aggregates_match_offline_brute_force_recomputation() {
    let cfg = CampaignConfig {
        sizes: vec![4, 5],
        fault_counts: vec![2, 3],
        runs_per_cell: 10,
        m_total: 500,
        seed: 9,
        jobs: 2,
        ..CampaignConfig::default()
    };
    let outcome = run_campaign(&cfg, &mut |_, _| {}).expect("campaign");
    // (4,3) is feasible (r ≤ n − 1), so all four cells run.
    assert_eq!(outcome.report.cells.len(), 4);
    assert_eq!(outcome.summaries.len(), 40);

    for cell in &outcome.report.cells {
        let members: Vec<_> = outcome
            .summaries
            .iter()
            .filter(|s| s.n == cell.n && s.r == cell.r)
            .collect();
        assert_eq!(cell.runs as usize, members.len());
        assert_eq!(cell.runs_failed, 0);

        // Exact mean/min/max recomputation, same accumulation order as
        // the report's ordered merge (run-index order).
        type Extract = fn(&hypercube::obs::campaign::RunSummary) -> f64;
        let checks: [(&str, Extract); 4] = [
            ("makespan_us", |s| s.makespan_us),
            ("wait_total_us", |s| s.wait_total_us),
            ("comparisons", |s| s.comparisons as f64),
            ("inbox_peak", |s| s.inbox_peak as f64),
        ];
        for (name, extract) in &checks {
            let agg = cell.metric(name).unwrap();
            let sum = members.iter().fold(0.0, |a, s| a + extract(s));
            assert_eq!(agg.count as usize, members.len(), "{name} count");
            assert_eq!(agg.sum.to_bits(), sum.to_bits(), "{name} sum");
            assert_eq!(
                agg.mean().to_bits(),
                (sum / members.len() as f64).to_bits(),
                "{name} mean"
            );
            let min = members
                .iter()
                .map(|s| extract(s))
                .fold(f64::INFINITY, f64::min);
            let max = members
                .iter()
                .map(|s| extract(s))
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(agg.min, min, "{name} min");
            assert_eq!(agg.max, max, "{name} max");
        }

        // Quantile estimates: within one log₂ bucket of the exact order
        // statistics (same bucket, since the estimate is clamped into the
        // bucket holding the rank).
        let mut sorted: Vec<u64> = members.iter().map(|s| s.makespan_us as u64).collect();
        sorted.sort_unstable();
        for (q, estimate) in [(0.5, cell.p50_makespan_us), (0.99, cell.p99_makespan_us)] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            assert_eq!(
                LogHistogram::bucket_of(estimate),
                LogHistogram::bucket_of(sorted[rank - 1]),
                "cell n={} r={} q={q}",
                cell.n,
                cell.r
            );
        }

        // Partition-shape counts match brute force.
        for (m, &count) in cell.mincut_counts.iter().enumerate() {
            assert_eq!(
                count as usize,
                members.iter().filter(|s| s.mincut == m).count(),
                "mincut m={m}"
            );
        }

        // The outlier set is exactly the runs at/above the p99 estimate
        // (with the cell max always included).
        let max = cell.metric("makespan_us").unwrap().max;
        let expected: Vec<u64> = members
            .iter()
            .filter(|s| s.makespan_us as u64 >= cell.p99_makespan_us || s.makespan_us == max)
            .map(|s| s.run_index)
            .collect();
        assert_eq!(cell.outlier_runs, expected);
        assert!(!cell.outlier_runs.is_empty());
    }
}
