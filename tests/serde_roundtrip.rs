//! Round-trips for the textual forms the binaries actually persist.
//!
//! The vendored `serde` stand-in only keeps `#[derive(Serialize,
//! Deserialize)]` lists compiling (the build environment is offline, so
//! report output is hand-written JSON/CSV rather than serde-generated).
//! What must therefore round-trip losslessly is the *textual* layer: the
//! `--engine` spellings the CLI and report binaries accept, and the value
//! semantics (`Clone`/`PartialEq`) of every config type those reports
//! embed in their output.

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{FtConfig, Step8Strategy};
use ftsort::seq::{Direction, LocalSort};
use hypercube::address::NodeId;
use hypercube::cost::CostModel;
use hypercube::fault::{FaultModel, FaultSet, Link};
use hypercube::sim::{EngineKind, RouterKind};
use hypercube::stats::RunStats;
use hypercube::topology::Hypercube;

#[test]
fn engine_kind_display_parse_roundtrip() {
    for kind in [EngineKind::Threaded, EngineKind::Seq, EngineKind::Par] {
        let spelled = kind.to_string();
        assert_eq!(
            EngineKind::parse(&spelled),
            Some(kind),
            "spelling {spelled}"
        );
    }
}

#[test]
fn engine_kind_accepts_documented_aliases() {
    assert_eq!(EngineKind::parse("seq"), Some(EngineKind::Seq));
    assert_eq!(EngineKind::parse("sequential"), Some(EngineKind::Seq));
    assert_eq!(EngineKind::parse("threaded"), Some(EngineKind::Threaded));
    assert_eq!(EngineKind::parse("par"), Some(EngineKind::Par));
    assert_eq!(EngineKind::parse("parallel"), Some(EngineKind::Par));
    assert_eq!(EngineKind::parse("mpi"), None);
    assert_eq!(EngineKind::parse(""), None);
}

#[test]
fn engine_kind_default_is_seq() {
    // the fast engine is the default everywhere (CLI, FtConfig, reports)
    assert_eq!(EngineKind::default(), EngineKind::Seq);
    assert_eq!(FtConfig::default().engine, EngineKind::Seq);
}

/// A value round-trip through `Clone` must be lossless for every config
/// type the reports embed (the guarantee serde derives would otherwise
/// document).
fn clone_roundtrip<T: Clone + PartialEq + std::fmt::Debug>(value: &T) {
    let copy = value.clone();
    assert_eq!(&copy, value);
}

#[test]
fn config_types_are_value_types() {
    clone_roundtrip(&NodeId::new(42));
    clone_roundtrip(&Hypercube::new(6));
    clone_roundtrip(&Link::new(NodeId::new(5), 1));
    clone_roundtrip(&FaultModel::Total);
    clone_roundtrip(&RouterKind::Adaptive);
    clone_roundtrip(&CostModel::default());
    clone_roundtrip(&Protocol::HalfExchange);
    clone_roundtrip(&Step8Strategy::FullSort);
    clone_roundtrip(&LocalSort::Quicksort);
    clone_roundtrip(&Direction::Descending);
    clone_roundtrip(&EngineKind::Threaded);
    let mut stats = RunStats::new();
    stats.record_message(10, 3);
    stats.record_comparisons(7);
    clone_roundtrip(&stats);
}

#[test]
fn fault_set_clone_preserves_membership() {
    let faults = FaultSet::from_raw(Hypercube::new(4), &[1, 6, 12])
        .with_model(FaultModel::Total)
        .with_faulty_links([Link::new(NodeId::new(0), 2)]);
    let back = faults.clone();
    for p in Hypercube::new(4).nodes() {
        assert_eq!(faults.is_faulty(p), back.is_faulty(p));
    }
    assert_eq!(faults.to_vec(), back.to_vec());
}

#[test]
fn run_report_pool_stats_roundtrip() {
    // The pool counters ride the RunReport JSON: present fields
    // round-trip exactly, absent fields stay absent (older reports parse
    // unchanged).
    use ftsort::ftsort::{fault_tolerant_sort_observed, phase_name, FtPlan};
    let faults = FaultSet::from_raw(Hypercube::new(3), &[1]);
    let plan = FtPlan::new(&faults).expect("tolerable");
    let data: Vec<u32> = (0..500).rev().collect();
    let (_, _, obs) = fault_tolerant_sort_observed(&plan, &FtConfig::default(), data);

    let bare = obs.report(&phase_name);
    let bare_json = bare.to_json();
    assert!(!bare_json.contains("pool_takes"), "{bare_json}");
    let back = hypercube::obs::RunReport::from_json(&bare_json).expect("parses");
    assert_eq!(back.pool_takes, None);
    assert_eq!(back.pool_puts, None);
    assert_eq!(back.pool_slab_high_water, None);

    let pooled = obs.report(&phase_name).with_pool_stats(1200, 1188, 17);
    let json = pooled.to_json();
    let back = hypercube::obs::RunReport::from_json(&json).expect("parses");
    assert_eq!(back.pool_takes, Some(1200));
    assert_eq!(back.pool_puts, Some(1188));
    assert_eq!(back.pool_slab_high_water, Some(17));
    assert_eq!(back.to_json(), json, "second round trip is byte-exact");
}
