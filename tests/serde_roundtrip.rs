//! Serde round-trips for the serializable public types (report binaries
//! persist these; a round-trip must be lossless).

use ftsort::bitonic::Protocol;
use ftsort::ftsort::{PhaseBreakdown, Step8Strategy};
use ftsort::seq::{Direction, LocalSort};
use hypercube::address::NodeId;
use hypercube::cost::CostModel;
use hypercube::fault::{FaultModel, FaultSet, Link};
use hypercube::sim::RouterKind;
use hypercube::stats::RunStats;
use hypercube::subcube::Subcube;
use hypercube::topology::Hypercube;

fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value);
}

#[test]
fn substrate_types_roundtrip() {
    roundtrip(&NodeId::new(42));
    roundtrip(&Hypercube::new(6));
    roundtrip(&Subcube::new(5, 0b01011, 0b01001));
    roundtrip(&Link::new(NodeId::new(5), 1));
    roundtrip(&FaultModel::Total);
    roundtrip(&RouterKind::Adaptive);
    roundtrip(&CostModel::default());
    let mut stats = RunStats::new();
    stats.record_message(10, 3);
    stats.record_comparisons(7);
    roundtrip(&stats);
    let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24])
        .with_model(FaultModel::Total)
        .with_faulty_links([Link::new(NodeId::new(0), 2)]);
    roundtrip(&faults);
}

#[test]
fn algorithm_config_types_roundtrip() {
    roundtrip(&Protocol::HalfExchange);
    roundtrip(&Protocol::FullExchange);
    roundtrip(&Step8Strategy::FullSort);
    roundtrip(&LocalSort::Quicksort);
    roundtrip(&Direction::Descending);
    roundtrip(&PhaseBreakdown {
        host_scatter_us: 1.0,
        step3_us: 2.0,
        step7_us: 3.0,
        step8_us: 4.0,
        host_gather_us: 5.0,
    });
}

#[test]
fn fault_set_roundtrip_preserves_membership() {
    let faults = FaultSet::from_raw(Hypercube::new(4), &[1, 6, 12]);
    let json = serde_json::to_string(&faults).unwrap();
    let back: FaultSet = serde_json::from_str(&json).unwrap();
    for p in Hypercube::new(4).nodes() {
        assert_eq!(faults.is_faulty(p), back.is_faulty(p));
    }
}
