//! Run-file schema versioning guarantees:
//!
//! * **v1 files stay replayable, byte for byte.** `tests/fixtures/run_v1.json`
//!   was written by the schema-v1 `sort --run-out` writer (Q4, faults {2,9},
//!   2 000 keys, seed 42, seq engine). The current reader must replay it to
//!   the same observation a fresh live run produces, and the current writer's
//!   uncontended output must differ from the v1 bytes **only** in the header
//!   line (v2 adds the `link_model` field; uncontended record lines are
//!   unchanged).
//! * **v2 files round-trip**, buffered or streamed, gzipped or plain.
//! * **Unknown versions and malformed v2 headers are rejected**, not
//!   misparsed.

use ftsort::ftsort::{fault_tolerant_sort_streamed, phase_name, FtConfig, FtPlan};
use hypercube::fault::FaultSet;
use hypercube::obs::replay::{
    observation_from_file, observation_from_json, run_to_json, write_run_file,
};
use hypercube::obs::sink::{BufferedSink, StreamingSink, TraceSink};
use hypercube::obs::RunObservation;
use hypercube::sim::{EngineKind, LinkModel, TraceKind};
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

const FIXTURE: &str = "tests/fixtures/run_v1.json";

/// Reruns the exact configuration that produced the v1 fixture
/// (`sort --n 4 --faults 2,9 --m 2000 --seed 42 --engine seq`), streaming
/// into an in-memory sink, and returns the observation plus the raw bytes
/// the current writer emits for it.
fn fixture_run(link_model: LinkModel, tracing: bool) -> (RunObservation, Vec<u8>) {
    let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 9]);
    let plan = FtPlan::new(&faults).expect("tolerable");
    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<u32> = (0..2_000).map(|_| rng.random()).collect();
    let config = FtConfig {
        engine: EngineKind::Seq,
        link_model,
        tracing,
        ..FtConfig::default()
    };
    let sink = Arc::new(Mutex::new(StreamingSink::new(Vec::<u8>::new())));
    let dyn_sink: Arc<Mutex<dyn TraceSink>> = sink.clone();
    let (_, _, obs) = fault_tolerant_sort_streamed(&plan, &config, data, dyn_sink);
    let bytes = Arc::try_unwrap(sink)
        .ok()
        .expect("the engine dropped its sink handle")
        .into_inner()
        .unwrap()
        .into_inner()
        .unwrap();
    (obs, bytes)
}

#[test]
fn v1_fixture_replays_byte_identically() {
    let v1 = observation_from_file(FIXTURE).expect("v1 fixture replays");
    assert_eq!(v1.dim, 4);
    assert_eq!(
        v1.link_model,
        LinkModel::Uncontended,
        "v1 predates link models and must default to uncontended"
    );
    for e in v1.trace.events() {
        if let TraceKind::Recv { wait, .. } = e.kind {
            assert_eq!(wait.to_bits(), 0.0f64.to_bits(), "v1 recvs carry no wait");
        }
    }

    // The fixture replays to the same observation the current writer's
    // live stream replays to — every event timestamp, clock, metric and
    // footer is the same. (Both sides go through the reader: a streamed
    // file records commit order, which legitimately differs from a live
    // observation's time-sorted tie order.)
    let (_, live_bytes) = fixture_run(LinkModel::Uncontended, false);
    let live = observation_from_json(&String::from_utf8(live_bytes).expect("UTF-8"))
        .expect("live v2 stream replays");
    assert_eq!(
        run_to_json(&v1),
        run_to_json(&live),
        "v1 fixture diverged from a live run"
    );
    assert_eq!(
        v1.report(&phase_name).to_json(),
        live.report(&phase_name).to_json(),
        "replayed v1 report diverged from a live run's"
    );
}

#[test]
fn v2_uncontended_files_differ_from_v1_only_in_the_header() {
    let fixture = std::fs::read_to_string(FIXTURE).expect("fixture readable");
    let (_, live_bytes) = fixture_run(LinkModel::Uncontended, false);
    let live = String::from_utf8(live_bytes).expect("UTF-8");

    let (v1_header, v1_body) = fixture.split_once('\n').expect("fixture has a header");
    let (v2_header, v2_body) = live.split_once('\n').expect("stream has a header");
    assert_eq!(
        v1_body, v2_body,
        "uncontended record lines must be identical across schema versions"
    );
    // and the header change is exactly the documented one: the version
    // bump plus the link_model field
    assert_eq!(
        v2_header
            .replace("\"version\":2", "\"version\":1")
            .replace(",\"link_model\":\"uncontended\"", ""),
        v1_header,
        "v2 header must be the v1 header plus the link_model field"
    );
}

#[test]
fn v2_round_trips_buffered_streamed_and_contended() {
    // Buffered and streamed sinks see the same record stream, so the
    // streamed v2 file is byte-for-byte the buffered render — with the
    // contended model (and its wait fields) on and tracing enabled.
    let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 9]);
    let plan = FtPlan::new(&faults).expect("tolerable");
    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<u32> = (0..2_000).map(|_| rng.random()).collect();
    let config = FtConfig {
        engine: EngineKind::Seq,
        link_model: LinkModel::Contended,
        tracing: true,
        ..FtConfig::default()
    };
    let buffered = Arc::new(Mutex::new(BufferedSink::new()));
    let dyn_buf: Arc<Mutex<dyn TraceSink>> = buffered.clone();
    fault_tolerant_sort_streamed(&plan, &config, data.clone(), dyn_buf);
    let buffered_json = buffered.lock().unwrap().to_json();

    let (live, streamed_bytes) = {
        let sink = Arc::new(Mutex::new(StreamingSink::new(Vec::<u8>::new())));
        let dyn_sink: Arc<Mutex<dyn TraceSink>> = sink.clone();
        let (_, _, obs) = fault_tolerant_sort_streamed(&plan, &config, data, dyn_sink);
        let bytes = Arc::try_unwrap(sink)
            .ok()
            .expect("the engine dropped its sink handle")
            .into_inner()
            .unwrap()
            .into_inner()
            .unwrap();
        (obs, bytes)
    };
    let streamed = String::from_utf8(streamed_bytes).expect("UTF-8");
    assert_eq!(streamed, buffered_json, "streamed vs buffered v2 diverged");
    assert!(
        streamed.contains("\"wait\":"),
        "a contended Q4 sort must record at least one nonzero wait"
    );

    // and the file replays to the live observation exactly
    let replayed = observation_from_json(&streamed).expect("v2 replays");
    assert_eq!(replayed.link_model, LinkModel::Contended);
    assert_eq!(
        run_to_json(&replayed),
        run_to_json(&live),
        "v2 round-trip drifted"
    );
    assert_eq!(
        replayed.report(&phase_name).to_json(),
        live.report(&phase_name).to_json(),
        "replayed contended report drifted"
    );
}

#[test]
fn gzipped_run_files_round_trip() {
    let (live, _) = fixture_run(LinkModel::Contended, true);
    let dir = std::env::temp_dir();
    let gz_path = dir.join(format!("ftsort_schema_v2_{}.jsonl.gz", std::process::id()));
    let plain_path = dir.join(format!("ftsort_schema_v2_{}.jsonl", std::process::id()));
    let gz_path = gz_path.to_str().expect("UTF-8 temp path");
    let plain_path = plain_path.to_str().expect("UTF-8 temp path");

    write_run_file(&live, gz_path).expect("gz write");
    write_run_file(&live, plain_path).expect("plain write");
    let gz_bytes = std::fs::read(gz_path).expect("gz readable");
    let plain_bytes = std::fs::read(plain_path).expect("plain readable");
    assert_eq!(&gz_bytes[..2], &[0x1f, 0x8b], "missing gzip magic");
    assert!(
        gz_bytes.len() < plain_bytes.len() / 2,
        "run files must compress well ({} vs {} bytes)",
        gz_bytes.len(),
        plain_bytes.len()
    );

    for path in [gz_path, plain_path] {
        let replayed = observation_from_file(path).expect("replays");
        assert_eq!(replayed.link_model, LinkModel::Contended);
        assert_eq!(
            run_to_json(&replayed),
            run_to_json(&live),
            "{path}: round-trip drifted"
        );
    }
    let _ = std::fs::remove_file(gz_path);
    let _ = std::fs::remove_file(plain_path);
}

#[test]
fn unknown_versions_and_malformed_headers_are_rejected() {
    let (live, _) = fixture_run(LinkModel::Uncontended, false);
    let v2 = run_to_json(&live);

    let v3 = v2.replace("\"version\":2", "\"version\":3");
    let err = observation_from_json(&v3).expect_err("v3 must be rejected");
    assert!(err.contains('3'), "error should name the version: {err}");

    let missing = v2.replace(",\"link_model\":\"uncontended\"", "");
    assert!(
        observation_from_json(&missing).is_err(),
        "a v2 header without link_model must be rejected"
    );

    let bogus = v2.replace(
        "\"link_model\":\"uncontended\"",
        "\"link_model\":\"psychic\"",
    );
    assert!(
        observation_from_json(&bogus).is_err(),
        "an unknown link model must be rejected"
    );
}
