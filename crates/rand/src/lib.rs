//! Vendored stand-in for the `rand` crate (the build environment has no
//! network access to crates.io), exposing the subset of the rand 0.9 API the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `random`, `random_range`, `random_bool`, plus
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! sound for test-data generation. Streams differ from the real `rand`
//! crate's ChaCha-based `StdRng`; nothing in the workspace depends on the
//! exact stream, only on seed-reproducibility.

/// A deterministic pseudo-random generator.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a primitive type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::random`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits into [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges [`Rng::random_range`] can draw from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                ((self.start as i128) + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                ((start as i128) + offset) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Generators provided by this crate.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }
}
