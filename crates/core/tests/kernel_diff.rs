//! Differential suite: branchless/blocked kernels vs the scalar reference.
//!
//! The cost model charges `t_c` per comparison, and the three engines are
//! byte-identical by construction — both properties survive the kernel
//! swap only if the new kernels produce *identical outputs and identical
//! comparison counts* on every input shape. This suite pins that over
//! seeded randomized runs and the adversarial shapes: duplicates,
//! presorted, reversed(-interleaved), all-equal, lengths 0/1, and sizes
//! that are not powers of two (including past the blocking threshold).

use ftsort::distribute::Padded;
use ftsort::seq::{
    charged_merge_comparisons, merge_keep_high_branchless_into, merge_keep_high_into,
    merge_keep_low_branchless_into, merge_keep_low_into, merge_runs_auto_into,
    merge_runs_blocked_into, merge_runs_branchless_into, merge_runs_into, Key, KeyPair,
    BLOCK_BYTES,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Asserts every branchless/blocked kernel against its scalar reference on
/// one `(a, b, keep)` instance: identical outputs AND comparison counts.
fn check_all<K: Key>(a: &[K], b: &[K], keep: usize) {
    let ctx = format!("|a|={} |b|={} keep={keep}", a.len(), b.len());
    let (mut want, mut got) = (Vec::new(), Vec::new());

    let (mut a2, mut b2) = (a.to_vec(), b.to_vec());
    let c_ref = merge_runs_into(&mut a2, &mut b2, &mut want);
    type Kernel<K> = fn(&mut Vec<K>, &mut Vec<K>, &mut Vec<K>) -> u64;
    let kernels: [(&str, Kernel<K>); 3] = [
        ("branchless", merge_runs_branchless_into),
        ("blocked", merge_runs_blocked_into),
        ("auto", merge_runs_auto_into),
    ];
    for (name, kernel) in kernels {
        let (mut a2, mut b2) = (a.to_vec(), b.to_vec());
        let c = kernel(&mut a2, &mut b2, &mut got);
        assert_eq!(got, want, "{name} full merge output ({ctx})");
        assert_eq!(c, c_ref, "{name} full merge count ({ctx})");
    }
    assert_eq!(
        charged_merge_comparisons(a, b),
        c_ref,
        "analytic count formula ({ctx})"
    );

    let (mut a2, mut b2) = (a.to_vec(), b.to_vec());
    let (mut a3, mut b3) = (a.to_vec(), b.to_vec());
    let c_ref = merge_keep_low_into(&mut a2, &mut b2, keep, &mut want);
    let c = merge_keep_low_branchless_into(&mut a3, &mut b3, keep, &mut got);
    assert_eq!(got, want, "keep_low output ({ctx})");
    assert_eq!(c, c_ref, "keep_low count ({ctx})");

    let (mut a2, mut b2) = (a.to_vec(), b.to_vec());
    let (mut a3, mut b3) = (a.to_vec(), b.to_vec());
    let c_ref = merge_keep_high_into(&mut a2, &mut b2, keep, &mut want);
    let c = merge_keep_high_branchless_into(&mut a3, &mut b3, keep, &mut got);
    assert_eq!(got, want, "keep_high output ({ctx})");
    assert_eq!(c, c_ref, "keep_high count ({ctx})");
}

/// Runs `check_all` over every `keep` in small instances, plus the
/// endpoints for larger ones.
fn check_keeps<K: Key>(a: &[K], b: &[K]) {
    let total = a.len() + b.len();
    if total <= 24 {
        for keep in 0..=total {
            check_all(a, b, keep);
        }
    } else {
        for keep in [0, 1, total / 2, total - 1, total] {
            check_all(a, b, keep);
        }
    }
}

fn sorted_u64(rng: &mut StdRng, len: usize, span: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..len).map(|_| rng.random_range(0..span.max(1))).collect();
    v.sort_unstable();
    v
}

#[test]
fn randomized_runs_match_scalar_reference() {
    let mut rng = StdRng::seed_from_u64(1992);
    for _ in 0..150 {
        let la = rng.random_range(0..32);
        let lb = rng.random_range(0..32);
        // narrow span ⇒ plenty of duplicates and cross-run ties
        let a = sorted_u64(&mut rng, la, 12);
        let b = sorted_u64(&mut rng, lb, 12);
        check_keeps(&a, &b);
    }
}

#[test]
fn adversarial_shapes_match_scalar_reference() {
    let shapes: Vec<(Vec<u64>, Vec<u64>)> = vec![
        (vec![], vec![]),  // len 0
        (vec![7], vec![]), // len 1 vs empty
        (vec![], vec![7]),
        (vec![3], vec![3]),                      // single tie
        ((0..17).collect(), (0..17).collect()),  // presorted, all ties, non-pow2
        ((0..10).collect(), (10..23).collect()), // disjoint low/high
        ((13..23).collect(), (0..13).collect()), // disjoint high/low (reversed roles)
        (vec![5; 19], vec![5; 7]),               // all-equal, non-pow2
        (
            (0..31).map(|x| x * 2).collect(),
            (0..9).map(|x| x * 2 + 1).collect(),
        ), // interleaved, uneven
    ];
    for (a, b) in shapes {
        check_keeps(&a, &b);
    }
}

#[test]
fn every_key_type_dispatches_identically() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let la = rng.random_range(0..24);
        let lb = rng.random_range(0..24);
        let raw_a: Vec<u64> = (0..la).map(|_| rng.random_range(0..10)).collect();
        let raw_b: Vec<u64> = (0..lb).map(|_| rng.random_range(0..10)).collect();

        let mut a: Vec<u32> = raw_a.iter().map(|&x| x as u32).collect();
        let mut b: Vec<u32> = raw_b.iter().map(|&x| x as u32).collect();
        a.sort_unstable();
        b.sort_unstable();
        check_keeps(&a, &b);

        let mut a: Vec<i64> = raw_a.iter().map(|&x| x as i64 - 5).collect();
        let mut b: Vec<i64> = raw_b.iter().map(|&x| x as i64 - 5).collect();
        a.sort_unstable();
        b.sort_unstable();
        check_keeps(&a, &b);

        // pair keys: distinct payloads expose any tie-order divergence
        let mut a: Vec<KeyPair> = raw_a
            .iter()
            .enumerate()
            .map(|(i, &x)| KeyPair::new(x, i as u64))
            .collect();
        let mut b: Vec<KeyPair> = raw_b
            .iter()
            .enumerate()
            .map(|(i, &x)| KeyPair::new(x, 1000 + i as u64))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        check_keeps(&a, &b);

        // the wire element type: padded keys with Dummy = +∞ tails
        let mut a: Vec<Padded<i64>> = raw_a
            .iter()
            .map(|&x| {
                if x >= 8 {
                    Padded::Dummy
                } else {
                    Padded::Real(x as i64)
                }
            })
            .collect();
        let mut b: Vec<Padded<i64>> = raw_b.iter().map(|&x| Padded::Real(x as i64)).collect();
        a.sort_unstable();
        b.sort_unstable();
        check_keeps(&a, &b);
    }
}

#[test]
fn blocked_kernel_segments_past_the_threshold_and_still_matches() {
    // Big enough that the blocked kernel takes several merge-path segments
    // (u64: BLOCK_BYTES/2 bytes per segment), with M not a power of two and
    // a duplicate-heavy span so segment boundaries land inside tie plateaus.
    let mut rng = StdRng::seed_from_u64(41);
    let elems = BLOCK_BYTES / size_of::<u64>(); // per run: 8× the segment size
    let a = sorted_u64(&mut rng, elems + 13, (elems / 4) as u64);
    let b = sorted_u64(&mut rng, elems - 7, (elems / 4) as u64);

    let (mut want, mut got) = (Vec::new(), Vec::new());
    let (mut a2, mut b2) = (a.clone(), b.clone());
    let c_ref = merge_runs_into(&mut a2, &mut b2, &mut want);
    let (mut a2, mut b2) = (a.clone(), b.clone());
    let c_blk = merge_runs_blocked_into(&mut a2, &mut b2, &mut got);
    assert_eq!(got, want);
    assert_eq!(c_blk, c_ref);
    let (mut a2, mut b2) = (a, b);
    let c_auto = merge_runs_auto_into(&mut a2, &mut b2, &mut got);
    assert_eq!(got, want);
    assert_eq!(c_auto, c_ref);
}
