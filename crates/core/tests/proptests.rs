//! Randomized property tests of the sorting kernels and their invariants.
//!
//! Each property runs over a deterministic seeded sample of the input space
//! (a lightweight stand-in for a property-testing framework, which the
//! offline build environment cannot provide); failures are reproducible
//! from the fixed seeds.

use ftsort::bitonic::compare_split_local;
use ftsort::distribute::{chunk_len, gather, scatter};
use ftsort::seq::{
    heapsort, merge_keep_high, merge_keep_low, merge_runs, mergesort, quicksort, sort_bitonic_run,
    Direction, LocalSort,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn keys(rng: &mut StdRng, len: usize) -> Vec<i32> {
    (0..len).map(|_| rng.random()).collect()
}

/// Two random vectors of the same (random) length below `max`.
fn equal_pair(rng: &mut StdRng, max: usize) -> (Vec<i32>, Vec<i32>) {
    let k = rng.random_range(0..max);
    (keys(rng, k), keys(rng, k))
}

#[test]
fn heapsort_matches_std() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1001);
    for _ in 0..CASES {
        let len = rng.random_range(0..300);
        let mut v = keys(&mut rng, len);
        let mut expect = v.clone();
        expect.sort_unstable();
        heapsort(&mut v, Direction::Ascending);
        assert_eq!(v, expect);
        heapsort(&mut v, Direction::Descending);
        expect.reverse();
        assert_eq!(v, expect);
    }
}

#[test]
fn quicksort_and_mergesort_match_std() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1002);
    for _ in 0..CASES {
        let len = rng.random_range(0..300);
        let v = keys(&mut rng, len);
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut q = v.clone();
        quicksort(&mut q, Direction::Ascending);
        assert_eq!(q, expect);
        let mut m = v;
        mergesort(&mut m, Direction::Ascending);
        assert_eq!(m, expect);
    }
}

#[test]
fn all_local_sorts_agree() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1003);
    for _ in 0..CASES {
        let v: Vec<i32> = (0..rng.random_range(0..200))
            .map(|_| rng.random_range(-500..500))
            .collect();
        let mut a = v.clone();
        let mut b = v.clone();
        let mut c = v;
        LocalSort::Heapsort.sort(&mut a, Direction::Ascending);
        LocalSort::Quicksort.sort(&mut b, Direction::Ascending);
        LocalSort::Mergesort.sort(&mut c, Direction::Ascending);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}

#[test]
fn merge_runs_is_a_sorted_union() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1004);
    for _ in 0..CASES {
        let (la, lb) = (rng.random_range(0..100), rng.random_range(0..100));
        let mut a = keys(&mut rng, la);
        let mut b = keys(&mut rng, lb);
        a.sort_unstable();
        b.sort_unstable();
        let mut expect: Vec<i32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        let (m, c) = merge_runs(a.clone(), b.clone());
        assert_eq!(m, expect);
        assert!(c <= (a.len() + b.len()).saturating_sub(1) as u64);
    }
}

#[test]
fn merge_keep_bounds_comparisons() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1005);
    for _ in 0..CASES {
        let (mut a, mut b) = equal_pair(&mut rng, 80);
        a.sort_unstable();
        b.sort_unstable();
        let k = a.len();
        let (lo, c1) = merge_keep_low(a.clone(), b.clone(), k);
        let (hi, c2) = merge_keep_high(a.clone(), b.clone(), k);
        assert!(c1 <= k as u64);
        assert!(c2 <= k as u64);
        let mut both: Vec<i32> = lo.iter().chain(hi.iter()).copied().collect();
        both.sort_unstable();
        let mut expect: Vec<i32> = a.into_iter().chain(b).collect();
        expect.sort_unstable();
        assert_eq!(both, expect);
    }
}

#[test]
fn compare_split_local_is_an_exact_split() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1006);
    for _ in 0..CASES {
        let (mut a, mut b) = equal_pair(&mut rng, 60);
        a.sort_unstable();
        b.sort_unstable();
        let k = a.len();
        let mut expect: Vec<i32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        let (lo, hi) = compare_split_local(a, b);
        assert_eq!(&lo[..], &expect[..k]);
        assert_eq!(&hi[..], &expect[k..]);
    }
}

#[test]
fn bitonic_run_sorter_handles_any_updown() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1007);
    for _ in 0..CASES {
        let (lu, ld) = (rng.random_range(0..50), rng.random_range(0..50));
        let mut u = keys(&mut rng, lu);
        u.sort_unstable();
        let mut d = keys(&mut rng, ld);
        d.sort_unstable_by(|a, b| b.cmp(a));
        let mut input = u;
        input.extend(d);
        let mut expect = input.clone();
        expect.sort_unstable();
        let (out, _) = sort_bitonic_run(input);
        assert_eq!(out, expect);
    }
}

#[test]
fn scatter_gather_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1008);
    for _ in 0..CASES {
        let data: Vec<u64> = (0..rng.random_range(0..200))
            .map(|_| rng.random())
            .collect();
        let parts = rng.random_range(1usize..20);
        let chunks = scatter(data.clone(), parts);
        assert_eq!(chunks.len(), parts);
        let k = chunk_len(data.len(), parts);
        assert!(chunks.iter().all(|c| c.len() == k));
        assert_eq!(gather(chunks), data);
    }
}
