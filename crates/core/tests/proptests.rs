//! Property-based tests of the sorting kernels and their invariants.

use ftsort::bitonic::compare_split_local;
use ftsort::distribute::{chunk_len, gather, scatter};
use ftsort::seq::{
    heapsort, merge_keep_high, merge_keep_low, merge_runs, mergesort, quicksort,
    sort_bitonic_run, Direction, LocalSort,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Two vectors of the same (arbitrary) length.
fn equal_pairs(max: usize) -> impl Strategy<Value = (Vec<i32>, Vec<i32>)> {
    (0..max).prop_flat_map(|k| (vec(any::<i32>(), k), vec(any::<i32>(), k)))
}

proptest! {
    #[test]
    fn heapsort_matches_std(mut v in vec(any::<i32>(), 0..300)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        heapsort(&mut v, Direction::Ascending);
        prop_assert_eq!(&v, &expect);
        heapsort(&mut v, Direction::Descending);
        expect.reverse();
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn quicksort_and_mergesort_match_std(v in vec(any::<i32>(), 0..300)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut q = v.clone();
        quicksort(&mut q, Direction::Ascending);
        prop_assert_eq!(&q, &expect);
        let mut m = v;
        mergesort(&mut m, Direction::Ascending);
        prop_assert_eq!(m, expect);
    }

    #[test]
    fn all_local_sorts_agree(v in vec(any::<i16>(), 0..200)) {
        let mut a = v.clone();
        let mut b = v.clone();
        let mut c = v;
        LocalSort::Heapsort.sort(&mut a, Direction::Ascending);
        LocalSort::Quicksort.sort(&mut b, Direction::Ascending);
        LocalSort::Mergesort.sort(&mut c, Direction::Ascending);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    #[test]
    fn merge_runs_is_a_sorted_union(mut a in vec(any::<i32>(), 0..100), mut b in vec(any::<i32>(), 0..100)) {
        a.sort_unstable();
        b.sort_unstable();
        let mut expect: Vec<i32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        let (m, c) = merge_runs(a.clone(), b.clone());
        prop_assert_eq!(m, expect);
        prop_assert!(c <= (a.len() + b.len()).saturating_sub(1) as u64);
    }

    #[test]
    fn merge_keep_bounds_comparisons((mut a, mut b) in equal_pairs(80)) {
        a.sort_unstable();
        b.sort_unstable();
        let k = a.len();
        let (lo, c1) = merge_keep_low(a.clone(), b.clone(), k);
        let (hi, c2) = merge_keep_high(a.clone(), b.clone(), k);
        prop_assert!(c1 <= k as u64);
        prop_assert!(c2 <= k as u64);
        let mut both: Vec<i32> = lo.iter().chain(hi.iter()).copied().collect();
        both.sort_unstable();
        let mut expect: Vec<i32> = a.into_iter().chain(b).collect();
        expect.sort_unstable();
        prop_assert_eq!(both, expect);
    }

    #[test]
    fn compare_split_local_is_an_exact_split((mut a, mut b) in equal_pairs(60)) {
        a.sort_unstable();
        b.sort_unstable();
        let k = a.len();
        let mut expect: Vec<i32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        let (lo, hi) = compare_split_local(a, b);
        prop_assert_eq!(&lo[..], &expect[..k]);
        prop_assert_eq!(&hi[..], &expect[k..]);
    }

    #[test]
    fn bitonic_run_sorter_handles_any_updown(up in vec(any::<i32>(), 0..50), down in vec(any::<i32>(), 0..50)) {
        let mut u = up;
        u.sort_unstable();
        let mut d = down;
        d.sort_unstable_by(|a, b| b.cmp(a));
        let mut input = u;
        input.extend(d);
        let mut expect = input.clone();
        expect.sort_unstable();
        let (out, _) = sort_bitonic_run(input);
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn scatter_gather_roundtrip(data in vec(any::<u64>(), 0..200), parts in 1usize..20) {
        let chunks = scatter(data.clone(), parts);
        prop_assert_eq!(chunks.len(), parts);
        let k = chunk_len(data.len(), parts);
        prop_assert!(chunks.iter().all(|c| c.len() == k));
        prop_assert_eq!(gather(chunks), data);
    }
}
