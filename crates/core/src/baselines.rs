//! Additional (fault-free) parallel sorting baselines.
//!
//! The paper's §1 situates bitonic sort among the sorting algorithms
//! "directly developed for the hypercubes". Two contemporaries are
//! implemented here to put the bitonic numbers in context:
//!
//! * [`odd_even_ring_sort`] — odd-even transposition sort over the
//!   dilation-1 Gray-code ring embedding: `P` compare-split phases between
//!   ring neighbors (each one physical hop). Simple, but `Θ(P)` phases
//!   instead of bitonic's `Θ(log² P)`.
//! * [`hyperquicksort`] — Wagar's hyperquicksort: local sort, then `n`
//!   rounds of pivot broadcast + split exchange along each dimension.
//!   `Θ(log P)` rounds on average but load-imbalanced: run lengths diverge
//!   as the recursion deepens.

use crate::bitonic::{compare_split_remote, KeepHalf, Protocol};
use crate::distribute::{gather, scatter, Padded};
use crate::seq::{heapsort, merge_runs_auto, Direction, Key, Scratch};
use hypercube::address::NodeId;
use hypercube::cost::CostModel;
use hypercube::embedding::RingEmbedding;
use hypercube::sim::{Comm, Engine, EngineKind, Tag};
use hypercube::topology::Hypercube;

use crate::bitonic::sort::SortOutcome;

/// Odd-even transposition sort of `data` over the Gray-code ring embedded
/// in a fault-free `Q_n`. Output is sorted in *ring position* order.
pub fn odd_even_ring_sort<K>(
    cube: Hypercube,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
) -> SortOutcome<K>
where
    K: Key,
{
    odd_even_ring_sort_with_engine(cube, cost, data, protocol, EngineKind::default())
}

/// [`odd_even_ring_sort`] with an explicit execution engine. Both engines
/// return identical outcomes; the choice only affects wall-clock speed.
pub fn odd_even_ring_sort_with_engine<K>(
    cube: Hypercube,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
    kind: EngineKind,
) -> SortOutcome<K>
where
    K: Key,
{
    assert!(cube.dim() >= 1, "ring needs at least Q1");
    let ring = RingEmbedding::new(cube);
    let p = cube.len();
    let m_total = data.len();
    let chunks = scatter(data, p);

    // inputs by physical address; chunk i goes to ring position i
    let mut inputs: Vec<Option<Vec<Padded<K>>>> = (0..p).map(|_| None).collect();
    for (pos, chunk) in chunks.into_iter().enumerate() {
        inputs[ring.node_at(pos).index()] = Some(chunk);
    }

    let engine = Engine::fault_free(cube, cost).with_engine(kind);
    let ring_ref = &ring;
    let out = engine.run(inputs, async move |ctx, mut run| {
        let pos = ring_ref.position_of(ctx.me());
        let mut scratch = Scratch::new();
        let comparisons = heapsort(&mut run, Direction::Ascending);
        ctx.charge_comparisons(comparisons as usize);
        // P phases; in phase t, pair starts at even (t even) or odd (t odd)
        // positions. The wrap-around pair (P-1, 0) is never used: odd-even
        // transposition sorts a linear array, and the Gray-code path is a
        // Hamiltonian path when the wrap edge is dropped.
        for t in 0..p {
            // phase t activates pairs (i, i+1) with i ≡ t (mod 2)
            let (partner_pos, keep) = if pos % 2 == t % 2 {
                if pos + 1 >= p {
                    continue; // no partner past the end of the array
                }
                (pos + 1, KeepHalf::Low)
            } else {
                if pos == 0 {
                    continue; // no partner before the start
                }
                (pos - 1, KeepHalf::High)
            };
            let partner = ring_ref.node_at(partner_pos);
            run = compare_split_remote(
                ctx,
                partner,
                Tag::phase(7, t as u16, 0),
                run,
                keep,
                protocol,
                &mut scratch,
            )
            .await;
        }
        run
    });

    let time_us = out.turnaround();
    let stats = out.total_stats();
    let mut by_pos: Vec<Vec<Padded<K>>> = vec![Vec::new(); p];
    for (node, run) in out.into_results() {
        by_pos[ring.position_of(node)] = run;
    }
    let sorted = gather(by_pos);
    assert_eq!(sorted.len(), m_total);
    SortOutcome {
        sorted,
        time_us,
        stats,
        processors_used: p,
    }
}

/// Hyperquicksort on a fault-free `Q_n`: output sorted in address order,
/// with per-node run lengths that depend on the pivots.
pub fn hyperquicksort<K>(cube: Hypercube, cost: CostModel, data: Vec<K>) -> SortOutcome<K>
where
    K: Key,
{
    hyperquicksort_with_engine(cube, cost, data, EngineKind::default())
}

/// [`hyperquicksort`] with an explicit execution engine. Both engines
/// return identical outcomes; the choice only affects wall-clock speed.
pub fn hyperquicksort_with_engine<K>(
    cube: Hypercube,
    cost: CostModel,
    data: Vec<K>,
    kind: EngineKind,
) -> SortOutcome<K>
where
    K: Key,
{
    let p = cube.len();
    let m_total = data.len();
    let chunks = scatter(data, p);
    let inputs: Vec<Option<Vec<Padded<K>>>> = chunks.into_iter().map(Some).collect();

    let engine = Engine::fault_free(cube, cost).with_engine(kind);
    let out = engine.run(inputs, async move |ctx, mut run| {
        let me = ctx.me();
        let comparisons = heapsort(&mut run, Direction::Ascending);
        ctx.charge_comparisons(comparisons as usize);
        // rounds over dimensions d = n−1 … 0: the current subcube is the
        // set of nodes agreeing with me on bits > d.
        for d in (0..ctx.cube().dim()).rev() {
            // subcube root (low bits cleared) picks the pivot: its median
            let root_addr = NodeId::new(me.raw() & !((1u32 << (d + 1)) - 1));
            let pivot: Option<Padded<K>> = if me == root_addr {
                run.get(run.len() / 2).cloned()
            } else {
                None
            };
            // broadcast the pivot within the subcube via dimension sweep
            // over dims d..0 (root sends down; empty payload = no pivot,
            // meaning the root's run was empty — use Dummy as +∞ pivot)
            let pivot = broadcast_in_subcube(ctx, root_addr, d, pivot).await;
            // split the local run and exchange along dimension d
            let split_at = run.partition_point(|x| *x < pivot);
            ctx.charge_comparisons((run.len().max(1)).ilog2() as usize + 1);
            let partner = me.neighbor(d);
            let tag = Tag::phase(8, d as u16, 0);
            let keep_low = me.bit(d) == 0;
            let (kept, sent) = if keep_low {
                let high = run.split_off(split_at);
                (run, high)
            } else {
                let high = run.split_off(split_at);
                (high, run)
            };
            ctx.send(partner, tag, sent);
            let received = ctx.recv(partner, tag).await;
            let (merged, c) = merge_runs_auto(kept, received);
            ctx.charge_comparisons(c as usize);
            run = merged;
        }
        run
    });

    let time_us = out.turnaround();
    let stats = out.total_stats();
    let mut by_node: Vec<Vec<Padded<K>>> = vec![Vec::new(); p];
    for (node, run) in out.into_results() {
        by_node[node.index()] = run;
    }
    let sorted = gather(by_node);
    assert_eq!(sorted.len(), m_total);
    SortOutcome {
        sorted,
        time_us,
        stats,
        processors_used: p,
    }
}

/// Broadcast of one optional key from the subcube root over dimensions
/// `d..=0`; a missing pivot (empty root run) is replaced by `Dummy` (`+∞`),
/// which sends everything to the low side — a safe degenerate split.
async fn broadcast_in_subcube<K, C>(
    ctx: &mut C,
    root: NodeId,
    d: usize,
    pivot: Option<Padded<K>>,
) -> Padded<K>
where
    K: Key,
    C: Comm<Padded<K>>,
{
    let me = ctx.me();
    let rel = me.raw() ^ root.raw();
    debug_assert_eq!(rel >> (d + 1), 0, "root must be in my subcube");
    let mut have: Option<Padded<K>> = if me == root {
        Some(pivot.unwrap_or(Padded::Dummy))
    } else {
        None
    };
    for dim in (0..=d).rev() {
        let tag = Tag::phase(9, d as u16, dim as u16);
        let lower_bits = rel & ((1u32 << dim) - 1);
        if let Some(ref v) = have {
            if rel >> dim & 1 == 0 && lower_bits == 0 {
                // hold the pivot and lead this half: forward across `dim`
                ctx.send(me.neighbor(dim), tag, vec![*v]);
            }
        } else if rel >> dim & 1 == 1 && lower_bits == 0 {
            let got = ctx.recv(me.neighbor(dim), tag).await;
            have = got.into_iter().next();
        }
    }
    have.expect("pivot broadcast reached every subcube member")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn keys(rng: &mut StdRng, m: usize) -> Vec<u32> {
        (0..m).map(|_| rng.random_range(0..100_000)).collect()
    }

    #[test]
    fn odd_even_sorts() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 1..=4 {
            for m in [0usize, 1, 10, 100, 257] {
                let data = keys(&mut rng, m);
                let mut expect = data.clone();
                expect.sort_unstable();
                let out = odd_even_ring_sort(
                    Hypercube::new(n),
                    CostModel::paper_form(),
                    data,
                    Protocol::HalfExchange,
                );
                assert_eq!(out.sorted, expect, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn hyperquicksort_sorts() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in 0..=4 {
            for m in [0usize, 1, 17, 200, 1000] {
                let data = keys(&mut rng, m);
                let mut expect = data.clone();
                expect.sort_unstable();
                let out = hyperquicksort(Hypercube::new(n), CostModel::paper_form(), data);
                assert_eq!(out.sorted, expect, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn hyperquicksort_handles_duplicates_and_sorted_input() {
        let out = hyperquicksort(Hypercube::new(3), CostModel::paper_form(), vec![7u32; 300]);
        assert!(out.sorted.iter().all(|&x| x == 7));
        assert_eq!(out.sorted.len(), 300);
        let out = hyperquicksort(
            Hypercube::new(3),
            CostModel::paper_form(),
            (0..500u32).collect(),
        );
        assert_eq!(out.sorted, (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn bitonic_beats_odd_even_at_scale() {
        // Θ(log²P) substages vs Θ(P) phases: on Q5 bitonic must win.
        let mut rng = StdRng::seed_from_u64(3);
        let data = keys(&mut rng, 32_000);
        let bitonic = crate::bitonic::bitonic_sort(
            Hypercube::new(5),
            CostModel::paper_form(),
            data.clone(),
            Protocol::HalfExchange,
        );
        let oe = odd_even_ring_sort(
            Hypercube::new(5),
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        );
        assert_eq!(bitonic.sorted, oe.sorted);
        assert!(
            bitonic.time_us < oe.time_us,
            "bitonic {} vs odd-even {}",
            bitonic.time_us,
            oe.time_us
        );
    }

    #[test]
    fn hyperquicksort_moves_fewer_elements_than_bitonic() {
        // hyperquicksort exchanges each key O(log P) times in expectation;
        // bitonic moves whole runs every substage.
        let mut rng = StdRng::seed_from_u64(4);
        let data = keys(&mut rng, 32_000);
        let bitonic = crate::bitonic::bitonic_sort(
            Hypercube::new(5),
            CostModel::paper_form(),
            data.clone(),
            Protocol::HalfExchange,
        );
        let hq = hyperquicksort(Hypercube::new(5), CostModel::paper_form(), data);
        assert_eq!(bitonic.sorted, hq.sorted);
        assert!(
            hq.stats.elements_sent < bitonic.stats.elements_sent,
            "hq {} vs bitonic {}",
            hq.stats.elements_sent,
            bitonic.stats.elements_sent
        );
    }
}
