//! # ftsort — fault-tolerant sorting on hypercube multicomputers
//!
//! A faithful implementation of
//! *"Fault-Tolerant Sorting Algorithm on Hypercube Multicomputers"*
//! (Jang-Ping Sheu, Yuh-Shyan Chen, Chih-Yung Chang — ICPP 1992) on the
//! simulated multicomputer provided by the [`hypercube`] crate.
//!
//! * [`seq`] — local heapsort and merge kernels with comparison counting.
//! * [`bitonic`] — compare-split protocols, the distributed bitonic sort,
//!   and the single-fault variant of §2.1.
//! * [`partition`] — the §2.2 partition algorithm: *mincut* and the cutting
//!   set `Ψ` over the cutting-dimension tree, and the resulting
//!   single-fault subcube structure `F_n^m`.
//! * [`select`] — the §3 heuristics: cutting-sequence selection by the
//!   minmax extra-communication formula, and dangling-processor placement.
//! * [`ftsort`] — the full fault-tolerant sorting algorithm (§3 steps 1–8),
//!   tolerating up to `n − 1` faulty processors.
//! * [`mffs`] — the maximum-dimensional fault-free subcube baseline the
//!   paper compares against.
//! * [`cost_model`] — the paper's closed-form worst-case time `T`.
//! * [`distribute`] — host scatter/gather with `∞` dummy-key padding.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod bitonic;
pub mod cost_model;
pub mod distribute;
pub mod ftsort;
pub mod mffs;
pub mod partition;
pub mod select;
pub mod seq;
pub mod topk;

/// The commonly-used names in one import.
pub mod prelude {
    pub use crate::baselines::{
        hyperquicksort, hyperquicksort_with_engine, odd_even_ring_sort,
        odd_even_ring_sort_with_engine,
    };
    pub use crate::bitonic::{
        bitonic_sort, bitonic_sort_with_engine, single_fault_bitonic_sort, Protocol, SortOutcome,
    };
    pub use crate::ftsort::{
        fault_tolerant_sort, fault_tolerant_sort_configured, fault_tolerant_sort_instrumented,
        fault_tolerant_sort_observed, fault_tolerant_sort_pooled, fault_tolerant_sort_profiled,
        fault_tolerant_sort_sched, fault_tolerant_sort_streamed, fault_tolerant_sort_with_plan,
        phase_name, FtConfig, FtError, FtPlan, PhaseBreakdown, Step8Strategy,
    };
    pub use crate::mffs::{max_fault_free_subcube, mffs_sort, mffs_sort_with_engine};
    pub use crate::partition::{partition, PartitionResult, SingleFaultStructure};
    pub use crate::select::{select_cutting_sequence, Selection};
    pub use crate::seq::{Direction, LocalSort};
    pub use crate::topk::{fault_tolerant_top_k, top_k_on_faulty_cube};
    pub use hypercube::prelude::*;
}
