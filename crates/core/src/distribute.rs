//! Host-side distribution and collection of elements.
//!
//! The paper's host distributes `⌊M/N'⌋` elements to each of the `N'` live
//! processors, filling with dummy keys (`∞`) when `M` does not divide evenly
//! (§2.1). We realize `∞` as [`Padded::Dummy`], which compares greater than
//! every real key, so dummies sink to the global tail and are stripped at
//! gather time.

use serde::{Deserialize, Serialize};

/// A key extended with the paper's `∞` dummy value.
///
/// Derived ordering makes every `Real` key less than `Dummy`, so padded
/// processors behave as if they held `+∞` sentinels.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Padded<K> {
    /// An actual input key.
    Real(K),
    /// The `∞` filler.
    Dummy,
}

impl<K> Padded<K> {
    /// Extracts the real key, if any.
    pub fn into_real(self) -> Option<K> {
        match self {
            Padded::Real(k) => Some(k),
            Padded::Dummy => None,
        }
    }

    /// Whether this is a real key.
    pub fn is_real(&self) -> bool {
        matches!(self, Padded::Real(_))
    }
}

/// Splits `data` into `parts` chunks of exactly `⌈data.len()/parts⌉` padded
/// keys each — the host's scatter step. Chunks are filled in order; the last
/// chunks carry the dummies.
///
/// # Panics
/// If `parts == 0`.
pub fn scatter<K>(data: Vec<K>, parts: usize) -> Vec<Vec<Padded<K>>> {
    assert!(parts > 0, "cannot scatter to zero processors");
    let k = data.len().div_ceil(parts).max(1);
    let mut chunks: Vec<Vec<Padded<K>>> = Vec::with_capacity(parts);
    let mut it = data.into_iter();
    for _ in 0..parts {
        let mut chunk = Vec::with_capacity(k);
        for _ in 0..k {
            chunk.push(match it.next() {
                Some(x) => Padded::Real(x),
                None => Padded::Dummy,
            });
        }
        chunks.push(chunk);
    }
    debug_assert!(it.next().is_none());
    chunks
}

/// Reassembles sorted output: concatenates the chunks in the given order and
/// strips the dummy keys — the host's gather step.
pub fn gather<K>(chunks: impl IntoIterator<Item = Vec<Padded<K>>>) -> Vec<K> {
    chunks
        .into_iter()
        .flatten()
        .filter_map(Padded::into_real)
        .collect()
}

/// Elements per processor for `m_total` elements over `parts` processors —
/// the paper's `⌈M/N'⌉` (at least 1 so every processor holds a run).
pub fn chunk_len(m_total: usize, parts: usize) -> usize {
    assert!(parts > 0);
    m_total.div_ceil(parts).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_sorts_above_all_real_keys() {
        assert!(Padded::Real(u32::MAX) < Padded::Dummy);
        assert!(Padded::Real(0u32) < Padded::Real(1u32));
        assert_eq!(Padded::<u32>::Dummy, Padded::Dummy);
        let mut v = vec![
            Padded::Dummy,
            Padded::Real(5),
            Padded::Dummy,
            Padded::Real(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Padded::Real(1),
                Padded::Real(5),
                Padded::Dummy,
                Padded::Dummy
            ]
        );
    }

    #[test]
    fn scatter_even_division() {
        let chunks = scatter(vec![1, 2, 3, 4, 5, 6], 3);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 2));
        assert!(chunks.iter().flatten().all(|p| p.is_real()));
    }

    #[test]
    fn scatter_pads_the_tail() {
        // 47 elements on 28 processors (the paper's Q5/F_5^3 example uses
        // 47 elements on 24 live processors — here over 28): k = ⌈47/28⌉ = 2
        let chunks = scatter((0..47u32).collect(), 28);
        assert_eq!(chunks.len(), 28);
        assert!(chunks.iter().all(|c| c.len() == 2));
        let dummies = chunks.iter().flatten().filter(|p| !p.is_real()).count();
        assert_eq!(dummies, 28 * 2 - 47);
    }

    #[test]
    fn scatter_fewer_elements_than_processors() {
        let chunks = scatter(vec![9, 8], 4);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len() == 1));
        assert_eq!(chunks[0][0], Padded::Real(9));
        assert_eq!(chunks[1][0], Padded::Real(8));
        assert_eq!(chunks[2][0], Padded::Dummy);
    }

    #[test]
    fn scatter_empty_input_gives_all_dummies() {
        let chunks = scatter(Vec::<u32>::new(), 3);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().flatten().all(|p| !p.is_real()));
    }

    #[test]
    fn gather_inverts_scatter_order_and_strips_dummies() {
        let data: Vec<u32> = (0..47).collect();
        let chunks = scatter(data.clone(), 28);
        assert_eq!(gather(chunks), data);
    }

    #[test]
    fn chunk_len_matches_paper_ceiling() {
        assert_eq!(chunk_len(47, 24), 2); // Fig. 6: 47 elements, 24 live, 2 each
        assert_eq!(chunk_len(48, 24), 2);
        assert_eq!(chunk_len(49, 24), 3);
        assert_eq!(chunk_len(0, 4), 1);
    }

    #[test]
    #[should_panic(expected = "zero processors")]
    fn scatter_to_zero_panics() {
        let _ = scatter(vec![1], 0);
    }
}
