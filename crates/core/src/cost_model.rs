//! The paper's closed-form worst-case cost `T` (§3).
//!
//! With `k = ⌈M/N'⌉` keys per live processor, `m` cutting dimensions,
//! `s = n − m`, the paper derives
//!
//! ```text
//! T = [(k − 1)·log k + 1]·t_c                       — step-3 heapsort
//!   + s(s+3)/2 · [ k·t_sr + (⌈3k/2⌉ − 1)·t_c ]      — step-3 subcube sort
//!   + m(m+3)/2 · { (s+1)·k·t_sr + (⌈k/2⌉ − 1)·t_c   — step 7(a,b)
//!                 + (k − 1)·t_c                      — step 7(c) merge
//!                 + s(s+3)/2·[ k·t_sr + (⌈3k/2⌉ − 1)·t_c ] }  — step 8
//! ```
//!
//! (The paper writes the subcube-sort loop count as `s(s+3)/2`; the sort has
//! `s(s+1)/2` compare-split substages, the extra `s` accounting for the
//! heavier final-merge loops in Seidel & Ziegler's accounting. We follow the
//! paper's expression verbatim.)
//!
//! This module exists for comparing the *analytic* prediction against the
//! *simulated* time (see `EXPERIMENTS.md`); the simulation itself charges
//! actual operation counts instead.

use hypercube::cost::CostModel;

/// Inputs of the closed-form estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostInputs {
    /// Cube dimension `n`.
    pub n: usize,
    /// Cutting dimensions `m` (0 for the fault-free / single-fault cases).
    pub m: usize,
    /// Total number of keys `M`.
    pub m_total: usize,
}

impl CostInputs {
    /// Live processors `N' = 2^n − 2^m`; for `m = 0` the whole cube is
    /// counted (the one dead node of the single-fault case changes `k`
    /// only marginally).
    pub fn live_count(&self) -> usize {
        if self.m == 0 {
            1 << self.n
        } else {
            (1 << self.n) - (1 << self.m)
        }
    }

    /// Keys per processor `k = ⌈M/N'⌉` over an explicit live count.
    pub fn keys_per_processor(&self, live: usize) -> usize {
        self.m_total.div_ceil(live).max(1)
    }
}

/// Evaluates the paper's worst-case `T` (µs) for the fault-tolerant sort.
pub fn predicted_time(cost: &CostModel, inputs: &CostInputs) -> f64 {
    let n = inputs.n;
    let m = inputs.m;
    let s = n - m;
    let live = inputs.live_count();
    let k = inputs.keys_per_processor(live) as f64;
    let t_sr = cost.t_sr;
    let t_c = cost.t_c;

    let heapsort = if k > 1.0 {
        ((k - 1.0) * k.log2().ceil() + 1.0) * t_c
    } else {
        t_c
    };
    let subcube_sort_loops = (s * (s + 3)) as f64 / 2.0;
    let subcube_loop_cost = k * t_sr + ((1.5 * k).ceil() - 1.0) * t_c;
    let step3 = heapsort + subcube_sort_loops * subcube_loop_cost;

    let merge_loops = (m * (m + 3)) as f64 / 2.0;
    let step7ab = (s as f64 + 1.0) * k * t_sr + ((k / 2.0).ceil() - 1.0) * t_c;
    let step7c = (k - 1.0) * t_c;
    let step8 = subcube_sort_loops * subcube_loop_cost;

    step3 + merge_loops * (step7ab + step7c + step8)
}

/// Closed-form prediction of **this implementation's** simulated time
/// (merge-based step 8, half-exchange protocol), as opposed to
/// [`predicted_time`] which transcribes the paper's formula.
///
/// Per-node charges, with `k = ⌈M/N'⌉`:
/// * heapsort ≈ `2k·log₂k · t_c` (build + extract, measured constant);
/// * a neighbor compare-split substage ≈ `2k·t_sr` latency (two half-runs
///   each way, pipelined sender/receiver) + `≈2.5k·t_c` (scan + piece
///   merges + final merge);
/// * an inter-subcube substage pays `(s+1)` hops: `k(2+s)·t_sr`;
/// * step 8 = `s` neighbor substages, plus an expected half of a window
///   reversal (`k(1+s)/2·t_sr` when it fires, probability ≈ ½).
///
/// Substage counts: step 3 has `s(s+1)/2`, the merge loop runs `m(m+1)/2`
/// iterations of (step 7 + step 8).
pub fn predicted_time_implementation(cost: &CostModel, inputs: &CostInputs) -> f64 {
    let n = inputs.n;
    let m = inputs.m;
    let s = n - m;
    let live = inputs.live_count();
    let k = inputs.keys_per_processor(live) as f64;
    let t_sr = cost.t_sr;
    let t_c = cost.t_c;

    let heapsort = if k > 1.0 {
        2.0 * k * k.log2() * t_c
    } else {
        t_c
    };
    let neighbor_substage = 2.0 * k * t_sr + 2.5 * k * t_c;
    let step3 = (s * (s + 1)) as f64 / 2.0 * neighbor_substage;
    let step7 = k * (2.0 + s as f64) * t_sr + 2.5 * k * t_c;
    let step8 = s as f64 * neighbor_substage + 0.25 * k * (1.0 + s as f64) * t_sr;
    let merge_loop = (m * (m + 1)) as f64 / 2.0 * (step7 + step8);
    heapsort + step3 + merge_loop
}

/// The asymptotic regime the paper reports: for `M >> N` the cost approaches
/// `O(k·log k)` — this returns the dominant heapsort term for comparison.
pub fn dominant_term(cost: &CostModel, inputs: &CostInputs) -> f64 {
    let live = inputs.live_count();
    let k = inputs.keys_per_processor(live) as f64;
    if k > 1.0 {
        (k - 1.0) * k.log2().ceil() * cost.t_c
    } else {
        cost.t_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_cost() -> CostModel {
        CostModel::paper_form()
    }

    #[test]
    fn fault_free_case_reduces_to_bitonic_terms() {
        // m = 0: no inter-subcube stage at all
        let t = predicted_time(
            &paper_cost(),
            &CostInputs {
                n: 5,
                m: 0,
                m_total: 3200,
            },
        );
        assert!(t > 0.0);
        // the m-dependent part vanishes: doubling t_sr only scales the
        // subcube-sort communication
        let inputs = CostInputs {
            n: 5,
            m: 0,
            m_total: 3200,
        };
        let mut expensive = paper_cost();
        expensive.t_sr *= 2.0;
        let t2 = predicted_time(&expensive, &inputs);
        assert!(t2 > t);
    }

    #[test]
    fn time_grows_with_m_total() {
        let c = paper_cost();
        let t1 = predicted_time(
            &c,
            &CostInputs {
                n: 6,
                m: 3,
                m_total: 3_200,
            },
        );
        let t2 = predicted_time(
            &c,
            &CostInputs {
                n: 6,
                m: 3,
                m_total: 32_000,
            },
        );
        let t3 = predicted_time(
            &c,
            &CostInputs {
                n: 6,
                m: 3,
                m_total: 320_000,
            },
        );
        assert!(t1 < t2 && t2 < t3);
        // superlinear growth in M is bounded by the k log k regime: ratio
        // t3/t2 should be a bit above 10 but below 20
        let ratio = t3 / t2;
        assert!(ratio > 9.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn more_cuts_cost_more_for_same_data() {
        // same n and M: a finer partition (larger m) has fewer live
        // processors and more inter-subcube stages
        let c = paper_cost();
        let t_m1 = predicted_time(
            &c,
            &CostInputs {
                n: 6,
                m: 1,
                m_total: 64_000,
            },
        );
        let t_m3 = predicted_time(
            &c,
            &CostInputs {
                n: 6,
                m: 3,
                m_total: 64_000,
            },
        );
        assert!(t_m1 < t_m3);
    }

    #[test]
    fn paper_formula_contradicts_figure_7_for_r_2() {
        // Reproduction finding (see EXPERIMENTS.md): the paper's *formula*,
        // which charges a FULL bitonic re-sort in step 8 on every substage,
        // predicts that the fault-tolerant sort on Q6 with m = 1 (two
        // faults) is SLOWER than plain bitonic on the fault-free Q5 — the
        // opposite of the paper's measured Figure 7(a). The measured curves
        // are reproduced by the merge-based step 8
        // ([`crate::ftsort::Step8Strategy::BitonicMerge`]); this test pins
        // the formula's (contradictory) prediction so the discrepancy stays
        // documented.
        let c = paper_cost();
        let m_total = 320_000;
        let ours = predicted_time(
            &c,
            &CostInputs {
                n: 6,
                m: 1,
                m_total,
            },
        );
        let fallback = predicted_time(
            &c,
            &CostInputs {
                n: 5,
                m: 0,
                m_total,
            },
        );
        assert!(
            ours > fallback,
            "formula prediction flipped: ours {ours} vs Q5 fallback {fallback}"
        );
    }

    #[test]
    fn single_fault_prediction_beats_halved_cube() {
        // For r = 1 (m = 0, N' = 2^n in the formula's live count — the one
        // dead node changes k only marginally) the formula does agree with
        // Figure 7: staying on the big cube wins.
        let c = paper_cost();
        let m_total = 320_000;
        let ours = predicted_time(
            &c,
            &CostInputs {
                n: 6,
                m: 0,
                m_total,
            },
        );
        let fallback = predicted_time(
            &c,
            &CostInputs {
                n: 5,
                m: 0,
                m_total,
            },
        );
        assert!(ours < fallback, "ours {ours} vs fallback {fallback}");
    }

    #[test]
    fn implementation_model_tracks_simulation() {
        use crate::bitonic::Protocol;
        use crate::ftsort::fault_tolerant_sort;
        use hypercube::fault::FaultSet;
        use hypercube::topology::Hypercube;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(55);
        let cost = CostModel::paper_form();
        for (n, faults) in [
            (5usize, vec![3u32, 5, 16, 24]), // m = 3
            (5, vec![9, 22]),                // m = 1
            (6, vec![17]),                   // m = 0
            (6, vec![1, 12, 33, 62]),        // m = 2 or 3
        ] {
            let fs = FaultSet::from_raw(Hypercube::new(n), &faults);
            let plan = crate::ftsort::FtPlan::new(&fs).unwrap();
            let m = plan.partition().mincut;
            for m_total in [32_000usize, 320_000] {
                let data: Vec<u32> = (0..m_total).map(|_| rng.random()).collect();
                let sim = fault_tolerant_sort(&fs, cost, data, Protocol::HalfExchange)
                    .unwrap()
                    .time_us;
                let pred = predicted_time_implementation(&cost, &CostInputs { n, m, m_total });
                // the model is deliberately a (slight) over-estimate: the
                // worst-case hop count s+1 and the full scan bound rarely
                // bind, so predictions land consistently ~1.2–1.4× above
                // the simulation across all configurations
                let ratio = pred / sim;
                assert!(
                    (1.0..1.6).contains(&ratio),
                    "n={n} m={m} M={m_total}: predicted {pred:.0} vs simulated {sim:.0} (ratio {ratio:.2})"
                );
            }
        }
    }

    #[test]
    fn dominant_term_share_grows_with_m() {
        // In the M >> N regime the k·log k heapsort term takes over; its
        // share of the total must grow monotonically with M.
        let c = paper_cost();
        let share = |m_total: usize| {
            let inputs = CostInputs {
                n: 4,
                m: 1,
                m_total,
            };
            dominant_term(&c, &inputs) / predicted_time(&c, &inputs)
        };
        let s1 = share(10_000);
        let s2 = share(1_000_000);
        let s3 = share(100_000_000);
        assert!(s1 < s2 && s2 < s3, "shares {s1} {s2} {s3}");
    }
}
