//! The single-fault subcube structure `F_n^m` (paper Definition 1) with the
//! paper's addressing: cutting `Q_n` along `D = (d₁, …, d_m)` yields `2^m`
//! subcubes addressed by `v_{m-1}…v_0 = u_{d_m}…u_{d_1}`; the remaining
//! `s = n − m` bits form each subcube's local address space `w_{s-1}…w_0`.

use hypercube::address::{complement_dims, extract_bits, scatter_bits, NodeId};
use hypercube::fault::FaultSet;
use hypercube::subcube::Subcube;
use hypercube::topology::Hypercube;

/// Why a processor is dead (holds no data) inside its subcube.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum DeadKind {
    /// An actual faulty processor.
    Faulty,
    /// A normal processor designated *dangling* to balance the workload
    /// (paper §3: one per fault-free subcube).
    Dangling,
}

/// One subcube of the structure.
#[derive(Clone, Debug)]
pub struct SubcubeInfo {
    /// The subcube address `v` (packed `u_{d_m}…u_{d_1}`).
    pub v: u32,
    /// The subcube as a region of the original cube.
    pub subcube: Subcube,
    /// Local address (`w` bits) of the dead processor, with its kind;
    /// `None` when the subcube is fault-free and no dangling processor has
    /// been designated (only possible before [`SingleFaultStructure::with_danglings`]).
    pub dead_local: Option<(u32, DeadKind)>,
}

impl SubcubeInfo {
    /// The reindex mask: XOR-ing local addresses with it moves the dead
    /// processor to local 0. Zero when no dead processor exists.
    pub fn reindex_mask(&self) -> u32 {
        self.dead_local.map(|(w, _)| w).unwrap_or(0)
    }
}

/// The partitioned hypercube `F_n^m` for a chosen cutting sequence.
#[derive(Clone, Debug)]
pub struct SingleFaultStructure {
    cube: Hypercube,
    dims: Vec<usize>,
    local_dims: Vec<usize>,
    subcubes: Vec<SubcubeInfo>,
}

impl SingleFaultStructure {
    /// Builds the structure for `faults` under the (feasible, ascending)
    /// cutting sequence `dims`. Fault-free subcubes have no dead processor
    /// yet; call [`SingleFaultStructure::with_danglings`] to designate them.
    ///
    /// # Panics
    /// If `dims` is not ascending, contains duplicates, or does not separate
    /// the faults (some subcube would get two faults).
    pub fn new(faults: &FaultSet, dims: &[usize]) -> Self {
        let cube = faults.cube();
        let n = cube.dim();
        assert!(
            dims.windows(2).all(|w| w[0] < w[1]),
            "cutting sequence must be strictly ascending"
        );
        assert!(
            dims.iter().all(|&d| d < n),
            "cutting dimension out of range"
        );
        let m = dims.len();
        let local_dims = complement_dims(n, dims);
        let fixed_mask: u32 = dims.iter().fold(0, |acc, &d| acc | (1 << d));

        let mut subcubes: Vec<SubcubeInfo> = (0..(1u32 << m))
            .map(|v| {
                let pattern = scatter_bits(v, dims);
                SubcubeInfo {
                    v,
                    subcube: Subcube::new(n, fixed_mask, pattern),
                    dead_local: None,
                }
            })
            .collect();

        for fault in faults.iter() {
            let v = extract_bits(fault.raw(), dims) as usize;
            let w = extract_bits(fault.raw(), &local_dims);
            assert!(
                subcubes[v].dead_local.is_none(),
                "cutting sequence {dims:?} does not separate the faults"
            );
            subcubes[v].dead_local = Some((w, DeadKind::Faulty));
        }

        SingleFaultStructure {
            cube,
            dims: dims.to_vec(),
            local_dims,
            subcubes,
        }
    }

    /// Designates the processor with local address `w` as dangling in every
    /// fault-free subcube (the paper balances all subcubes to the same live
    /// count; the heuristic choice of `w` lives in [`crate::select`]).
    ///
    /// # Panics
    /// If `w` is out of range. No-op on subcubes that already have a fault.
    pub fn with_danglings(mut self, w: u32) -> Self {
        assert!(
            (w as u64) < (1u64 << self.s()),
            "dangling address out of range"
        );
        for info in &mut self.subcubes {
            if info.dead_local.is_none() {
                info.dead_local = Some((w, DeadKind::Dangling));
            }
        }
        self
    }

    /// The original hypercube.
    pub fn cube(&self) -> Hypercube {
        self.cube
    }

    /// The cutting sequence `D` (ascending).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The local (non-cut) dimensions, ascending.
    pub fn local_dims(&self) -> &[usize] {
        &self.local_dims
    }

    /// `m`, the number of cutting dimensions.
    pub fn m(&self) -> usize {
        self.dims.len()
    }

    /// `s = n − m`, the dimension of each subcube.
    pub fn s(&self) -> usize {
        self.cube.dim() - self.m()
    }

    /// The subcubes, indexed by subcube address `v`.
    pub fn subcubes(&self) -> &[SubcubeInfo] {
        &self.subcubes
    }

    /// The subcube with address `v`.
    pub fn subcube(&self, v: u32) -> &SubcubeInfo {
        &self.subcubes[v as usize]
    }

    /// Number of live (data-holding) processors:
    /// `N' = 2^n − (dead per subcube)`.
    pub fn live_count(&self) -> usize {
        self.cube.len()
            - self
                .subcubes
                .iter()
                .filter(|i| i.dead_local.is_some())
                .count()
    }

    /// Number of dangling processors currently designated.
    pub fn dangling_count(&self) -> usize {
        self.subcubes
            .iter()
            .filter(|i| matches!(i.dead_local, Some((_, DeadKind::Dangling))))
            .count()
    }

    /// The physical addresses of subcube `v`'s processors indexed by
    /// **reindexed** local address: entry `w` is the processor whose
    /// reindexed address is `w` (the dead processor, if any, sits at entry
    /// 0). This is the member map handed to the distributed bitonic sort.
    pub fn members(&self, v: u32) -> Vec<NodeId> {
        let info = self.subcube(v);
        let mask = info.reindex_mask();
        (0..(1u32 << self.s()))
            .map(|w| info.subcube.global_address(w ^ mask))
            .collect()
    }

    /// Decomposes a physical address into `(v, reindexed local address)`.
    pub fn locate(&self, p: NodeId) -> (u32, u32) {
        let v = extract_bits(p.raw(), &self.dims);
        let w = extract_bits(p.raw(), &self.local_dims);
        (v, w ^ self.subcube(v).reindex_mask())
    }

    /// The physical address of the dangling/faulty (dead) processor of
    /// subcube `v`, if designated.
    pub fn dead_physical(&self, v: u32) -> Option<NodeId> {
        let info = self.subcube(v);
        info.dead_local.map(|(w, _)| info.subcube.global_address(w))
    }

    /// All live processors' physical addresses in `(v, reindexed w)` order —
    /// the gather order of the fault-tolerant sort.
    pub fn live_in_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.live_count());
        for v in 0..(1u32 << self.m()) {
            let members = self.members(v);
            let dead = self.subcube(v).dead_local.is_some();
            for (w, &p) in members.iter().enumerate() {
                if dead && w == 0 {
                    continue;
                }
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> (FaultSet, SingleFaultStructure) {
        // Example 1/2: Q5, faults 00011, 00101, 10000, 11000, D₁ = (0,1,3)
        let faults = FaultSet::from_raw(Hypercube::new(5), &[0b00011, 0b00101, 0b10000, 0b11000]);
        let st = SingleFaultStructure::new(&faults, &[0, 1, 3]);
        (faults, st)
    }

    #[test]
    fn paper_example_subcube_addresses() {
        let (_, st) = paper_example();
        assert_eq!(st.m(), 3);
        assert_eq!(st.s(), 2);
        assert_eq!(st.local_dims(), &[2, 4]);
        // FP1..FP4 land in subcubes 011, 001, 000, 100 with local addresses
        // 00, 01, 10, 10 (paper Example 2 / Fig. 5)
        let expect = [
            (0b011u32, 0b00u32),
            (0b001, 0b01),
            (0b000, 0b10),
            (0b100, 0b10),
        ];
        for (fp, (v, w)) in [0b00011u32, 0b00101, 0b10000, 0b11000].iter().zip(expect) {
            let sub = st.subcube(v);
            assert_eq!(
                sub.dead_local,
                Some((w, DeadKind::Faulty)),
                "fault {fp:#07b}"
            );
            assert!(sub.subcube.contains(NodeId::new(*fp)));
        }
    }

    #[test]
    fn paper_example_dangling_addresses() {
        // Example 2: with dangling local address w = 10, the dangling
        // processors are 18, 25, 26, 27.
        let (_, st) = paper_example();
        let st = st.with_danglings(0b10);
        assert_eq!(st.dangling_count(), 4);
        let mut dangling: Vec<u32> = (0..8u32)
            .filter_map(|v| {
                let info = st.subcube(v);
                match info.dead_local {
                    Some((w, DeadKind::Dangling)) => Some(info.subcube.global_address(w).raw()),
                    _ => None,
                }
            })
            .collect();
        dangling.sort_unstable();
        assert_eq!(dangling, vec![18, 25, 26, 27]);
    }

    #[test]
    fn live_count_matches_formula() {
        let (_, st) = paper_example();
        let st = st.with_danglings(0b10);
        // N' = 2^n − 2^m = 32 − 8 = 24
        assert_eq!(st.live_count(), 24);
        assert_eq!(st.live_in_order().len(), 24);
    }

    #[test]
    fn members_put_dead_processor_at_zero() {
        let (faults, st) = paper_example();
        let st = st.with_danglings(0b10);
        for v in 0..8u32 {
            let members = st.members(v);
            assert_eq!(members.len(), 4);
            // entry 0 is the dead processor
            let dead = st.dead_physical(v).unwrap();
            assert_eq!(members[0], dead);
            // entry 0 of a faulty subcube is the fault itself
            if matches!(st.subcube(v).dead_local, Some((_, DeadKind::Faulty))) {
                assert!(faults.is_faulty(dead));
            }
            // all members belong to the subcube and are distinct
            let mut seen = std::collections::HashSet::new();
            for &p in &members {
                assert!(st.subcube(v).subcube.contains(p));
                assert!(seen.insert(p));
            }
        }
    }

    #[test]
    fn locate_roundtrips_members() {
        let (_, st) = paper_example();
        let st = st.with_danglings(0b10);
        for v in 0..8u32 {
            for (w, &p) in st.members(v).iter().enumerate() {
                assert_eq!(st.locate(p), (v, w as u32));
            }
        }
    }

    #[test]
    fn live_in_order_excludes_dead_and_covers_everyone_else() {
        let (faults, st) = paper_example();
        let st = st.with_danglings(0b10);
        let live = st.live_in_order();
        let mut seen = std::collections::HashSet::new();
        for &p in &live {
            assert!(faults.is_normal(p));
            assert!(seen.insert(p));
        }
        assert_eq!(live.len(), 24);
    }

    #[test]
    fn empty_cut_single_fault() {
        let faults = FaultSet::from_raw(Hypercube::new(3), &[5]);
        let st = SingleFaultStructure::new(&faults, &[]);
        assert_eq!(st.m(), 0);
        assert_eq!(st.s(), 3);
        assert_eq!(st.live_count(), 7);
        let members = st.members(0);
        assert_eq!(members[0], NodeId::new(5), "fault reindexed to 0");
        assert_eq!(members[1], NodeId::new(4)); // 1 ^ 5
    }

    #[test]
    fn empty_cut_no_faults() {
        let faults = FaultSet::none(Hypercube::new(3));
        let st = SingleFaultStructure::new(&faults, &[]);
        assert_eq!(st.live_count(), 8);
        assert_eq!(st.dead_physical(0), None);
        assert_eq!(
            st.members(0),
            (0..8u32).map(NodeId::new).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "does not separate")]
    fn rejects_infeasible_sequence() {
        let faults = FaultSet::from_raw(Hypercube::new(4), &[0, 1]);
        let _ = SingleFaultStructure::new(&faults, &[1]); // 0 and 1 differ in bit 0
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_sequence() {
        let faults = FaultSet::from_raw(Hypercube::new(4), &[0, 6]);
        let _ = SingleFaultStructure::new(&faults, &[3, 1]);
    }
}
