//! The checking tree `T̃_n` (paper §2.2, Fig. 4).
//!
//! A binary tree whose root holds all faulty addresses; traversing cutting
//! dimension `d` splits every current leaf into two children by bit `d` of
//! each fault. A cutting sequence is *feasible* — it induces a single-fault
//! subcube structure — exactly when every leaf ends up with at most one
//! fault.

use hypercube::address::NodeId;
use hypercube::fault::FaultSet;
use hypercube::subcube::Subcube;

/// One node of the checking tree: a subcube and the faults it contains.
#[derive(Clone, Debug)]
pub struct CheckingNode {
    /// The subcube this node represents.
    pub subcube: Subcube,
    /// The faulty processors lying inside it.
    pub faults: Vec<NodeId>,
    /// Depth in the tree (number of cutting dimensions applied).
    pub depth: usize,
}

/// The materialized checking tree after applying a cutting sequence.
///
/// Mostly useful for inspection and the paper's worked examples; the search
/// itself uses the equivalent flat grouping test (`is_feasible`).
#[derive(Clone, Debug)]
pub struct CheckingTree {
    levels: Vec<Vec<CheckingNode>>,
}

impl CheckingTree {
    /// Builds the tree for `faults` under the cutting sequence `dims`
    /// (applied in order).
    pub fn build(faults: &FaultSet, dims: &[usize]) -> Self {
        let root = CheckingNode {
            subcube: faults.cube().as_subcube(),
            faults: faults.to_vec(),
            depth: 0,
        };
        let mut levels = vec![vec![root]];
        for (depth, &d) in dims.iter().enumerate() {
            let mut next = Vec::with_capacity(levels[depth].len() * 2);
            for node in &levels[depth] {
                let (lo, hi) = node.subcube.split(d);
                // paper's rule: bit d == 0 goes to the left child
                let (lo_faults, hi_faults): (Vec<NodeId>, Vec<NodeId>) =
                    node.faults.iter().partition(|f| f.bit(d) == 0);
                next.push(CheckingNode {
                    subcube: lo,
                    faults: lo_faults,
                    depth: depth + 1,
                });
                next.push(CheckingNode {
                    subcube: hi,
                    faults: hi_faults,
                    depth: depth + 1,
                });
            }
            levels.push(next);
        }
        CheckingTree { levels }
    }

    /// The nodes at a given depth (level 0 is the root).
    pub fn level(&self, depth: usize) -> &[CheckingNode] {
        &self.levels[depth]
    }

    /// The terminal nodes (deepest level).
    pub fn leaves(&self) -> &[CheckingNode] {
        self.levels.last().expect("tree always has a root level")
    }

    /// Tree depth = number of cutting dimensions applied.
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// Whether every terminal node has at most one fault — the paper's
    /// single-fault subcube structure test.
    pub fn is_single_fault(&self) -> bool {
        self.leaves().iter().all(|n| n.faults.len() <= 1)
    }
}

/// Flat equivalent of the checking-tree test: `dims` is feasible iff no two
/// faults agree on every bit in `dims`. `O(r²·|dims|)` with tiny constants
/// (`r ≤ n − 1 ≤ 31`).
pub fn is_feasible(fault_addrs: &[u32], dims_mask: u32) -> bool {
    for (i, &a) in fault_addrs.iter().enumerate() {
        for &b in &fault_addrs[..i] {
            if (a ^ b) & dims_mask == 0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::topology::Hypercube;

    /// The paper's Fig. 4: Q4 with faults {0, 6, 9} and D = (1, 3).
    #[test]
    fn paper_fig4_checking_tree() {
        let faults = FaultSet::from_raw(Hypercube::new(4), &[0, 6, 9]);
        let tree = CheckingTree::build(&faults, &[1, 3]);
        assert_eq!(tree.depth(), 2);
        // After dimension 1: {0, 9} | {6}
        let l1 = tree.level(1);
        assert_eq!(
            l1[0].faults,
            vec![NodeId::new(0), NodeId::new(9)],
            "left child holds bit-1 = 0 faults"
        );
        assert_eq!(l1[1].faults, vec![NodeId::new(6)]);
        // After dimension 3: {0} | {9} | {6} | {}
        let leaves = tree.leaves();
        assert_eq!(leaves.len(), 4);
        assert_eq!(leaves[0].faults, vec![NodeId::new(0)]);
        assert_eq!(leaves[1].faults, vec![NodeId::new(9)]);
        assert_eq!(leaves[2].faults, vec![NodeId::new(6)]);
        assert!(leaves[3].faults.is_empty());
        assert!(tree.is_single_fault());
    }

    #[test]
    fn infeasible_sequence_detected() {
        // faults 0 and 1 differ only in bit 0: cutting dim 1 cannot separate
        let faults = FaultSet::from_raw(Hypercube::new(3), &[0, 1]);
        let tree = CheckingTree::build(&faults, &[1]);
        assert!(!tree.is_single_fault());
        let tree = CheckingTree::build(&faults, &[0]);
        assert!(tree.is_single_fault());
    }

    #[test]
    fn empty_cut_is_feasible_iff_at_most_one_fault() {
        let one = FaultSet::from_raw(Hypercube::new(3), &[4]);
        assert!(CheckingTree::build(&one, &[]).is_single_fault());
        let two = FaultSet::from_raw(Hypercube::new(3), &[4, 5]);
        assert!(!CheckingTree::build(&two, &[]).is_single_fault());
        let zero = FaultSet::none(Hypercube::new(3));
        assert!(CheckingTree::build(&zero, &[]).is_single_fault());
    }

    #[test]
    fn flat_test_matches_tree_test() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let n = rng.random_range(2..=6usize);
            let r = rng.random_range(0..n);
            let faults = FaultSet::random(Hypercube::new(n), r, &mut rng);
            // random dim subset
            let mask: u32 = rng.random_range(0..(1u32 << n));
            let dims: Vec<usize> = (0..n).filter(|&d| mask >> d & 1 == 1).collect();
            let tree = CheckingTree::build(&faults, &dims);
            let addrs: Vec<u32> = faults.iter().map(|f| f.raw()).collect();
            assert_eq!(
                tree.is_single_fault(),
                is_feasible(&addrs, mask),
                "n={n} faults={addrs:?} dims={dims:?}"
            );
        }
    }

    #[test]
    fn leaves_partition_the_cube() {
        let faults = FaultSet::from_raw(Hypercube::new(4), &[0, 6, 9]);
        let tree = CheckingTree::build(&faults, &[1, 3]);
        let mut covered = [false; 16];
        for leaf in tree.leaves() {
            for node in leaf.subcube.nodes() {
                assert!(!covered[node.index()]);
                covered[node.index()] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }
}
