//! The partition algorithm (paper §2.2).
//!
//! Given `Q_n` with `r ≤ n − 1` faulty processors, find the *minimum* number
//! of cutting dimensions `m` (*mincut*) and the *cutting set* `Ψ` — every
//! ascending sequence of `m` dimensions `D = (d₁, …, d_m)` that partitions
//! `Q_n` into the single-fault subcube structure `F_n^m` (`2^m` subcubes,
//! each containing at most one fault).
//!
//! The search walks the *cutting dimension tree* `T_n` (whose root-to-node
//! paths are exactly the ascending dimension sequences, `Σᵢ C(n,i) = 2ⁿ − 1`
//! nodes) depth-first, pruning at the current mincut; feasibility of a
//! sequence is decided by the *checking tree* `T̃_n`, which distributes the
//! faulty addresses over the subcubes.

mod checking;
mod search;
mod structure;

pub use checking::CheckingTree;
pub use search::{partition, PartitionResult};
pub use structure::{DeadKind, SingleFaultStructure, SubcubeInfo};
