//! Depth-first search of the cutting dimension tree `T_n` (paper §2.2,
//! Fig. 2, and "The Partition Algorithm").

use super::checking::is_feasible;
use hypercube::fault::FaultSet;

/// The output of the partition algorithm: the *mincut* value `m` and the
/// cutting set `Ψ` of all minimum cutting dimension sequences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionResult {
    /// The minimum number of cutting dimensions `m`.
    pub mincut: usize,
    /// Every ascending sequence of `mincut` dimensions that partitions the
    /// cube into `F_n^m` (the paper's `Ψ = {D₁, …, D_α}`), in lexicographic
    /// order.
    pub cutting_set: Vec<Vec<usize>>,
    /// Number of cutting-dimension-tree nodes visited (diagnostics; at most
    /// `2^n − 1`).
    pub nodes_visited: usize,
}

impl PartitionResult {
    /// `α`, the number of cutting sequences found.
    pub fn alpha(&self) -> usize {
        self.cutting_set.len()
    }
}

/// Runs the partition algorithm on `faults`.
///
/// Returns `None` when *no* cutting sequence separates the faults — possible
/// only when two faulty processors share an address, which [`FaultSet`]
/// already forbids, so in practice the result is always `Some` (cutting
/// along **all** `n` dimensions puts every processor in its own subcube).
/// With `r ≤ 1` faults the mincut is 0 and `Ψ = {()}` (no cut needed).
///
/// Worst-case time is `O(r·N)` with `N = 2^n`: the tree has `2^n − 1` nodes
/// and each visit checks `r` fault addresses (the paper's bound).
///
/// # Example — the paper's Example 1
///
/// ```
/// use ftsort::partition::partition;
/// use hypercube::prelude::*;
///
/// let faults = FaultSet::from_raw(Hypercube::new(5), &[0b00011, 0b00101, 0b10000, 0b11000]);
/// let result = partition(&faults).unwrap();
/// assert_eq!(result.mincut, 3);
/// assert_eq!(result.cutting_set.len(), 5); // Ψ = {D₁ … D₅}
/// assert_eq!(result.cutting_set[0], vec![0, 1, 3]); // D₁
/// ```
pub fn partition(faults: &FaultSet) -> Option<PartitionResult> {
    let n = faults.cube().dim();
    let addrs: Vec<u32> = faults.iter().map(|f| f.raw()).collect();

    // r ≤ 1: the whole cube is already a single-fault structure.
    if addrs.len() <= 1 {
        return Some(PartitionResult {
            mincut: 0,
            cutting_set: vec![Vec::new()],
            nodes_visited: 0,
        });
    }

    let mut mincut = n + 1; // sentinel: nothing found yet
    let mut psi: Vec<Vec<usize>> = Vec::new();
    let mut visited = 0usize;
    let mut prefix: Vec<usize> = Vec::new();

    // DFS over ascending dimension sequences; children of a node labeled d
    // are the dimensions > d (Fig. 2). `mask` carries the prefix as bits.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        n: usize,
        addrs: &[u32],
        first: usize,
        mask: u32,
        prefix: &mut Vec<usize>,
        mincut: &mut usize,
        psi: &mut Vec<Vec<usize>>,
        visited: &mut usize,
    ) {
        for d in first..n {
            let depth = prefix.len() + 1;
            // cutoff: deeper than the best known mincut can never improve Ψ
            if depth > *mincut {
                return;
            }
            *visited += 1;
            prefix.push(d);
            let new_mask = mask | (1 << d);
            if is_feasible(addrs, new_mask) {
                if depth < *mincut {
                    *mincut = depth;
                    psi.clear();
                }
                psi.push(prefix.clone());
                // a feasible node's descendants are longer, never minimal
            } else {
                dfs(n, addrs, d + 1, new_mask, prefix, mincut, psi, visited);
            }
            prefix.pop();
        }
    }

    dfs(
        n,
        &addrs,
        0,
        0,
        &mut prefix,
        &mut mincut,
        &mut psi,
        &mut visited,
    );

    if psi.is_empty() {
        return None;
    }
    psi.sort();
    Some(PartitionResult {
        mincut,
        cutting_set: psi,
        nodes_visited: visited,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::topology::Hypercube;
    use rand::{rngs::StdRng, SeedableRng};

    fn q(n: usize) -> Hypercube {
        Hypercube::new(n)
    }

    /// Brute-force reference: try every dimension subset by size.
    fn reference(faults: &FaultSet) -> (usize, Vec<Vec<usize>>) {
        let n = faults.cube().dim();
        let addrs: Vec<u32> = faults.iter().map(|f| f.raw()).collect();
        for m in 0..=n {
            let mut found = Vec::new();
            for mask in 0u32..(1 << n) {
                if mask.count_ones() as usize != m {
                    continue;
                }
                if is_feasible(&addrs, mask) {
                    found.push((0..n).filter(|&d| mask >> d & 1 == 1).collect());
                }
            }
            if !found.is_empty() {
                found.sort();
                return (m, found);
            }
        }
        unreachable!("cutting all dimensions always separates distinct faults");
    }

    /// Paper Example 1: Q5 with faults 00011, 00101, 10000, 11000.
    #[test]
    fn paper_example_1() {
        let faults = FaultSet::from_raw(q(5), &[0b00011, 0b00101, 0b10000, 0b11000]);
        let result = partition(&faults).unwrap();
        assert_eq!(result.mincut, 3);
        assert_eq!(
            result.cutting_set,
            vec![
                vec![0, 1, 3],
                vec![0, 2, 3],
                vec![1, 2, 3],
                vec![1, 3, 4],
                vec![2, 3, 4],
            ],
            "Ψ must match the paper exactly"
        );
        assert_eq!(result.alpha(), 5);
    }

    /// Paper Fig. 3: Q4 with faults {0, 6, 9}; (1, 3) is a minimal cut.
    #[test]
    fn paper_fig3_q4() {
        let faults = FaultSet::from_raw(q(4), &[0, 6, 9]);
        let result = partition(&faults).unwrap();
        assert_eq!(result.mincut, 2);
        assert!(result.cutting_set.contains(&vec![1, 3]));
    }

    #[test]
    fn no_faults_and_single_fault_need_no_cut() {
        let result = partition(&FaultSet::none(q(4))).unwrap();
        assert_eq!(result.mincut, 0);
        assert_eq!(result.cutting_set, vec![Vec::<usize>::new()]);
        let result = partition(&FaultSet::from_raw(q(4), &[7])).unwrap();
        assert_eq!(result.mincut, 0);
    }

    #[test]
    fn two_faults_need_exactly_one_cut() {
        // any two distinct faults differ in ≥ 1 bit, so mincut = 1 and Ψ has
        // one sequence per differing bit
        let faults = FaultSet::from_raw(q(4), &[0b0101, 0b0110]);
        let result = partition(&faults).unwrap();
        assert_eq!(result.mincut, 1);
        assert_eq!(result.cutting_set, vec![vec![0], vec![1]]);
    }

    #[test]
    fn antipodal_faults_split_along_every_dimension() {
        let faults = FaultSet::from_raw(q(3), &[0b000, 0b111]);
        let result = partition(&faults).unwrap();
        assert_eq!(result.mincut, 1);
        assert_eq!(result.cutting_set, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn matches_brute_force_reference() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in 2..=6 {
            for r in 2..n.max(3) {
                for _ in 0..100 {
                    let faults = FaultSet::random(q(n), r.min(n), &mut rng);
                    let got = partition(&faults).unwrap();
                    let (want_m, want_psi) = reference(&faults);
                    assert_eq!(got.mincut, want_m, "n={n} faults={:?}", faults.to_vec());
                    assert_eq!(
                        got.cutting_set,
                        want_psi,
                        "n={n} faults={:?}",
                        faults.to_vec()
                    );
                }
            }
        }
    }

    #[test]
    fn mincut_at_most_n_minus_2_when_r_at_most_n_minus_1() {
        // the paper's utilization argument: with r ≤ n−1 faults, F_n^{n-2}
        // always suffices
        let mut rng = StdRng::seed_from_u64(32);
        for n in 3..=7 {
            for _ in 0..300 {
                let faults = FaultSet::random(q(n), n - 1, &mut rng);
                let result = partition(&faults).unwrap();
                assert!(
                    result.mincut <= n - 2,
                    "n={n} faults={:?} mincut={}",
                    faults.to_vec(),
                    result.mincut
                );
            }
        }
    }

    #[test]
    fn visited_nodes_bounded_by_tree_size() {
        let mut rng = StdRng::seed_from_u64(33);
        for n in 2..=7 {
            for r in 2..n {
                let faults = FaultSet::random(q(n), r, &mut rng);
                let result = partition(&faults).unwrap();
                assert!(
                    result.nodes_visited < (1 << n),
                    "n={n}: visited {} > 2^n − 1",
                    result.nodes_visited
                );
            }
        }
    }

    #[test]
    fn every_sequence_in_psi_is_feasible_and_minimal() {
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..100 {
            let faults = FaultSet::random(q(6), 5, &mut rng);
            let addrs: Vec<u32> = faults.iter().map(|f| f.raw()).collect();
            let result = partition(&faults).unwrap();
            for d in &result.cutting_set {
                assert_eq!(d.len(), result.mincut);
                assert!(d.windows(2).all(|w| w[0] < w[1]), "ascending order");
                let mask = d.iter().fold(0u32, |m, &x| m | (1 << x));
                assert!(is_feasible(&addrs, mask));
                // removing any dimension breaks feasibility (minimality)
                for &skip in d {
                    assert!(
                        !is_feasible(&addrs, mask & !(1 << skip)),
                        "sequence {d:?} is not minimal"
                    );
                }
            }
        }
    }
}
