//! Heuristic selection of the cutting sequence and dangling processors
//! (paper §3).
//!
//! Per-subcube XOR reindexing moves each dead processor to local address 0,
//! but it also *misaligns* the live processors of neighboring subcubes:
//! corresponding (same reindexed address) processors of subcubes `A`, `B`
//! sit `HD(w_A, w_B)` extra hops apart, where `w_A`, `w_B` are the local
//! addresses of the two subcubes' dead processors. The paper therefore:
//!
//! 1. picks `D_β ∈ Ψ` minimizing `Σ_{i=0}^{m-1} max(h_i)` (formula (1)),
//!    where `h_i` is the worst such Hamming distance over pairs of *faulty*
//!    subcubes adjacent along subcube-dimension `i`;
//! 2. designates as dangling, in each fault-free subcube, the local address
//!    that appears **most frequently** among the faulty processors — making
//!    most neighboring pairs perfectly aligned.

use crate::partition::SingleFaultStructure;
use hypercube::address::extract_bits;
use hypercube::fault::FaultSet;

/// The outcome of the selection heuristic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Selection {
    /// The chosen cutting sequence `D_β` (ascending).
    pub dims: Vec<usize>,
    /// Its extra-communication cost `Σᵢ max(hᵢ)`.
    pub cost: u32,
    /// The per-dimension maxima `max(h_i)`, `i = 0..m`.
    pub per_dim: Vec<u32>,
    /// The dangling local address `w*` for fault-free subcubes.
    pub dangling_local: u32,
}

/// Evaluates formula (1) for one cutting sequence: the sum over subcube
/// dimensions `i` of the worst Hamming distance between local fault
/// addresses of faulty subcubes adjacent along `i`. Returns the per-`i`
/// maxima and their sum.
pub fn extra_comm_cost(faults: &FaultSet, dims: &[usize]) -> (Vec<u32>, u32) {
    let n = faults.cube().dim();
    let m = dims.len();
    let local_dims: Vec<usize> = (0..n).filter(|d| !dims.contains(d)).collect();
    // local fault address by subcube address v (at most one per subcube)
    let mut fault_w: Vec<Option<u32>> = vec![None; 1 << m];
    for f in faults.iter() {
        let v = extract_bits(f.raw(), dims) as usize;
        let w = extract_bits(f.raw(), &local_dims);
        debug_assert!(fault_w[v].is_none(), "sequence must separate faults");
        fault_w[v] = Some(w);
    }
    let mut per_dim = Vec::with_capacity(m);
    for i in 0..m {
        let mut h_i = 0u32;
        for v in 0..(1usize << m) {
            if v & (1 << i) != 0 {
                continue; // visit each pair once, from its v_i = 0 side
            }
            let u = v | (1 << i);
            if let (Some(w_a), Some(w_b)) = (fault_w[v], fault_w[u]) {
                h_i = h_i.max((w_a ^ w_b).count_ones());
            }
        }
        per_dim.push(h_i);
    }
    let total = per_dim.iter().sum();
    (per_dim, total)
}

/// The dangling rule: the local fault address appearing most frequently
/// among the faulty subcubes (ties broken toward the smaller address).
/// With no faults the choice is arbitrary; local 0 is returned.
pub fn dangling_local_address(faults: &FaultSet, dims: &[usize]) -> u32 {
    let n = faults.cube().dim();
    let local_dims: Vec<usize> = (0..n).filter(|d| !dims.contains(d)).collect();
    let s = local_dims.len();
    let mut counts = vec![0u32; 1 << s];
    for f in faults.iter() {
        counts[extract_bits(f.raw(), &local_dims) as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(w, &c)| (c, std::cmp::Reverse(w)))
        .map(|(w, _)| w as u32)
        .unwrap_or(0)
}

/// Runs the full §3 heuristic: evaluates formula (1) on every sequence in
/// the cutting set, picks the cheapest (ties broken toward the
/// lexicographically first, matching the paper's choice of `D₁` in
/// Example 2), and determines the dangling local address.
///
/// ```
/// use ftsort::partition::partition;
/// use ftsort::select::select_cutting_sequence;
/// use hypercube::prelude::*;
///
/// // Example 2: D₁ = (0,1,3) wins with cost 3; dangling local address 10.
/// let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
/// let psi = partition(&faults).unwrap().cutting_set;
/// let sel = select_cutting_sequence(&faults, &psi);
/// assert_eq!(sel.dims, vec![0, 1, 3]);
/// assert_eq!(sel.cost, 3);
/// assert_eq!(sel.dangling_local, 0b10);
/// ```
///
/// # Panics
/// If `cutting_set` is empty.
pub fn select_cutting_sequence(faults: &FaultSet, cutting_set: &[Vec<usize>]) -> Selection {
    assert!(!cutting_set.is_empty(), "empty cutting set");
    let mut best: Option<Selection> = None;
    for dims in cutting_set {
        let (per_dim, cost) = extra_comm_cost(faults, dims);
        let candidate = Selection {
            dims: dims.clone(),
            cost,
            per_dim,
            dangling_local: 0,
        };
        let better = match &best {
            None => true,
            Some(b) => cost < b.cost,
        };
        if better {
            best = Some(candidate);
        }
    }
    let mut sel = best.expect("non-empty cutting set");
    sel.dangling_local = dangling_local_address(faults, &sel.dims);
    sel
}

/// Convenience: build the fully-designated structure for a selection.
pub fn build_structure(faults: &FaultSet, sel: &Selection) -> SingleFaultStructure {
    SingleFaultStructure::new(faults, &sel.dims).with_danglings(sel.dangling_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use hypercube::topology::Hypercube;

    fn paper_faults() -> FaultSet {
        FaultSet::from_raw(Hypercube::new(5), &[0b00011, 0b00101, 0b10000, 0b11000])
    }

    /// Example 2 pins the costs of all five sequences: 3, 3, 4, 3, 3.
    #[test]
    fn paper_example_2_costs() {
        let faults = paper_faults();
        let psi = partition(&faults).unwrap().cutting_set;
        let costs: Vec<u32> = psi.iter().map(|d| extra_comm_cost(&faults, d).1).collect();
        assert_eq!(psi[0], vec![0, 1, 3]);
        assert_eq!(costs, vec![3, 3, 4, 3, 3]);
    }

    /// Example 2's per-dimension breakdown for D₁ = (0,1,3):
    /// HD(01,10) + HD(00,01) + HD(10,10) = 2 + 1 + 0.
    #[test]
    fn paper_example_2_per_dimension() {
        let faults = paper_faults();
        let (per_dim, total) = extra_comm_cost(&faults, &[0, 1, 3]);
        assert_eq!(per_dim, vec![2, 1, 0]);
        assert_eq!(total, 3);
    }

    #[test]
    fn paper_example_2_selection() {
        let faults = paper_faults();
        let psi = partition(&faults).unwrap().cutting_set;
        let sel = select_cutting_sequence(&faults, &psi);
        assert_eq!(sel.dims, vec![0, 1, 3], "paper selects D₁");
        assert_eq!(sel.cost, 3);
        assert_eq!(sel.dangling_local, 0b10, "w = 10 appears most often");
    }

    #[test]
    fn dangling_rule_ties_break_low() {
        // two faults with distinct local addresses: counts tie at 1 each
        let faults = FaultSet::from_raw(Hypercube::new(3), &[0b000, 0b011]);
        // cut along dim 0: local dims {1,2}; fault locals: 00 and 01
        assert_eq!(dangling_local_address(&faults, &[0]), 0b00);
    }

    #[test]
    fn dangling_rule_no_faults() {
        let faults = FaultSet::none(Hypercube::new(4));
        assert_eq!(dangling_local_address(&faults, &[]), 0);
    }

    #[test]
    fn cost_zero_when_all_faults_share_local_address() {
        // faults 000100 and 001100 differ only in bit 3; cut along dim 3:
        // both land at the same local address → perfectly aligned
        let faults = FaultSet::from_raw(Hypercube::new(6), &[0b000100, 0b001100]);
        let (per_dim, total) = extra_comm_cost(&faults, &[3]);
        assert_eq!(per_dim, vec![0]);
        assert_eq!(total, 0);
    }

    #[test]
    fn selection_picks_minimum_over_psi() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let faults = FaultSet::random(Hypercube::new(6), 5, &mut rng);
            let psi = partition(&faults).unwrap().cutting_set;
            let sel = select_cutting_sequence(&faults, &psi);
            let min = psi
                .iter()
                .map(|d| extra_comm_cost(&faults, d).1)
                .min()
                .unwrap();
            assert_eq!(sel.cost, min);
            assert!(psi.contains(&sel.dims));
        }
    }

    #[test]
    fn build_structure_is_fully_designated() {
        let faults = paper_faults();
        let psi = partition(&faults).unwrap().cutting_set;
        let sel = select_cutting_sequence(&faults, &psi);
        let st = build_structure(&faults, &sel);
        assert!(st.subcubes().iter().all(|i| i.dead_local.is_some()));
        assert_eq!(st.live_count(), 24);
    }
}
