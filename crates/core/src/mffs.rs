//! The *maximum dimensional fault-free subcube* baseline
//! (Özgüner & Aykanat, the method the paper compares against).
//!
//! Once faults are known, find the largest subcube containing none of them
//! and run the ordinary bitonic sort there, leaving every processor outside
//! it idle ("dangling"). With one fault in `Q_6` this wastes almost half the
//! machine — the underutilization the paper's partition scheme removes.

use crate::bitonic::sort::SortOutcome;
use crate::bitonic::{distributed_bitonic_sort, Protocol};
use crate::distribute::{gather, scatter, Padded};
use crate::seq::{heapsort, Direction, Key, Scratch};
use hypercube::address::NodeId;
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::sim::{Comm, Engine, EngineKind};
use hypercube::subcube::Subcube;

/// Finds a maximum-dimension fault-free subcube, scanning dimensions from
/// `n` downward; among equals the one with the smallest `(mask, pattern)` is
/// returned (deterministic tie-break).
///
/// Returns `None` only if every processor is faulty (then even `Q_0`
/// subcubes all contain a fault).
pub fn max_fault_free_subcube(faults: &FaultSet) -> Option<Subcube> {
    let n = faults.cube().dim();
    for k in (0..=n).rev() {
        for sc in Subcube::enumerate(n, k) {
            if faults.count_in(&sc) == 0 {
                return Some(sc);
            }
        }
    }
    None
}

/// The number of *dangling* (normal but idle) processors the baseline
/// leaves: `N − r − 2^dim(subcube)`.
pub fn mffs_dangling_count(faults: &FaultSet) -> usize {
    let sc = max_fault_free_subcube(faults).expect("at least one normal node");
    faults.normal_count() - sc.len()
}

/// Sorts `data` with the baseline: plain bitonic sort confined to the
/// maximum fault-free subcube.
///
/// # Panics
/// If every processor is faulty.
pub fn mffs_sort<K>(
    faults: &FaultSet,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
) -> SortOutcome<K>
where
    K: Key,
{
    mffs_sort_with_engine(faults, cost, data, protocol, EngineKind::default())
}

/// [`mffs_sort`] with an explicit execution engine. Both engines return
/// identical outcomes; the choice only affects wall-clock speed.
pub fn mffs_sort_with_engine<K>(
    faults: &FaultSet,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
    kind: EngineKind,
) -> SortOutcome<K>
where
    K: Key,
{
    let sc = max_fault_free_subcube(faults).expect("no fault-free processor left");
    let cube = faults.cube();
    let members: Vec<NodeId> = sc.nodes().collect();
    let m_total = data.len();
    let chunks = scatter(data, members.len());

    let mut inputs: Vec<Option<Vec<Padded<K>>>> = (0..cube.len()).map(|_| None).collect();
    for (&p, chunk) in members.iter().zip(chunks) {
        inputs[p.index()] = Some(chunk);
    }

    let engine = Engine::new(faults.clone(), cost).with_engine(kind);
    let members_ref = &members;
    let out = engine.run(inputs, async move |ctx, mut chunk| {
        let my_logical = members_ref
            .iter()
            .position(|&p| p == ctx.me())
            .expect("node in subcube");
        let mut scratch = Scratch::new();
        let comparisons = heapsort(&mut chunk, Direction::Ascending);
        ctx.charge_comparisons(comparisons as usize);
        distributed_bitonic_sort(
            ctx,
            members_ref,
            my_logical,
            None,
            Direction::Ascending,
            chunk,
            1,
            protocol,
            &mut scratch,
        )
        .await
    });

    let time_us = out.turnaround();
    let stats = out.total_stats();
    let mut by_logical: Vec<Vec<Padded<K>>> = vec![Vec::new(); members.len()];
    for (node, run) in out.into_results() {
        let logical = members.iter().position(|&p| p == node).expect("member");
        by_logical[logical] = run;
    }
    let sorted = gather(by_logical);
    assert_eq!(sorted.len(), m_total);
    SortOutcome {
        sorted,
        time_us,
        stats,
        processors_used: members.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::topology::Hypercube;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn fault_free_cube_returns_whole_cube() {
        let faults = FaultSet::none(Hypercube::new(4));
        let sc = max_fault_free_subcube(&faults).unwrap();
        assert_eq!(sc.dim(), 4);
        assert_eq!(mffs_dangling_count(&faults), 0);
    }

    #[test]
    fn one_fault_halves_the_machine() {
        // The paper's motivating example: one fault in Q6 leaves a Q5 —
        // "reduce the performance almost 50% even though less than 2% of the
        // system is faulty".
        let faults = FaultSet::from_raw(Hypercube::new(6), &[17]);
        let sc = max_fault_free_subcube(&faults).unwrap();
        assert_eq!(sc.dim(), 5);
        assert!(!sc.contains(hypercube::address::NodeId::new(17)));
        assert_eq!(mffs_dangling_count(&faults), 63 - 32);
    }

    #[test]
    fn paper_example_1_leaves_only_q3() {
        // "In Example 1, there are 4 faulty processors with addresses 3, 5,
        // 16, and 24 in Q5. The maximum fault-free subcube able to be
        // utilized is Q3."
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let sc = max_fault_free_subcube(&faults).unwrap();
        assert_eq!(sc.dim(), 3);
    }

    #[test]
    fn found_subcube_is_maximal() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in 2..=6 {
            for r in 0..n {
                let faults = FaultSet::random(Hypercube::new(n), r, &mut rng);
                let sc = max_fault_free_subcube(&faults).unwrap();
                assert_eq!(faults.count_in(&sc), 0);
                // nothing of higher dimension is fault-free
                if sc.dim() == n {
                    continue;
                }
                for bigger in Subcube::enumerate(n, sc.dim() + 1) {
                    assert!(
                        faults.count_in(&bigger) > 0,
                        "n={n} r={r}: {bigger:?} also fault-free"
                    );
                }
            }
        }
    }

    #[test]
    fn all_faulty_returns_none() {
        let faults = FaultSet::from_raw(Hypercube::new(1), &[0, 1]);
        assert!(max_fault_free_subcube(&faults).is_none());
    }

    #[test]
    fn mffs_sort_sorts_correctly() {
        let mut rng = StdRng::seed_from_u64(42);
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let data: Vec<u32> = (0..200).map(|_| rng.random_range(0..10_000)).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let out = mffs_sort(
            &faults,
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        );
        assert_eq!(out.sorted, expect);
        assert_eq!(out.processors_used, 8, "only the Q3 works");
    }

    #[test]
    fn ft_sort_beats_mffs_on_time() {
        // The paper's bottom line (Figure 7): with enough data the proposed
        // algorithm on the faulty cube beats bitonic sort on the maximum
        // fault-free subcube.
        let mut rng = StdRng::seed_from_u64(43);
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let data: Vec<u32> = (0..8000).map(|_| rng.random()).collect();
        let ours = crate::ftsort::fault_tolerant_sort(
            &faults,
            CostModel::paper_form(),
            data.clone(),
            Protocol::HalfExchange,
        )
        .unwrap();
        let baseline = mffs_sort(
            &faults,
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        );
        assert_eq!(ours.sorted, baseline.sorted);
        assert!(
            ours.time_us < baseline.time_us,
            "ours {} vs MFFS {}",
            ours.time_us,
            baseline.time_us
        );
    }
}
