//! Fault-tolerant selection of the `k` largest keys.
//!
//! The paper's group previously studied "Selection of the First k Largest
//! Processes in Hypercubes" (their reference \[17\]); this module provides the
//! natural companion operation on the *faulty* machine: every live processor
//! contributes its local top-`k`, and a binomial combining tree (over the
//! same live set the fault-tolerant sort uses) merges and truncates on the
//! way up — `O(k log N')` work and traffic instead of a full sort.

use crate::bitonic::sort::SortOutcome;
use crate::distribute::{gather as degather, scatter, Padded};
use crate::ftsort::{FtError, FtPlan};
use crate::seq::{heapsort, merge_runs, Direction, Key};
use hypercube::collectives::{combine, Participants};
use hypercube::cost::CostModel;
use hypercube::sim::{Comm, Engine, Tag};

/// Returns the `k` largest keys of `data` (descending), computed on the
/// faulty hypercube: local sort + tree combine over the live processors.
///
/// # Errors
/// [`FtError`] when the fault set cannot be tolerated.
pub fn fault_tolerant_top_k<K>(
    plan: &FtPlan,
    cost: CostModel,
    data: Vec<K>,
    k: usize,
) -> SortOutcome<K>
where
    K: Key,
{
    let st = plan.structure();
    let cube = st.cube();
    let live = st.live_in_order();
    let m_total = data.len();
    let chunks = scatter(data, live.len());

    let mut inputs: Vec<Option<Vec<Padded<K>>>> = (0..cube.len()).map(|_| None).collect();
    for (&p, chunk) in live.iter().zip(chunks) {
        inputs[p.index()] = Some(chunk);
    }
    let root = *live.iter().min().expect("live processor exists");
    let parts = Participants::new(cube.len(), root, &live);
    let parts_ref = &parts;

    let engine = Engine::new(plan.faults().clone(), cost);
    let out = engine.run(inputs, async move |ctx, mut chunk| {
        // local: drop the ∞ padding (it would outrank every real key!),
        // sort ascending, keep my top k (as an ascending run)
        chunk.retain(|p| p.is_real());
        let comparisons = heapsort(&mut chunk, Direction::Ascending);
        ctx.charge_comparisons(comparisons as usize);
        let start = chunk.len().saturating_sub(k);
        let mine = chunk.split_off(start);
        // tree combine: merge two ascending runs, keep the top k
        combine(ctx, parts_ref, Tag::phase(20, 0, 0), mine, |a, b| {
            let total = a.len() + b.len();
            let (mut merged, _) = merge_runs(a, b);
            let start = total.saturating_sub(k);
            merged.split_off(start.min(merged.len()))
        })
        .await
    });

    let time_us = out.turnaround();
    let stats = out.total_stats();
    let top = out
        .node(root)
        .and_then(|o| o.result.clone())
        .expect("root holds the combined top-k");
    // descending order, dummies stripped (dummies are +∞ and must never
    // appear: they only exist when k exceeds the real keys on some node)
    let mut top: Vec<K> = degather([top]);
    top.reverse();
    top.truncate(k.min(m_total));
    SortOutcome {
        sorted: top,
        time_us,
        stats,
        processors_used: live.len(),
    }
}

/// Plan-and-run convenience.
///
/// ```
/// use ftsort::prelude::*;
///
/// let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 9]);
/// let out = top_k_on_faulty_cube(
///     &faults,
///     CostModel::default(),
///     (0..1000u32).collect(),
///     3,
/// ).unwrap();
/// assert_eq!(out.sorted, vec![999, 998, 997]); // descending
/// ```
///
/// # Errors
/// [`FtError`] when the fault set cannot be tolerated.
pub fn top_k_on_faulty_cube<K>(
    faults: &hypercube::fault::FaultSet,
    cost: CostModel,
    data: Vec<K>,
    k: usize,
) -> Result<SortOutcome<K>, FtError>
where
    K: Key,
{
    let plan = FtPlan::new(faults)?;
    Ok(fault_tolerant_top_k(&plan, cost, data, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::fault::FaultSet;
    use hypercube::topology::Hypercube;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check(faults: &FaultSet, data: Vec<u32>, k: usize) {
        let mut expect = data.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(k);
        let out =
            top_k_on_faulty_cube(faults, CostModel::paper_form(), data, k).expect("tolerable");
        assert_eq!(out.sorted, expect, "k={k} faults={:?}", faults.to_vec());
    }

    #[test]
    fn selects_top_k_on_the_paper_machine() {
        let mut rng = StdRng::seed_from_u64(1);
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        for k in [1usize, 5, 10, 47] {
            let data: Vec<u32> = (0..500).map(|_| rng.random_range(0..10_000)).collect();
            check(&faults, data, k);
        }
    }

    #[test]
    fn k_larger_than_data() {
        let faults = FaultSet::from_raw(Hypercube::new(4), &[6]);
        check(&faults, vec![3, 1, 2], 10);
        check(&faults, vec![], 4);
    }

    #[test]
    fn handles_duplicates() {
        let faults = FaultSet::from_raw(Hypercube::new(3), &[2, 5]);
        check(&faults, vec![7; 50], 5);
        check(&faults, (0..60).map(|i| i % 3).collect(), 7);
    }

    #[test]
    fn cheaper_than_a_full_sort_for_small_k() {
        let mut rng = StdRng::seed_from_u64(2);
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let plan = FtPlan::new(&faults).unwrap();
        let data: Vec<u32> = (0..24_000).map(|_| rng.random()).collect();
        let topk = fault_tolerant_top_k(&plan, CostModel::paper_form(), data.clone(), 10);
        let sort = crate::ftsort::fault_tolerant_sort_with_plan(
            &plan,
            CostModel::paper_form(),
            data,
            crate::bitonic::Protocol::HalfExchange,
        );
        assert!(
            topk.time_us < sort.time_us / 2.0,
            "top-k {} vs full sort {}",
            topk.time_us,
            sort.time_us
        );
        assert!(topk.stats.elements_sent < sort.stats.elements_sent / 10);
    }

    #[test]
    fn random_sweep() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in 3..=5 {
            for r in 0..n {
                let faults = FaultSet::random(Hypercube::new(n), r, &mut rng);
                let m = rng.random_range(0..300);
                let k = rng.random_range(1..40);
                let data: Vec<u32> = (0..m).map(|_| rng.random_range(0..1000)).collect();
                check(&faults, data, k);
            }
        }
    }
}
