//! Bitonic sorting on hypercubes.
//!
//! * [`protocol`] — the pairwise *compare-split* kernels: given two sorted
//!   runs on two processors, leave the `k` smallest on one and the `k`
//!   largest on the other. Two wire protocols are provided: a provably
//!   simple full exchange, and the paper's traffic-splitting half exchange.
//! * [`distributed`] — the block bitonic sort across `2^s` processors with
//!   an optional dead processor at (reindexed) address 0 — the paper's §2.1
//!   observation that bitonic sort tolerates one fault.
//! * [`sort`] — end-to-end entry points on a simulated machine: distribute,
//!   sort, gather.

pub mod distributed;
pub mod protocol;
pub mod sort;

pub use distributed::{distributed_bitonic_merge, distributed_bitonic_sort, reverse_windows};
pub use protocol::{compare_split_local, compare_split_remote, KeepHalf, Protocol};
pub use sort::{
    bitonic_sort, bitonic_sort_threaded, bitonic_sort_with_engine, single_fault_bitonic_sort,
    SortOutcome,
};
