//! The distributed (block) bitonic sort across `2^s` processors, tolerating
//! one dead processor at reindexed address 0.
//!
//! Each of the `2^s` logical processors holds a sorted ascending run of `k`
//! keys. The classic double loop runs compare-splits between partners
//! differing in bit `j`, keeping the low half iff bit `i+1` equals bit `j`
//! of the local address; after `s(s+1)/2` substages the runs are globally
//! ordered by local address.
//!
//! **One dead processor** (paper §2.1): if the processor at *logical address
//! 0* holds no data and every compare-split involving it is skipped, the
//! remaining processors still end up globally sorted. Address 0 has all bits
//! zero, so in every substage it would keep the *low* half — behaving exactly
//! as if it held `k` copies of `−∞` (for a descending sort, `+∞`): its
//! partner keeps its own run untouched either way. The XOR *reindex*
//! operation moves an arbitrary faulty processor to logical 0, which is why
//! this works for any fault location.

use super::protocol::{compare_split_remote, KeepHalf, Protocol};
use crate::seq::{Direction, Key, Scratch};
use hypercube::address::NodeId;
use hypercube::sim::{Comm, Tag};

/// Runs the distributed bitonic sort among the processors listed in
/// `members` (physical addresses indexed by *logical* address).
///
/// * `my_logical` — this node's logical address (its index in `members`).
/// * `dead_logical` — the logical address of the dead (faulty or dangling)
///   processor, if any; **must be 0** per the reindex invariant.
/// * `dir` — requested global order across logical addresses. The returned
///   run is always stored ascending locally; `Descending` means logical
///   address order enumerates the *largest* keys first (each processor's
///   window is reversed at run granularity, not within the run).
/// * `phase` — tag namespace; distinct concurrent calls (e.g. the subcube
///   sorts inside different steps of the fault-tolerant algorithm) must use
///   distinct phases.
///
/// Every participating live processor must call this with identical
/// `members`, `dead_logical`, `dir`, `phase`, `protocol`, and equal-length
/// sorted-ascending runs. `scratch` is the node's reusable buffer pool;
/// after it warms up the compare-split substages stop allocating.
///
/// Returns this processor's final run (sorted ascending, same length).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub async fn distributed_bitonic_sort<K, C>(
    ctx: &mut C,
    members: &[NodeId],
    my_logical: usize,
    dead_logical: Option<usize>,
    dir: Direction,
    run: Vec<K>,
    phase: u16,
    protocol: Protocol,
    scratch: &mut Scratch<K>,
) -> Vec<K>
where
    K: Key,
    C: Comm<K>,
{
    let p = members.len();
    assert!(p.is_power_of_two(), "member count must be a power of two");
    let s = p.trailing_zeros() as usize;
    assert!(my_logical < p, "logical address out of range");
    if let Some(dead) = dead_logical {
        assert_eq!(dead, 0, "dead processor must be reindexed to logical 0");
        assert_ne!(my_logical, 0, "the dead processor does not participate");
    }
    debug_assert!(crate::seq::is_sorted(&run), "local run must be sorted");

    ctx.span_enter(phase);
    let mut run = run;
    for i in 0..s {
        for j in (0..=i).rev() {
            let partner_logical = my_logical ^ (1 << j);
            if dead_logical == Some(partner_logical) {
                continue; // paper §2.1: the fault's partner keeps its run
            }
            let keep_low_asc = (my_logical >> (i + 1)) & 1 == (my_logical >> j) & 1;
            let keep_low = match dir {
                Direction::Ascending => keep_low_asc,
                Direction::Descending => !keep_low_asc,
            };
            let keep = if keep_low {
                KeepHalf::Low
            } else {
                KeepHalf::High
            };
            run = compare_split_remote(
                ctx,
                members[partner_logical],
                Tag::phase(phase, i as u16, j as u16),
                run,
                keep,
                protocol,
                scratch,
            )
            .await;
        }
    }
    ctx.span_exit();
    run
}

/// The number of compare-split substages the sort performs: `s(s+1)/2`.
pub fn substage_count(s: usize) -> usize {
    s * (s + 1) / 2
}

/// The distributed bitonic **merge**: sorts a distributed sequence that is
/// already *bitonic at window granularity* in `s` substages instead of the
/// full sort's `s(s+1)/2`.
///
/// Requirements (beyond [`distributed_bitonic_sort`]'s):
/// * every local run sorted ascending, all runs equal length;
/// * the window sequence (in logical-address order, skipping the dead
///   processor) is bitonic — for [`Direction::Ascending`] in the
///   ascending-then-descending form (so that a conceptual `−∞` block at the
///   dead logical address 0 keeps it bitonic), for
///   [`Direction::Descending`] in the descending-then-ascending (cyclically
///   bitonic) form (`+∞` block at address 0 keeps it cyclically bitonic).
///
/// These are exactly the forms a compare-split leaves on the Low-keeping
/// side (ascending) and the High-keeping side (descending), which is how
/// the fault-tolerant sort's step 8 uses this merge.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub async fn distributed_bitonic_merge<K, C>(
    ctx: &mut C,
    members: &[NodeId],
    my_logical: usize,
    dead_logical: Option<usize>,
    dir: Direction,
    run: Vec<K>,
    phase: u16,
    protocol: Protocol,
    scratch: &mut Scratch<K>,
) -> Vec<K>
where
    K: Key,
    C: Comm<K>,
{
    let p = members.len();
    assert!(p.is_power_of_two(), "member count must be a power of two");
    let s = p.trailing_zeros() as usize;
    assert!(my_logical < p, "logical address out of range");
    if let Some(dead) = dead_logical {
        assert_eq!(dead, 0, "dead processor must be reindexed to logical 0");
        assert_ne!(my_logical, 0, "the dead processor does not participate");
    }
    debug_assert!(crate::seq::is_sorted(&run), "local run must be sorted");

    ctx.span_enter(phase);
    let mut run = run;
    for j in (0..s).rev() {
        let partner_logical = my_logical ^ (1 << j);
        if dead_logical == Some(partner_logical) {
            continue;
        }
        let keep_low_asc = (my_logical >> j) & 1 == 0;
        let keep_low = match dir {
            Direction::Ascending => keep_low_asc,
            Direction::Descending => !keep_low_asc,
        };
        let keep = if keep_low {
            KeepHalf::Low
        } else {
            KeepHalf::High
        };
        run = compare_split_remote(
            ctx,
            members[partner_logical],
            Tag::phase(phase, s as u16, j as u16),
            run,
            keep,
            protocol,
            scratch,
        )
        .await;
    }
    ctx.span_exit();
    run
}

/// Reverses the distributed window order in one exchange substage: after a
/// globally *ascending* sequence passes through this, it is globally
/// *descending* (and vice versa), with every local run still stored
/// ascending. Used by the fault-tolerant sort to flip a subcube's order
/// when the schedule demands the direction its merge could not produce.
pub async fn reverse_windows<K, C>(
    ctx: &mut C,
    members: &[NodeId],
    my_logical: usize,
    dead_logical: Option<usize>,
    run: Vec<K>,
    phase: u16,
) -> Vec<K>
where
    K: Key,
    C: Comm<K>,
{
    let p = members.len();
    let partner_logical = match dead_logical {
        // live windows are (w − 1) for w = 1..p-1; reversal pairs w ↔ p − w
        Some(0) => p - my_logical,
        None => p - 1 - my_logical,
        Some(_) => unreachable!("dead processor must be logical 0"),
    };
    if partner_logical == my_logical {
        return run; // middle window stays put
    }
    ctx.span_enter(phase);
    let swapped = ctx
        .exchange(
            members[partner_logical],
            Tag::phase(phase, u16::MAX, 0),
            run,
        )
        .await;
    ctx.span_exit();
    swapped
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::cost::CostModel;
    use hypercube::fault::FaultSet;
    use hypercube::sim::Engine;
    use hypercube::topology::Hypercube;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Runs the distributed sort on a fault-free `Q_s` with identity mapping
    /// and returns the concatenated result in logical order.
    fn run_sort(
        s: usize,
        chunks: Vec<Vec<u32>>,
        dead: Option<usize>,
        dir: Direction,
        protocol: Protocol,
    ) -> Vec<Vec<u32>> {
        let p = 1usize << s;
        assert_eq!(chunks.len(), p);
        let members: Vec<NodeId> = (0..p).map(NodeId::from).collect();
        let engine = Engine::new(FaultSet::none(Hypercube::new(s)), CostModel::paper_form());
        let inputs: Vec<Option<Vec<u32>>> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| if dead == Some(i) { None } else { Some(c) })
            .collect();
        let members_ref = &members;
        let out = engine.run(inputs, async move |ctx, mut data| {
            data.sort_unstable();
            let mut scratch = Scratch::new();
            distributed_bitonic_sort(
                ctx,
                members_ref,
                ctx.me().index(),
                dead,
                dir,
                data,
                1,
                protocol,
                &mut scratch,
            )
            .await
        });
        let mut result: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (node, run) in out.into_results() {
            result[node.index()] = run;
        }
        result
    }

    fn flatten(chunks: &[Vec<u32>]) -> Vec<u32> {
        chunks.iter().flatten().copied().collect()
    }

    #[test]
    fn sorts_ascending_across_processors() {
        for protocol in [Protocol::FullExchange, Protocol::HalfExchange] {
            let chunks = vec![vec![9, 3, 7], vec![1, 8, 2], vec![6, 6, 0], vec![5, 4, 10]];
            let sorted = run_sort(2, chunks, None, Direction::Ascending, protocol);
            assert_eq!(
                flatten(&sorted),
                vec![0, 1, 2, 3, 4, 5, 6, 6, 7, 8, 9, 10],
                "{protocol:?}"
            );
        }
    }

    #[test]
    fn sorts_descending_across_processors() {
        let chunks = vec![vec![9, 3], vec![1, 8], vec![6, 0], vec![5, 4]];
        let sorted = run_sort(
            2,
            chunks,
            None,
            Direction::Descending,
            Protocol::HalfExchange,
        );
        // windows descend across processors; runs stay ascending locally
        assert_eq!(flatten(&sorted), vec![8, 9, 5, 6, 3, 4, 0, 1]);
        for run in &sorted {
            assert!(crate::seq::is_sorted(run));
        }
    }

    #[test]
    fn single_dead_processor_at_zero_ascending() {
        for protocol in [Protocol::FullExchange, Protocol::HalfExchange] {
            let chunks = vec![
                vec![], // dead
                vec![9, 3, 7],
                vec![1, 8, 2],
                vec![6, 0, 5],
            ];
            let sorted = run_sort(2, chunks, Some(0), Direction::Ascending, protocol);
            assert!(sorted[0].is_empty());
            assert_eq!(
                flatten(&sorted),
                vec![0, 1, 2, 3, 5, 6, 7, 8, 9],
                "{protocol:?}"
            );
        }
    }

    #[test]
    fn single_dead_processor_at_zero_descending() {
        let chunks = vec![vec![], vec![9, 3], vec![1, 8], vec![6, 0]];
        let sorted = run_sort(
            2,
            chunks,
            Some(0),
            Direction::Descending,
            Protocol::HalfExchange,
        );
        assert_eq!(flatten(&sorted), vec![8, 9, 3, 6, 0, 1]);
    }

    #[test]
    fn random_inputs_all_cube_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        for s in 1..=4 {
            for protocol in [Protocol::FullExchange, Protocol::HalfExchange] {
                for dead in [None, Some(0)] {
                    let p = 1usize << s;
                    let k = rng.random_range(1..8);
                    let chunks: Vec<Vec<u32>> = (0..p)
                        .map(|i| {
                            if dead == Some(i) {
                                Vec::new()
                            } else {
                                (0..k).map(|_| rng.random_range(0..1000)).collect()
                            }
                        })
                        .collect();
                    let mut expect = flatten(&chunks);
                    expect.sort_unstable();
                    let sorted = run_sort(s, chunks, dead, Direction::Ascending, protocol);
                    assert_eq!(flatten(&sorted), expect, "s={s} dead={dead:?} {protocol:?}");
                    for (i, run) in sorted.iter().enumerate() {
                        if dead != Some(i) {
                            assert_eq!(run.len(), k as usize, "run length preserved");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_one_principle_spot_check() {
        // exhaustive 0/1 inputs on Q2 with k=1: 4 positions, all 16 patterns
        for pattern in 0..16u32 {
            let chunks: Vec<Vec<u32>> = (0..4).map(|i| vec![(pattern >> i) & 1]).collect();
            let mut expect = flatten(&chunks);
            expect.sort_unstable();
            let sorted = run_sort(
                2,
                chunks,
                None,
                Direction::Ascending,
                Protocol::HalfExchange,
            );
            assert_eq!(flatten(&sorted), expect, "pattern {pattern:04b}");
        }
    }

    /// Runs the distributed merge with the given window chunks.
    fn run_merge(
        s: usize,
        chunks: Vec<Vec<u32>>,
        dead: Option<usize>,
        dir: Direction,
    ) -> Vec<Vec<u32>> {
        let p = 1usize << s;
        let members: Vec<NodeId> = (0..p).map(NodeId::from).collect();
        let engine = Engine::new(FaultSet::none(Hypercube::new(s)), CostModel::paper_form());
        let inputs: Vec<Option<Vec<u32>>> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| if dead == Some(i) { None } else { Some(c) })
            .collect();
        let members_ref = &members;
        let out = engine.run(inputs, async move |ctx, data| {
            let mut scratch = Scratch::new();
            distributed_bitonic_merge(
                ctx,
                members_ref,
                ctx.me().index(),
                dead,
                dir,
                data,
                1,
                Protocol::HalfExchange,
                &mut scratch,
            )
            .await
        });
        let mut result: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (node, run) in out.into_results() {
            result[node.index()] = run;
        }
        result
    }

    /// Builds window chunks whose concatenation is an
    /// ascending-then-descending (form A) or descending-then-ascending
    /// (form B) sequence, each window internally ascending.
    fn bitonic_windows(rng: &mut StdRng, windows: usize, k: usize, cyclic: bool) -> Vec<Vec<u32>> {
        let total = windows * k;
        let mut vals: Vec<u32> = (0..total).map(|_| rng.random_range(0..1000)).collect();
        vals.sort_unstable();
        let peak = rng.random_range(0..=total);
        let seq: Vec<u32> = if cyclic {
            // descending prefix then ascending suffix: take the largest
            // `peak` values descending, then the rest ascending
            let split = total - peak;
            let (low, high) = vals.split_at(split);
            high.iter().rev().chain(low.iter()).copied().collect()
        } else {
            // ascending prefix then descending suffix
            let (low, high) = vals.split_at(peak);
            low.iter().chain(high.iter().rev()).copied().collect()
        };
        seq.chunks(k)
            .map(|c| {
                let mut w = c.to_vec();
                w.sort_unstable();
                w
            })
            .collect()
    }

    #[test]
    fn merge_sorts_form_a_ascending() {
        let mut rng = StdRng::seed_from_u64(8);
        for s in 1..=4 {
            for _ in 0..20 {
                let p = 1usize << s;
                let k = rng.random_range(1..6);
                let wins = bitonic_windows(&mut rng, p, k, false);
                let mut expect = flatten(&wins);
                expect.sort_unstable();
                let out = run_merge(s, wins, None, Direction::Ascending);
                assert_eq!(flatten(&out), expect, "s={s}");
            }
        }
    }

    #[test]
    fn merge_sorts_form_b_descending() {
        let mut rng = StdRng::seed_from_u64(9);
        for s in 1..=4 {
            for _ in 0..20 {
                let p = 1usize << s;
                let k = rng.random_range(1..6);
                let wins = bitonic_windows(&mut rng, p, k, true);
                let mut expect = flatten(&wins);
                expect.sort_unstable();
                expect.reverse();
                // descending global order with ascending local runs: reverse
                // window-by-window
                let expect: Vec<u32> = expect
                    .chunks(k)
                    .flat_map(|c| c.iter().rev().copied())
                    .collect();
                let out = run_merge(s, wins, None, Direction::Descending);
                assert_eq!(flatten(&out), expect, "s={s}");
            }
        }
    }

    #[test]
    fn merge_with_dead_node_form_a_ascending() {
        let mut rng = StdRng::seed_from_u64(10);
        for s in 1..=4 {
            for _ in 0..20 {
                let p = 1usize << s;
                let k = rng.random_range(1..6);
                let mut wins = bitonic_windows(&mut rng, p - 1, k, false);
                wins.insert(0, Vec::new()); // dead at logical 0
                let mut expect = flatten(&wins);
                expect.sort_unstable();
                let out = run_merge(s, wins, Some(0), Direction::Ascending);
                assert!(out[0].is_empty());
                assert_eq!(flatten(&out), expect, "s={s}");
            }
        }
    }

    #[test]
    fn merge_with_dead_node_form_b_descending() {
        let mut rng = StdRng::seed_from_u64(11);
        for s in 1..=4 {
            for _ in 0..20 {
                let p = 1usize << s;
                let k = rng.random_range(1..6);
                let mut wins = bitonic_windows(&mut rng, p - 1, k, true);
                wins.insert(0, Vec::new());
                let mut all = flatten(&wins);
                all.sort_unstable();
                all.reverse();
                let expect: Vec<u32> = all
                    .chunks(k)
                    .flat_map(|c| c.iter().rev().copied())
                    .collect();
                let out = run_merge(s, wins, Some(0), Direction::Descending);
                assert!(out[0].is_empty());
                assert_eq!(flatten(&out), expect, "s={s}");
            }
        }
    }

    #[test]
    fn reverse_windows_flips_global_order() {
        for dead in [None, Some(0usize)] {
            let s = 3;
            let p = 1usize << s;
            let k = 2;
            let start = if dead.is_some() { 1 } else { 0 };
            // ascending windows: node i holds [base, base+1]
            let chunks: Vec<Vec<u32>> = (0..p)
                .map(|i| {
                    if dead == Some(i) {
                        Vec::new()
                    } else {
                        let x = ((i - start) * k) as u32;
                        vec![x, x + 1]
                    }
                })
                .collect();
            let members: Vec<NodeId> = (0..p).map(NodeId::from).collect();
            let engine = Engine::new(FaultSet::none(Hypercube::new(s)), CostModel::paper_form());
            let inputs: Vec<Option<Vec<u32>>> = chunks
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if dead == Some(i) {
                        None
                    } else {
                        Some(c.clone())
                    }
                })
                .collect();
            let members_ref = &members;
            let out = engine.run(inputs, async move |ctx, data| {
                reverse_windows(ctx, members_ref, ctx.me().index(), dead, data, 9).await
            });
            let mut result: Vec<Vec<u32>> = vec![Vec::new(); p];
            for (node, run) in out.into_results() {
                result[node.index()] = run;
            }
            // now windows must descend across nodes, runs still ascending
            let live: Vec<&Vec<u32>> = result
                .iter()
                .enumerate()
                .filter(|(i, _)| dead != Some(*i))
                .map(|(_, r)| r)
                .collect();
            let total = live.len() * k;
            for (idx, r) in live.iter().enumerate() {
                let top = (total - idx * k) as u32;
                assert_eq!(**r, vec![top - 2, top - 1], "dead={dead:?} idx={idx}");
            }
        }
    }

    #[test]
    fn substage_count_formula() {
        assert_eq!(substage_count(0), 0);
        assert_eq!(substage_count(1), 1);
        assert_eq!(substage_count(3), 6);
        assert_eq!(substage_count(6), 21);
    }

    #[test]
    fn non_identity_member_mapping() {
        // members permuted by XOR with 0b101 (a reindexing): physical node
        // `logical ^ 5` hosts logical address `logical`.
        let s = 3;
        let p = 1usize << s;
        let mask = 0b101u32;
        let members: Vec<NodeId> = (0..p as u32).map(|l| NodeId::new(l ^ mask)).collect();
        let engine = Engine::new(FaultSet::none(Hypercube::new(s)), CostModel::paper_form());
        let inputs: Vec<Option<Vec<u32>>> = (0..p as u32)
            .map(|phys| Some(vec![phys * 7 % 13, phys * 3 % 11]))
            .collect();
        let members_ref = &members;
        let out = engine.run(inputs, async move |ctx, mut data| {
            data.sort_unstable();
            let my_logical = (ctx.me().raw() ^ mask) as usize;
            let mut scratch = Scratch::new();
            distributed_bitonic_sort(
                ctx,
                members_ref,
                my_logical,
                None,
                Direction::Ascending,
                data,
                1,
                Protocol::HalfExchange,
                &mut scratch,
            )
            .await
        });
        // gather in *logical* order
        let results = out.into_results();
        let mut by_logical: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (node, run) in results {
            by_logical[(node.raw() ^ mask) as usize] = run;
        }
        let flat = flatten(&by_logical);
        let mut expect = flat.clone();
        expect.sort_unstable();
        assert_eq!(flat, expect);
    }
}
