//! Pairwise compare-split kernels.
//!
//! A *compare-split* between processors `A` and `B`, each holding a sorted
//! run of `k` keys, must leave the `k` smallest keys of the union on the
//! `Low`-keeping side and the `k` largest on the `High` side, both sorted.
//!
//! The reversed element-wise pairing `(a_t, b_{k-1-t})` splits two arbitrary
//! ascending runs exactly: among `a_0..a_t` and `b_0..b_{k-1-t}` there are
//! `k+1` keys ≤ `max(a_t, b_{k-1-t})`, so the pair's max can never be among
//! the `k` smallest, and symmetrically its min can never be among the `k`
//! largest. The paper's protocol (§2.1, step 7) exploits this to ship only
//! half a run in each direction and compare element-wise; the classic
//! alternative ships whole runs and merges.

use crate::seq::{
    merge_keep_high_branchless_into, merge_keep_low_branchless_into, merge_runs,
    merge_runs_auto_into, Key, Scratch,
};
use hypercube::address::NodeId;
use hypercube::sim::{Comm, Tag};

/// Which half of the union this processor keeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeepHalf {
    /// Keep the `k` smallest keys.
    Low,
    /// Keep the `k` largest keys.
    High,
}

impl KeepHalf {
    /// The half the partner keeps.
    pub fn other(self) -> KeepHalf {
        match self {
            KeepHalf::Low => KeepHalf::High,
            KeepHalf::High => KeepHalf::Low,
        }
    }
}

/// Wire protocol for compare-split exchanges.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum Protocol {
    /// Exchange entire runs, merge locally, keep the wanted half.
    /// `2k` comparisons per side, `k` keys sent per side in one round.
    FullExchange,
    /// The paper's protocol: each side sends ~half its run, compares the
    /// received keys element-wise against its unsent half, keeps the winners
    /// and returns the losers. Two rounds of ~`k/2` keys per side and only
    /// ~`k/2` element-wise comparisons per side (plus the local re-merge).
    #[default]
    HalfExchange,
}

/// Marks the two message rounds of [`Protocol::HalfExchange`] inside one
/// compare-split; the top two tag bits are reserved for this.
fn round_tag(tag: Tag, round: u64) -> Tag {
    debug_assert!(round < 4);
    debug_assert_eq!(tag.0 >> 62, 0, "top tag bits reserved for protocol rounds");
    Tag(tag.0 | (round << 62))
}

/// Local (single-address-space) compare-split, used for testing the kernels
/// and by host-side reference computations: returns `(low, high)`.
pub fn compare_split_local<K: Ord>(a: Vec<K>, b: Vec<K>) -> (Vec<K>, Vec<K>) {
    let k = a.len();
    assert_eq!(k, b.len(), "compare-split requires equal-length runs");
    let (merged, _) = merge_runs(a, b);
    let mut low = merged;
    let high = low.split_off(k);
    (low, high)
}

/// Distributed compare-split over the simulated machine.
///
/// `run` must be sorted ascending and the partner must call this function
/// with the same `tag`, the same `protocol`, and the opposite `keep`.
/// Returns this side's kept half, sorted ascending. Comparisons and element
/// transfers are charged to the node's clock and counters.
///
/// `scratch` is the node's buffer pool: all intermediate runs (merge
/// outputs, loser halves, the `FullExchange` working copy) are taken from
/// and returned to it, so a warm pool makes the call allocation-free. The
/// returned run itself comes from the pool; hand it back (directly or via a
/// later send whose reply is pooled) to keep the cycle closed.
pub async fn compare_split_remote<K, C>(
    ctx: &mut C,
    partner: NodeId,
    tag: Tag,
    run: Vec<K>,
    keep: KeepHalf,
    protocol: Protocol,
    scratch: &mut Scratch<K>,
) -> Vec<K>
where
    K: Key,
    C: Comm<K>,
{
    debug_assert!(crate::seq::is_sorted(&run), "run must be sorted ascending");
    match protocol {
        Protocol::FullExchange => {
            let k = run.len();
            // working copy from the pool; the original ships to the partner
            let mut mine = scratch.take(k);
            mine.extend(run.iter().cloned());
            let mut theirs = ctx.exchange(partner, round_tag(tag, 0), run).await;
            assert_eq!(theirs.len(), k, "partner run length mismatch");
            let mut kept = scratch.take(k);
            let comparisons = match keep {
                KeepHalf::Low => {
                    merge_keep_low_branchless_into(&mut mine, &mut theirs, k, &mut kept)
                }
                KeepHalf::High => {
                    merge_keep_high_branchless_into(&mut mine, &mut theirs, k, &mut kept)
                }
            };
            ctx.charge_comparisons(comparisons as usize);
            scratch.put(mine);
            scratch.put(theirs);
            kept
        }
        Protocol::HalfExchange => half_exchange(ctx, partner, tag, run, keep, scratch).await,
    }
}

/// The paper's two-round protocol, adapted to ascending-stored runs.
///
/// With `h = ⌊k/2⌋` and the pairing `(a_t, b_{k-1-t})` (`a` on the Low side,
/// `b` on the High side):
/// * the Low side sends its top `k − h` keys, receives the High side's top
///   `h`, decides pairs `t < h` locally (keeps mins, returns maxes), and
///   receives the mins of the remaining pairs back;
/// * the High side does the mirror image.
///
/// Because `a_t` rises while `b_{k-1-t}` falls with `t`, each side's pair
/// loop has a single winner crossover, so the kept and returned sets fall
/// out as **contiguous sorted slices** — no re-scan is needed, only merges.
/// Returned keys are normalized (merged) before sending so each round is a
/// single sorted message.
async fn half_exchange<K, C>(
    ctx: &mut C,
    partner: NodeId,
    tag: Tag,
    run: Vec<K>,
    keep: KeepHalf,
    scratch: &mut Scratch<K>,
) -> Vec<K>
where
    K: Key,
    C: Comm<K>,
{
    let k = run.len();
    let h = k / 2;
    match keep {
        KeepHalf::Low => {
            let mut mine = run;
            let mut top = scratch.take(k - h);
            top.extend(mine.drain(h..)); // a[h..k] → partner
            ctx.send(partner, round_tag(tag, 0), top);
            // partner's top h keys: b[k-h..k] ascending; received[i] = b[k-h+i]
            let mut received = ctx.recv(partner, round_tag(tag, 0)).await;
            assert_eq!(received.len(), h, "protocol size mismatch");
            // pairs t in 0..h: (a_t, b_{k-1-t}) with b_{k-1-t} = received[h-1-t].
            // a wins (is the min) on a prefix t < c.
            let mut c = h;
            let mut scanned = 0usize;
            for t in 0..h {
                scanned += 1;
                if mine[t] > received[h - 1 - t] {
                    c = t;
                    break;
                }
            }
            ctx.charge_comparisons(scanned);
            let mut a_losers = scratch.take(h - c);
            a_losers.extend(mine.drain(c..)); // a[c..h] (maxes, ascending)
            let mut b_losers = scratch.take(c);
            b_losers.extend(received.drain(h - c..)); // b[k-c..k] (maxes, ascending)
                                                      // kept mins: a[0..c] = mine and b[k-h..k-c] = received, both ascending
            let mut kept = scratch.take(h);
            let c1 = merge_runs_auto_into(&mut mine, &mut received, &mut kept);
            // losers returned to the High side, normalized
            let mut losers = scratch.take(k - h);
            let c2 = merge_runs_auto_into(&mut a_losers, &mut b_losers, &mut losers);
            ctx.charge_comparisons((c1 + c2) as usize);
            scratch.put(mine);
            scratch.put(received);
            scratch.put(a_losers);
            scratch.put(b_losers);
            ctx.send(partner, round_tag(tag, 1), losers);
            let mut back = ctx.recv(partner, round_tag(tag, 1)).await;
            assert_eq!(back.len(), k - h, "protocol size mismatch");
            let mut result = scratch.take(k);
            let c3 = merge_runs_auto_into(&mut kept, &mut back, &mut result);
            ctx.charge_comparisons(c3 as usize);
            scratch.put(kept);
            scratch.put(back);
            result
        }
        KeepHalf::High => {
            let mut mine = run; // b, ascending
            let mut top = scratch.take(h);
            top.extend(mine.drain(k - h..)); // b[k-h..k] → partner
            ctx.send(partner, round_tag(tag, 0), top);
            // partner's top k-h keys: a[h..k]; received[i] = a[h+i]
            let mut received = ctx.recv(partner, round_tag(tag, 0)).await;
            assert_eq!(received.len(), k - h, "protocol size mismatch");
            // pairs t in h..k: (a_t, b_{k-1-t}) with a_t = received[t-h] and
            // b_{k-1-t} = mine[k-1-t]. a wins (is the max) on a suffix t ≥ c2.
            let mut c2 = k;
            let mut scanned = 0usize;
            for t in h..k {
                scanned += 1;
                if received[t - h] > mine[k - 1 - t] {
                    c2 = t;
                    break;
                }
            }
            ctx.charge_comparisons(scanned);
            let mut b_winners = scratch.take(c2 - h);
            b_winners.extend(mine.drain(k - c2..)); // b[k-c2..k-h] (maxes)
            let mut a_winners = scratch.take(k - c2);
            a_winners.extend(received.drain(c2 - h..)); // a[c2..k] (maxes)
                                                        // kept maxes: b[k-c2..k-h] and a[c2..k], both ascending
            let mut kept = scratch.take(h);
            let cc1 = merge_runs_auto_into(&mut b_winners, &mut a_winners, &mut kept);
            // losers (mins) returned to the Low side: a[h..c2] = received and
            // b[0..k-c2] = mine
            let mut losers = scratch.take(k - h);
            let cc2 = merge_runs_auto_into(&mut received, &mut mine, &mut losers);
            ctx.charge_comparisons((cc1 + cc2) as usize);
            scratch.put(mine);
            scratch.put(received);
            scratch.put(b_winners);
            scratch.put(a_winners);
            ctx.send(partner, round_tag(tag, 1), losers);
            let mut back = ctx.recv(partner, round_tag(tag, 1)).await;
            assert_eq!(back.len(), h, "protocol size mismatch");
            let mut result = scratch.take(k);
            let cc3 = merge_runs_auto_into(&mut kept, &mut back, &mut result);
            ctx.charge_comparisons(cc3 as usize);
            scratch.put(kept);
            scratch.put(back);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::cost::CostModel;
    use hypercube::fault::FaultSet;
    use hypercube::sim::Engine;
    use hypercube::topology::Hypercube;

    #[test]
    fn local_kernel_splits_exactly() {
        let (lo, hi) = compare_split_local(vec![1, 4, 7], vec![2, 3, 9]);
        assert_eq!(lo, vec![1, 2, 3]);
        assert_eq!(hi, vec![4, 7, 9]);
    }

    #[test]
    fn local_kernel_disjoint_and_equal_runs() {
        let (lo, hi) = compare_split_local(vec![10, 11], vec![1, 2]);
        assert_eq!(lo, vec![1, 2]);
        assert_eq!(hi, vec![10, 11]);
        let (lo, hi) = compare_split_local(vec![5, 5], vec![5, 5]);
        assert_eq!(lo, vec![5, 5]);
        assert_eq!(hi, vec![5, 5]);
    }

    /// Runs both protocols on a 1-cube and checks they agree with the local
    /// kernel.
    fn check_remote(a: Vec<u32>, b: Vec<u32>) {
        let (want_lo, want_hi) = compare_split_local(a.clone(), b.clone());
        for protocol in [Protocol::FullExchange, Protocol::HalfExchange] {
            let engine = Engine::new(FaultSet::none(Hypercube::new(1)), CostModel::paper_form());
            let inputs = vec![Some(a.clone()), Some(b.clone())];
            let out = engine.run(inputs, async move |ctx, data| {
                let keep = if ctx.me().raw() == 0 {
                    KeepHalf::Low
                } else {
                    KeepHalf::High
                };
                let mut scratch = Scratch::new();
                compare_split_remote(
                    ctx,
                    ctx.me().neighbor(0),
                    Tag::new(7),
                    data,
                    keep,
                    protocol,
                    &mut scratch,
                )
                .await
            });
            let results = out.into_results();
            assert_eq!(results[0].1, want_lo, "{protocol:?} low side");
            assert_eq!(results[1].1, want_hi, "{protocol:?} high side");
        }
    }

    #[test]
    fn remote_protocols_match_local_kernel() {
        check_remote(vec![1, 4, 7, 10], vec![2, 3, 9, 11]);
        check_remote(vec![1, 2, 3, 4], vec![5, 6, 7, 8]);
        check_remote(vec![5, 6, 7, 8], vec![1, 2, 3, 4]);
        check_remote(vec![3, 3, 3], vec![3, 3, 3]); // odd k, all ties
        check_remote(vec![9], vec![1]); // k = 1
        check_remote(vec![], vec![]); // k = 0
        check_remote(vec![2, 4, 6, 8, 10], vec![1, 3, 5, 7, 9]); // odd k
    }

    #[test]
    fn remote_protocols_random() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let k = rng.random_range(1..40);
            let mut a: Vec<u32> = (0..k).map(|_| rng.random_range(0..100)).collect();
            let mut b: Vec<u32> = (0..k).map(|_| rng.random_range(0..100)).collect();
            a.sort_unstable();
            b.sort_unstable();
            check_remote(a, b);
        }
    }

    #[test]
    fn half_exchange_sends_fewer_initial_elements_but_more_messages() {
        let run_with = |protocol: Protocol| {
            let engine = Engine::new(FaultSet::none(Hypercube::new(1)), CostModel::paper_form());
            let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
            let b: Vec<u32> = (0..100).map(|i| i * 2 + 1).collect();
            let out = engine.run(vec![Some(a), Some(b)], async move |ctx, data| {
                let keep = if ctx.me().raw() == 0 {
                    KeepHalf::Low
                } else {
                    KeepHalf::High
                };
                let mut scratch = Scratch::new();
                compare_split_remote(
                    ctx,
                    ctx.me().neighbor(0),
                    Tag::new(1),
                    data,
                    keep,
                    protocol,
                    &mut scratch,
                )
                .await
            });
            out.total_stats()
        };
        let full = run_with(Protocol::FullExchange);
        let half = run_with(Protocol::HalfExchange);
        // Both protocols move 2k keys in total, but the paper's protocol
        // splits them into twice as many messages of half the size — halving
        // the peak per-round link traffic (and per-node buffer space) at the
        // price of extra merge comparisons.
        assert_eq!(full.elements_sent, 200);
        assert_eq!(half.elements_sent, 200);
        assert_eq!(full.messages, 2);
        assert_eq!(half.messages, 4);
        assert_eq!(full.max_message_elements, 100);
        assert_eq!(half.max_message_elements, 50);
        assert!(
            half.comparisons <= 3 * full.comparisons,
            "half {} vs full {}",
            half.comparisons,
            full.comparisons
        );
    }
}
