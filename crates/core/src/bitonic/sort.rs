//! End-to-end bitonic sorts on the simulated machine.
//!
//! Two entry points:
//! * [`bitonic_sort`] — the classic sort of `M` keys on a fault-free `Q_n`,
//!   the baseline everything in the paper is compared against;
//! * [`single_fault_bitonic_sort`] — the paper's §2.1: the same sort on a
//!   `Q_n` with exactly one faulty processor, via XOR reindexing and the
//!   skip rule.

use super::distributed::distributed_bitonic_sort;
use super::protocol::Protocol;
use crate::distribute::{chunk_len, gather, scatter, Padded};
use crate::seq::{heapsort, Direction, Key, Scratch};
use hypercube::address::NodeId;
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::sim::{Comm, Engine, EngineKind};
use hypercube::stats::RunStats;
use hypercube::topology::Hypercube;

/// The result of a simulated sort.
#[derive(Clone, Debug)]
pub struct SortOutcome<K> {
    /// The globally sorted keys.
    pub sorted: Vec<K>,
    /// Simulated turnaround time (max node clock), µs.
    pub time_us: f64,
    /// Aggregated operation counters.
    pub stats: RunStats,
    /// Number of processors that held data.
    pub processors_used: usize,
}

/// Phase-tag namespace for the standalone sorts.
const PHASE_MAIN: u16 = 1;

/// Sorts `data` on a fault-free `Q_n` with the bitonic sorting algorithm,
/// each processor first heapsorting its local chunk.
///
/// ```
/// use ftsort::bitonic::{bitonic_sort, Protocol};
/// use hypercube::prelude::*;
///
/// let out = bitonic_sort(
///     Hypercube::new(3),
///     CostModel::default(),
///     vec![5u32, 3, 9, 1, 7, 2, 8, 4],
///     Protocol::HalfExchange,
/// );
/// assert_eq!(out.sorted, vec![1, 2, 3, 4, 5, 7, 8, 9]);
/// assert_eq!(out.processors_used, 8);
/// ```
pub fn bitonic_sort<K>(
    cube: Hypercube,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
) -> SortOutcome<K>
where
    K: Key,
{
    bitonic_sort_with_engine(cube, cost, data, protocol, EngineKind::default())
}

/// [`bitonic_sort`] with an explicit execution engine. Both engines return
/// identical outcomes; the choice only affects wall-clock speed.
pub fn bitonic_sort_with_engine<K>(
    cube: Hypercube,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
    kind: EngineKind,
) -> SortOutcome<K>
where
    K: Key,
{
    bitonic_sort_threaded(cube, cost, data, protocol, kind, None)
}

/// [`bitonic_sort_with_engine`] with an explicit worker count for the
/// parallel engine (`None` = available parallelism; ignored by the other
/// engines). Worker count affects wall-clock only — outcomes stay
/// byte-identical.
pub fn bitonic_sort_threaded<K>(
    cube: Hypercube,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
    kind: EngineKind,
    threads: Option<usize>,
) -> SortOutcome<K>
where
    K: Key,
{
    let mut engine = Engine::fault_free(cube, cost).with_engine(kind);
    if let Some(threads) = threads {
        engine = engine.with_workers(threads);
    }
    let members: Vec<NodeId> = cube.nodes().collect();
    sort_on_members(&engine, &members, None, data, protocol)
}

/// Sorts `data` on a `Q_n` that has **exactly one** faulty processor
/// (paper §2.1).
///
/// The machine is reindexed by XOR with the faulty address so the fault sits
/// at logical 0; elements are distributed over the `N − 1` normal processors
/// and every compare-exchange involving logical 0 is skipped. The output is
/// globally sorted in reindexed address order.
///
/// # Panics
/// If `faults` does not contain exactly one faulty processor.
pub fn single_fault_bitonic_sort<K>(
    faults: FaultSet,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
) -> SortOutcome<K>
where
    K: Key,
{
    assert_eq!(
        faults.count(),
        1,
        "single_fault_bitonic_sort requires exactly one fault"
    );
    let cube = faults.cube();
    let fault = faults.iter().next().expect("one fault");
    // members[logical] = physical address = logical ⊕ fault
    let members: Vec<NodeId> = (0..cube.len() as u32)
        .map(|logical| NodeId::new(logical).xor(fault.raw()))
        .collect();
    let engine = Engine::new(faults, cost);
    sort_on_members(&engine, &members, Some(0), data, protocol)
}

/// Shared driver: scatter over the live members, run heapsort +
/// distributed bitonic on each node, gather in logical order.
fn sort_on_members<K>(
    engine: &Engine,
    members: &[NodeId],
    dead_logical: Option<usize>,
    data: Vec<K>,
    protocol: Protocol,
) -> SortOutcome<K>
where
    K: Key,
{
    let cube = engine.cube();
    let live: Vec<usize> = (0..members.len())
        .filter(|&l| dead_logical != Some(l))
        .collect();
    let m_total = data.len();
    let k = chunk_len(m_total, live.len());
    let chunks = scatter(data, live.len());

    // inputs indexed by *physical* address
    let mut inputs: Vec<Option<Vec<Padded<K>>>> = (0..cube.len()).map(|_| None).collect();
    for (&logical, chunk) in live.iter().zip(chunks) {
        inputs[members[logical].index()] = Some(chunk);
    }

    let out = engine.run(inputs, async |ctx, mut chunk| {
        let my_logical = members
            .iter()
            .position(|&p| p == ctx.me())
            .expect("node not in member map");
        let mut scratch = Scratch::new();
        let comparisons = heapsort(&mut chunk, Direction::Ascending);
        ctx.charge_comparisons(comparisons as usize);
        let run = distributed_bitonic_sort(
            ctx,
            members,
            my_logical,
            dead_logical,
            Direction::Ascending,
            chunk,
            PHASE_MAIN,
            protocol,
            &mut scratch,
        )
        .await;
        assert_eq!(run.len(), k, "bitonic sort must preserve run length");
        run
    });

    let time_us = out.turnaround();
    let stats = out.total_stats();
    // gather in logical order
    let mut by_logical: Vec<Vec<Padded<K>>> = vec![Vec::new(); members.len()];
    for (node, run) in out.into_results() {
        let logical = members.iter().position(|&p| p == node).expect("member");
        by_logical[logical] = run;
    }
    let sorted = gather(by_logical);
    assert_eq!(sorted.len(), m_total, "keys lost or duplicated");
    SortOutcome {
        sorted,
        time_us,
        stats,
        processors_used: live.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_data(rng: &mut StdRng, m: usize) -> Vec<u32> {
        (0..m).map(|_| rng.random_range(0..1_000_000)).collect()
    }

    #[test]
    fn fault_free_sorts_exact_multiples() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_data(&mut rng, 64);
        let mut expect = data.clone();
        expect.sort_unstable();
        let out = bitonic_sort(
            Hypercube::new(3),
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        );
        assert_eq!(out.sorted, expect);
        assert_eq!(out.processors_used, 8);
        assert!(out.time_us > 0.0);
    }

    #[test]
    fn fault_free_sorts_with_padding() {
        let mut rng = StdRng::seed_from_u64(2);
        for m in [1usize, 7, 13, 100, 257] {
            let data = random_data(&mut rng, m);
            let mut expect = data.clone();
            expect.sort_unstable();
            let out = bitonic_sort(
                Hypercube::new(4),
                CostModel::paper_form(),
                data,
                Protocol::FullExchange,
            );
            assert_eq!(out.sorted, expect, "M = {m}");
        }
    }

    #[test]
    fn fault_free_on_single_node_cube() {
        let out = bitonic_sort(
            Hypercube::new(0),
            CostModel::paper_form(),
            vec![3u32, 1, 2],
            Protocol::HalfExchange,
        );
        assert_eq!(out.sorted, vec![1, 2, 3]);
        assert_eq!(out.stats.messages, 0);
    }

    #[test]
    fn single_fault_sorts_any_fault_location() {
        let mut rng = StdRng::seed_from_u64(3);
        let cube = Hypercube::new(3);
        for fault in 0..8u32 {
            let data = random_data(&mut rng, 50);
            let mut expect = data.clone();
            expect.sort_unstable();
            let faults = FaultSet::from_raw(cube, &[fault]);
            let out = single_fault_bitonic_sort(
                faults,
                CostModel::paper_form(),
                data,
                Protocol::HalfExchange,
            );
            assert_eq!(out.sorted, expect, "fault at {fault}");
            assert_eq!(out.processors_used, 7);
        }
    }

    #[test]
    fn single_fault_with_both_protocols_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_data(&mut rng, 96);
        let cube = Hypercube::new(4);
        let a = single_fault_bitonic_sort(
            FaultSet::from_raw(cube, &[11]),
            CostModel::paper_form(),
            data.clone(),
            Protocol::FullExchange,
        );
        let b = single_fault_bitonic_sort(
            FaultSet::from_raw(cube, &[11]),
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        );
        assert_eq!(a.sorted, b.sorted);
    }

    #[test]
    fn single_fault_slower_than_fault_free_same_cube() {
        // One fault means fewer processors and bigger chunks: the simulated
        // time should not be smaller than the fault-free run.
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_data(&mut rng, 1 << 10);
        let cube = Hypercube::new(4);
        let free = bitonic_sort(
            cube,
            CostModel::paper_form(),
            data.clone(),
            Protocol::HalfExchange,
        );
        let faulty = single_fault_bitonic_sort(
            FaultSet::from_raw(cube, &[5]),
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        );
        assert!(
            faulty.time_us >= free.time_us,
            "faulty {} < fault-free {}",
            faulty.time_us,
            free.time_us
        );
    }

    #[test]
    fn single_fault_beats_halved_fault_free_cube() {
        // The paper's headline: tolerating the fault in place beats falling
        // back to the largest fault-free subcube (here Q3 out of Q4).
        let mut rng = StdRng::seed_from_u64(6);
        let data = random_data(&mut rng, 1 << 12);
        let faulty = single_fault_bitonic_sort(
            FaultSet::from_raw(Hypercube::new(4), &[9]),
            CostModel::paper_form(),
            data.clone(),
            Protocol::HalfExchange,
        );
        let fallback = bitonic_sort(
            Hypercube::new(3),
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        );
        assert!(
            faulty.time_us < fallback.time_us,
            "15-processor faulty run {} should beat 8-processor fallback {}",
            faulty.time_us,
            fallback.time_us
        );
    }

    #[test]
    fn duplicate_heavy_inputs() {
        let data: Vec<u32> = (0..200).map(|i| i % 3).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let out = bitonic_sort(
            Hypercube::new(3),
            CostModel::paper_form(),
            data,
            Protocol::HalfExchange,
        );
        assert_eq!(out.sorted, expect);
    }

    #[test]
    #[should_panic(expected = "exactly one fault")]
    fn single_fault_rejects_multi_fault_sets() {
        let faults = FaultSet::from_raw(Hypercube::new(3), &[1, 2]);
        let _ = single_fault_bitonic_sort(
            faults,
            CostModel::paper_form(),
            vec![1u32],
            Protocol::HalfExchange,
        );
    }
}
