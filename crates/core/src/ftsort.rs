//! The fault-tolerant sorting algorithm (paper §3, Steps 1–8).
//!
//! Given `Q_n` with `r` faulty processors:
//!
//! 1. **Partition** (§2.2): find mincut `m` and the cutting set `Ψ`; pick
//!    `D_β ∈ Ψ` by the minmax extra-communication heuristic and designate a
//!    dangling processor in every fault-free subcube, producing the
//!    single-fault structure `F_n^m` with `2^m` subcubes of dimension
//!    `s = n − m`, each with exactly one dead processor.
//! 2. **Reindex** each subcube by XOR so its dead processor is local 0.
//! 3. **Distribute** the `M` keys over the `N' = 2^n − 2^m` live processors
//!    (`⌈M/N'⌉` each, `∞`-padded), **heapsort** locally, then run the
//!    single-fault bitonic sort inside each subcube (ascending subcubes at
//!    even addresses, descending at odd — tracked as window order, with
//!    every local run stored ascending).
//! 4. **Merge across subcubes** with a bitonic-like schedule at subcube
//!    granularity: for `i = 0..m`, `mask = v_{i+1}`, and `j = i..0`, each
//!    pair of subcubes adjacent along dimension `j` compare-splits between
//!    corresponding reindexed processors (`mask == v_j` keeps the smaller
//!    half), then every subcube re-sorts itself, ascending iff
//!    `v_{j-1} == mask` (`v_{-1} ≡ 0`).
//!
//! Afterwards the keys are globally sorted in subcube-address order.
//!
//! ## Why the inter-subcube exchange is a correct block compare-split
//!
//! At substage `(i, j)` the two neighboring subcubes always carry *opposite*
//! window orders (the step-8 rule makes order depend on `bit_j(v) == mask`,
//! and the pair differs exactly in `v_j`). Corresponding processors `w ↔ w`
//! therefore hold *complementary* rank windows, so pairing ranks `g` with
//! `K'−1−g` splits the union exactly — the multiset counting argument that
//! proves the pairwise kernel lifts verbatim to subcube granularity. Both
//! dead processors sit at `w = 0` on both sides, so their (empty) pair is
//! skipped without affecting the split.

use crate::bitonic::sort::SortOutcome;
use crate::bitonic::{
    compare_split_remote, distributed_bitonic_merge, distributed_bitonic_sort, reverse_windows,
    KeepHalf, Protocol,
};
use crate::distribute::{chunk_len, gather, scatter, Padded};
use crate::partition::{partition, PartitionResult, SingleFaultStructure};
use crate::select::{build_structure, select_cutting_sequence, Selection};
use crate::seq::{Direction, Key, Scratch};
use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::obs::sink::TraceSink;
use hypercube::sim::{BufferPool, Comm, Engine, EngineKind, LinkModel, Tag};
use std::sync::{Arc, Mutex};

/// Phase id of step 3 (local sort + intra-subcube single-fault bitonic).
///
/// Phase ids double as tag namespaces ([`Tag::phase`]) and as span keys
/// ([`Comm::span_enter`]); step-8 re-sorts get a distinct namespace per
/// `(i, j)` so their messages never cross substages, while [`phase_name`]
/// folds the whole step-8 range back into one reporting bucket.
pub const PHASE_STEP3: u16 = 2;
/// Phase id of step 7 (inter-subcube compare-splits).
pub const PHASE_STEP7: u16 = 3;
/// Base phase id of step 8; substage `(i, j)` uses `base + i·16 + j` and
/// its window reversal (if any) `base + 512 + i·16 + j`.
pub const PHASE_STEP8_BASE: u16 = 100;
/// Phase id of the host scatter collective ([`FtConfig::include_host_io`]).
pub const PHASE_SCATTER: u16 = 500;
/// Phase id of the host gather collective ([`FtConfig::include_host_io`]).
pub const PHASE_GATHER: u16 = 501;

/// Names a phase id for reports and trace exports, or `None` for ids this
/// algorithm does not emit. All step-8 substages (and their window
/// reversals) map to `"step8"`, so per-phase attribution aggregates them
/// the way [`PhaseBreakdown`] always has. `"bitonic"` (phase 1) appears
/// only in standalone bitonic runs, never in the fault-tolerant sort.
pub fn phase_name(phase: u16) -> Option<&'static str> {
    match phase {
        1 => Some("bitonic"),
        PHASE_STEP3 => Some("step3"),
        PHASE_STEP7 => Some("step7"),
        PHASE_SCATTER => Some("scatter"),
        PHASE_GATHER => Some("gather"),
        PHASE_STEP8_BASE..=867 => Some("step8"),
        _ => None,
    }
}

/// How step 8 re-establishes sorted subcubes after each inter-subcube
/// compare-split.
///
/// The paper's text prescribes a full bitonic sort, but after a
/// compare-split the subcube content is already bitonic at window
/// granularity, so a bitonic **merge** (`s` substages instead of
/// `s(s+1)/2`) suffices — with one extra window-reversal exchange when the
/// schedule demands the order the merge cannot produce directly. The merge
/// saves ~25% of simulated time and is what makes the paper's own
/// cost formula consistent with its measured Figure 7 (the formula, which
/// charges a full re-sort per substage, predicts the fault-tolerant sort
/// *loses* to the fault-free-subcube fallback at `n = 6, r = 2`). The
/// literal full sort is kept as an ablation (see `EXPERIMENTS.md`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum Step8Strategy {
    /// Bitonic merge + optional window reversal (default; matches Figure 7).
    #[default]
    BitonicMerge,
    /// Full bitonic sort, as the paper's text literally prescribes.
    FullSort,
}

/// Configuration of a fault-tolerant sort run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FtConfig {
    /// The machine cost model.
    pub cost: CostModel,
    /// The compare-split wire protocol.
    pub protocol: Protocol,
    /// The step-8 strategy.
    pub step8: Step8Strategy,
    /// The local sorting algorithm of step 3 (paper: heapsort).
    pub local_sort: crate::seq::LocalSort,
    /// The routing algorithm charging message hops (oracle shortest paths
    /// vs distributed depth-first adaptive routing).
    pub router: hypercube::sim::engine::RouterKind,
    /// Which execution engine simulates the run (the sequential event-driven
    /// scheduler by default; the threaded MIMD engine as a cross-check).
    /// Both produce identical sorted output, virtual times and statistics.
    pub engine: EngineKind,
    /// The link pricing model (uncontended paper model by default; the
    /// contended model serializes messages per directed link and records
    /// each message's queueing wait). The sorted output and communication
    /// schedule are identical under either — only clocks and waits differ.
    pub link_model: LinkModel,
    /// When set, the host distribution (step 2) and final collection are
    /// simulated as real binomial-tree scatter/gather collectives rooted at
    /// the lowest-addressed live processor (the node the NCUBE host board
    /// talks to), and their traffic is charged to the run. When unset
    /// (default, matching the paper's Figure 7 which times the sort proper)
    /// data appears on / is read off the processors for free.
    pub include_host_io: bool,
    /// When set, the engine records the full message/compute event trace
    /// (needed for Perfetto export and critical-path analysis — see
    /// `hypercube::obs`). Phase spans and per-node metrics are always
    /// recorded; only the event trace is gated, because it is the one
    /// observability channel that allocates on the message hot path.
    pub tracing: bool,
    /// Worker count for the parallel engine ([`EngineKind::Par`]); `None`
    /// (default) uses the host's available parallelism. Affects wall-clock
    /// only — simulated results are byte-identical at any worker count.
    pub threads: Option<usize>,
    /// Shard size for the parallel engine's work-stealing scheduler;
    /// `None` (default) sizes shards automatically (~4 per worker).
    /// Wall-clock only, like [`FtConfig::threads`].
    pub par_shard: Option<usize>,
}

/// Why a fault-tolerant sort cannot be planned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtError {
    /// More faults than the algorithm tolerates in this configuration: a
    /// normal processor could be isolated, or the partition would leave no
    /// live processor per subcube.
    TooManyFaults {
        /// Faults present.
        r: usize,
        /// Cube dimension.
        n: usize,
        /// Explanation.
        reason: &'static str,
    },
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::TooManyFaults { r, n, reason } => {
                write!(f, "cannot tolerate {r} faults on Q{n}: {reason}")
            }
        }
    }
}

impl std::error::Error for FtError {}

/// A fully-resolved plan for sorting on a particular faulty hypercube:
/// partition result, heuristic selection, and the designated structure.
#[derive(Clone, Debug)]
pub struct FtPlan {
    faults: FaultSet,
    partition: PartitionResult,
    selection: Selection,
    structure: SingleFaultStructure,
}

impl FtPlan {
    /// Plans a sort: runs the partition algorithm, the selection heuristic
    /// and dangling designation.
    ///
    /// Accepts any fault set for which a single-fault structure with
    /// subcube dimension `s ≥ 1` exists; the paper guarantees this whenever
    /// `r ≤ n − 1`.
    pub fn new(faults: &FaultSet) -> Result<FtPlan, FtError> {
        let n = faults.cube().dim();
        let r = faults.count();
        if faults.isolates_a_normal_node() {
            return Err(FtError::TooManyFaults {
                r,
                n,
                reason: "a normal processor is surrounded by faults",
            });
        }
        let part = partition(faults).ok_or(FtError::TooManyFaults {
            r,
            n,
            reason: "no cutting sequence separates the faults",
        })?;
        if n - part.mincut < 1 && r > 0 {
            return Err(FtError::TooManyFaults {
                r,
                n,
                reason: "partition leaves subcubes with no live processor",
            });
        }
        let selection = select_cutting_sequence(faults, &part.cutting_set);
        let structure = if r >= 2 {
            build_structure(faults, &selection)
        } else {
            // r ≤ 1: no cut, the whole cube is one subcube (dead = the fault)
            SingleFaultStructure::new(faults, &selection.dims)
        };
        Ok(FtPlan {
            faults: faults.clone(),
            partition: part,
            selection,
            structure,
        })
    }

    /// The fault set the plan was built for.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The partition-algorithm output (mincut, `Ψ`).
    pub fn partition(&self) -> &PartitionResult {
        &self.partition
    }

    /// The heuristic selection (`D_β`, cost, dangling address).
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// The designated single-fault structure.
    pub fn structure(&self) -> &SingleFaultStructure {
        &self.structure
    }

    /// Live (data-holding) processors, `N'`.
    pub fn live_count(&self) -> usize {
        self.structure.live_count()
    }

    /// Processor utilization: live processors over normal processors
    /// (the paper's Table 2 metric).
    pub fn utilization(&self) -> f64 {
        self.live_count() as f64 / self.faults.normal_count() as f64
    }
}

/// Sorts `data` on the faulty hypercube described by `plan`.
///
/// Returns the keys sorted ascending (gathered in subcube-address order)
/// together with the simulated time and operation counts.
pub fn fault_tolerant_sort_with_plan<K>(
    plan: &FtPlan,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
) -> SortOutcome<K>
where
    K: Key,
{
    fault_tolerant_sort_configured(
        plan,
        &FtConfig {
            cost,
            protocol,
            ..FtConfig::default()
        },
        data,
    )
}

/// [`fault_tolerant_sort_with_plan`] with full configuration control
/// (notably the step-8 strategy ablation).
pub fn fault_tolerant_sort_configured<K>(
    plan: &FtPlan,
    config: &FtConfig,
    data: Vec<K>,
) -> SortOutcome<K>
where
    K: Key,
{
    fault_tolerant_sort_profiled(plan, config, data).0
}

/// Virtual-time attribution of a run to the algorithm's phases.
///
/// Each field is the **maximum over processors** of the virtual time that
/// processor spent in the phase (work *and* waiting, so a processor stalled
/// on a partner charges the phase it stalls in). The fields therefore sum
/// to at least the turnaround time of the slowest processor, approximately.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseBreakdown {
    /// Host scatter (only with [`FtConfig::include_host_io`]).
    pub host_scatter_us: f64,
    /// Step 3: local sort + intra-subcube single-fault bitonic sort.
    pub step3_us: f64,
    /// Step 7: inter-subcube compare-splits (multi-hop).
    pub step7_us: f64,
    /// Step 8: intra-subcube re-merge/re-sort (+ window reversals).
    pub step8_us: f64,
    /// Host gather (only with [`FtConfig::include_host_io`]).
    pub host_gather_us: f64,
}

impl PhaseBreakdown {
    /// Rebuilds the breakdown from recorded phase spans: per node the
    /// unioned span time per phase name, then the maximum over nodes —
    /// the same "work *and* waiting, max over processors" semantics the
    /// inline clock subtraction used to compute, but derived from the
    /// shared span log every algorithm now feeds.
    pub fn from_observation(obs: &hypercube::obs::RunObservation) -> PhaseBreakdown {
        let report = obs.report(&phase_name);
        let mut breakdown = PhaseBreakdown::default();
        for phase in &report.phases {
            let slot = match phase.name.as_str() {
                "scatter" => &mut breakdown.host_scatter_us,
                "step3" => &mut breakdown.step3_us,
                "step7" => &mut breakdown.step7_us,
                "step8" => &mut breakdown.step8_us,
                "gather" => &mut breakdown.host_gather_us,
                _ => continue,
            };
            *slot = phase.max_node_us;
        }
        breakdown
    }
}

/// [`fault_tolerant_sort_configured`] that also reports where the virtual
/// time went.
pub fn fault_tolerant_sort_profiled<K>(
    plan: &FtPlan,
    config: &FtConfig,
    data: Vec<K>,
) -> (SortOutcome<K>, PhaseBreakdown)
where
    K: Key,
{
    let (outcome, breakdown, _) = fault_tolerant_sort_observed(plan, config, data);
    (outcome, breakdown)
}

/// [`fault_tolerant_sort_profiled`] that additionally returns the full
/// [`RunObservation`](hypercube::obs::RunObservation) — phase spans,
/// per-node/per-link metrics and (with [`FtConfig::tracing`]) the event
/// trace — for Perfetto export, report generation and critical-path
/// analysis.
pub fn fault_tolerant_sort_observed<K>(
    plan: &FtPlan,
    config: &FtConfig,
    data: Vec<K>,
) -> (
    SortOutcome<K>,
    PhaseBreakdown,
    hypercube::obs::RunObservation,
)
where
    K: Key,
{
    fault_tolerant_sort_sunk(plan, config, data, None, None, None)
}

/// [`fault_tolerant_sort_observed`] that draws compare-split scratch slabs
/// from a caller-owned [`BufferPool`] instead of a run-local one, so the
/// slabs warmed by one run are reused by the next — the zero-allocation
/// warm path for repeated runs (benchmark trials, replays); pinned by
/// `crates/hypercube/tests/alloc_free.rs`. Pool identity is unobservable
/// to the simulation: results are byte-identical to the unpooled calls.
pub fn fault_tolerant_sort_pooled<K>(
    plan: &FtPlan,
    config: &FtConfig,
    data: Vec<K>,
    pool: &BufferPool<Padded<K>>,
) -> (
    SortOutcome<K>,
    PhaseBreakdown,
    hypercube::obs::RunObservation,
)
where
    K: Key,
{
    fault_tolerant_sort_sunk(plan, config, data, None, Some(pool), None)
}

/// [`fault_tolerant_sort_observed`] that additionally streams every trace
/// record into `sink` as the engine emits it — the O(1)-memory path for
/// writing run files to disk (see
/// [`StreamingSink`](hypercube::obs::sink::StreamingSink)). The sink
/// receives events even when [`FtConfig::tracing`] is off; the in-memory
/// trace of the returned observation is still gated on `tracing`.
pub fn fault_tolerant_sort_streamed<K>(
    plan: &FtPlan,
    config: &FtConfig,
    data: Vec<K>,
    sink: Arc<Mutex<dyn TraceSink>>,
) -> (
    SortOutcome<K>,
    PhaseBreakdown,
    hypercube::obs::RunObservation,
)
where
    K: Key,
{
    fault_tolerant_sort_sunk(plan, config, data, Some(sink), None, None)
}

/// [`fault_tolerant_sort_observed`] that additionally attaches a
/// [`SchedProfiler`] to the run: with [`FtConfig::engine`] set to
/// [`EngineKind::Par`], the work-stealing pool records per-worker
/// wall-clock telemetry (poll/steal/park/barrier splits, steal matrix,
/// shard-size histogram) into the profiler's mailbox — take the
/// [`SchedProfile`](hypercube::obs::sched::SchedProfile) with
/// [`SchedProfiler::take`] after the call. Other engines ignore the
/// profiler (the mailbox stays empty). Profiling observes the host
/// scheduler only; simulated results, run files and reports stay
/// byte-identical (pinned by `tests/sched_profile.rs`).
///
/// An optional `sink` streams trace records like
/// [`fault_tolerant_sort_streamed`] — profiled *and* streamed is the
/// interesting combination, since a sink switches the engine onto its
/// serial-flush path, which the profile then shows as coordinator
/// [`Serial`](hypercube::obs::sched::SchedCat::Serial) time.
///
/// [`SchedProfiler`]: hypercube::obs::sched::SchedProfiler
/// [`SchedProfiler::take`]: hypercube::obs::sched::SchedProfiler::take
/// [`EngineKind::Par`]: hypercube::sim::EngineKind::Par
pub fn fault_tolerant_sort_sched<K>(
    plan: &FtPlan,
    config: &FtConfig,
    data: Vec<K>,
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    profiler: Arc<hypercube::obs::sched::SchedProfiler>,
) -> (
    SortOutcome<K>,
    PhaseBreakdown,
    hypercube::obs::RunObservation,
)
where
    K: Key,
{
    fault_tolerant_sort_sunk(plan, config, data, sink, None, Some(profiler))
}

/// The fully-general entry point: any combination of a streaming `sink`
/// ([`fault_tolerant_sort_streamed`]), a caller-owned scratch `pool`
/// ([`fault_tolerant_sort_pooled`]) and a scheduler `profiler`
/// ([`fault_tolerant_sort_sched`]). `ftsort-cli sort` drives the whole
/// observability stack through this one call — e.g. a stats-carrying
/// [`BufferPool::with_stats`] pool for the live-telemetry layer alongside
/// a run-file sink. Every attachment is individually unobservable to the
/// simulation: results stay byte-identical to the plain calls.
pub fn fault_tolerant_sort_instrumented<K>(
    plan: &FtPlan,
    config: &FtConfig,
    data: Vec<K>,
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    pool: Option<&BufferPool<Padded<K>>>,
    profiler: Option<Arc<hypercube::obs::sched::SchedProfiler>>,
) -> (
    SortOutcome<K>,
    PhaseBreakdown,
    hypercube::obs::RunObservation,
)
where
    K: Key,
{
    fault_tolerant_sort_sunk(plan, config, data, sink, pool, profiler)
}

fn fault_tolerant_sort_sunk<K>(
    plan: &FtPlan,
    config: &FtConfig,
    data: Vec<K>,
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    pool: Option<&BufferPool<Padded<K>>>,
    profiler: Option<Arc<hypercube::obs::sched::SchedProfiler>>,
) -> (
    SortOutcome<K>,
    PhaseBreakdown,
    hypercube::obs::RunObservation,
)
where
    K: Key,
{
    let cost = config.cost;
    let protocol = config.protocol;
    let step8 = config.step8;
    let st = plan.structure();
    let cube = st.cube();
    let m = st.m();
    assert!(m <= 16, "tag namespace supports m ≤ 16");
    let live = st.live_in_order();
    let m_total = data.len();
    let k = chunk_len(m_total, live.len());
    let chunks = scatter(data, live.len());

    // Step 2: the host hands each live processor its ⌈M/N'⌉ keys — either
    // for free (paper-style timing of the sort proper) or as a real
    // binomial-tree scatter rooted at the host's entry node.
    let host_parts = config.include_host_io.then(|| {
        let host = *live.iter().min().expect("at least one live processor");
        hypercube::collectives::Participants::new(cube.len(), host, &live)
    });
    let mut inputs: Vec<Option<Vec<Padded<K>>>> = (0..cube.len()).map(|_| None).collect();
    match &host_parts {
        None => {
            for (&p, chunk) in live.iter().zip(chunks) {
                inputs[p.index()] = Some(chunk);
            }
        }
        Some(parts) => {
            // the host entry node starts with everything, in rank order
            let mut by_rank: Vec<Vec<Padded<K>>> = vec![Vec::new(); live.len()];
            for (&p, chunk) in live.iter().zip(chunks) {
                by_rank[parts.rank(p).expect("live node participates")] = chunk;
            }
            for &p in &live {
                inputs[p.index()] = Some(Vec::new());
            }
            inputs[parts.root().index()] = Some(by_rank.into_iter().flatten().collect());
        }
    }
    let host_parts = &host_parts;

    let mut engine = Engine::new(plan.faults().clone(), cost)
        .with_router(config.router)
        .with_engine(config.engine)
        .with_link_model(config.link_model);
    if config.tracing {
        engine = engine.with_tracing();
    }
    if let Some(sink) = sink {
        engine = engine.with_trace_sink(sink);
    }
    if let Some(threads) = config.threads {
        engine = engine.with_workers(threads);
    }
    if let Some(shard) = config.par_shard {
        engine = engine.with_shard_size(shard);
    }
    if let Some(profiler) = profiler {
        engine = engine.with_sched_profiler(profiler);
    }
    // One slab store for the whole run, shared across nodes and engines:
    // compare-splits cycle allocations through per-node handles instead of
    // allocating per substage, and slabs warmed by finished nodes are
    // reused by the rest. Callers with repeated runs can pass their own
    // pool ([`fault_tolerant_sort_pooled`]) so warm slabs survive run to
    // run. Slab identity is unobservable to the simulation, so results
    // stay byte-identical whichever engine runs and wherever slabs come
    // from.
    let local_pool: BufferPool<Padded<K>>;
    let pool = match pool {
        Some(shared) => shared,
        None => {
            local_pool = BufferPool::new();
            &local_pool
        }
    };
    let out = engine.run(inputs, async |ctx, mut chunk| {
        let mut scratch = Scratch::pooled(pool.handle());
        if let Some(parts) = host_parts {
            let pieces = (ctx.me() == parts.root())
                .then(|| chunk.chunks(k).map(|c| c.to_vec()).collect::<Vec<_>>());
            chunk = hypercube::collectives::scatter(
                ctx,
                parts,
                Tag::phase(PHASE_SCATTER, 0, 0),
                pieces,
                k,
            )
            .await;
        }
        let (v, w) = st.locate(ctx.me());
        let members = st.members(v);
        let dead = st.subcube(v).dead_local.map(|_| 0usize);

        // Step 3: local sort (heapsort per the paper, configurable), then
        // the single-fault bitonic sort inside the subcube; subcube order
        // follows the subcube-address parity. The outer span also covers
        // the local sort, which the bitonic's own span cannot see.
        ctx.span_enter(PHASE_STEP3);
        let comparisons = config.local_sort.sort(&mut chunk, Direction::Ascending);
        ctx.charge_comparisons(comparisons as usize);
        let mut dir = Direction::from_parity(v);
        let mut run = distributed_bitonic_sort(
            ctx,
            &members,
            w as usize,
            dead,
            dir,
            chunk,
            PHASE_STEP3,
            protocol,
            &mut scratch,
        )
        .await;
        ctx.span_exit();

        // Steps 4–8: bitonic-like merge over subcubes.
        for i in 0..m {
            let mask = (v >> (i + 1)) & 1; // v_{i+1}, with v_m ≡ 0
            for j in (0..=i).rev() {
                // Step 7: compare-split with the corresponding processor of
                // the neighboring subcube along dimension j.
                let u = v ^ (1 << j);
                let partner = st.members(u)[w as usize];
                // Invariant: before substage (i, j) the subcube's window
                // order is ascending iff bit_j(v) == 0 when j == i (set by
                // the previous block's final re-sort or the step-3 parity),
                // and iff bit_j(v) == mask otherwise (set by the previous
                // step 8). Either way the partner, differing in bit j,
                // carries the opposite order.
                let expected_asc = if j == i {
                    (v >> j) & 1 == 0
                } else {
                    (v >> j) & 1 == mask
                };
                debug_assert_eq!(
                    dir,
                    if expected_asc {
                        Direction::Ascending
                    } else {
                        Direction::Descending
                    },
                    "window-order invariant broken at (i={i}, j={j}, v={v:b})"
                );
                let keep = if (v >> j) & 1 == mask {
                    KeepHalf::Low
                } else {
                    KeepHalf::High
                };
                ctx.span_enter(PHASE_STEP7);
                run = compare_split_remote(
                    ctx,
                    partner,
                    Tag::phase(PHASE_STEP7, i as u16, j as u16),
                    run,
                    keep,
                    protocol,
                    &mut scratch,
                )
                .await;
                ctx.span_exit();
                // Step 8: re-establish subcube order; the schedule demands
                // ascending iff v_{j-1} == mask (v_{-1} ≡ 0). The outer
                // span spans merge + reversal so the substage reads as one
                // contiguous interval even across the two inner spans.
                dir = direction_for(v, j, mask);
                let phase = PHASE_STEP8_BASE + (i * 16 + j) as u16;
                ctx.span_enter(phase);
                run = match step8 {
                    Step8Strategy::FullSort => {
                        distributed_bitonic_sort(
                            ctx,
                            &members,
                            w as usize,
                            dead,
                            dir,
                            run,
                            phase,
                            protocol,
                            &mut scratch,
                        )
                        .await
                    }
                    Step8Strategy::BitonicMerge => {
                        // The compare-split left this side's windows in the
                        // bitonic form its kept half implies: Low keepers
                        // can merge ascending, High keepers descending.
                        let compatible = match keep {
                            KeepHalf::Low => Direction::Ascending,
                            KeepHalf::High => Direction::Descending,
                        };
                        let mut run = distributed_bitonic_merge(
                            ctx,
                            &members,
                            w as usize,
                            dead,
                            compatible,
                            run,
                            phase,
                            protocol,
                            &mut scratch,
                        )
                        .await;
                        if dir != compatible {
                            run = reverse_windows(
                                ctx,
                                &members,
                                w as usize,
                                dead,
                                run,
                                PHASE_STEP8_BASE + 512 + (i * 16 + j) as u16,
                            )
                            .await;
                        }
                        run
                    }
                };
                ctx.span_exit();
            }
        }
        assert_eq!(run.len(), k, "sort must preserve run length");
        match host_parts {
            None => (run, None),
            Some(parts) => {
                let collected = hypercube::collectives::gather(
                    ctx,
                    parts,
                    Tag::phase(PHASE_GATHER, 0, 0),
                    run,
                    k,
                )
                .await;
                (Vec::new(), collected)
            }
        }
    });

    let time_us = out.turnaround();
    let stats = out.total_stats();
    let observation = out.observation();
    // Per-phase attribution from the recorded spans: max over processors.
    let breakdown = PhaseBreakdown::from_observation(&observation);
    // Gather in (v, w) order — the subcubes' address order of the paper.
    let sorted = match host_parts {
        None => {
            let mut by_node: Vec<Option<Vec<Padded<K>>>> = (0..cube.len()).map(|_| None).collect();
            for (node, (run, _)) in out.into_results() {
                by_node[node.index()] = Some(run);
            }
            gather(
                live.iter()
                    .map(|p| by_node[p.index()].take().expect("live node produced a run")),
            )
        }
        Some(parts) => {
            let root_pieces = out
                .node(parts.root())
                .and_then(|o| o.result.1.clone())
                .expect("host entry node collected the result");
            // rank order → (v, w) live order
            gather(
                live.iter()
                    .map(|p| root_pieces[parts.rank(*p).expect("live")].clone()),
            )
        }
    };
    assert_eq!(sorted.len(), m_total, "keys lost or duplicated");
    (
        SortOutcome {
            sorted,
            time_us,
            stats,
            processors_used: live.len(),
        },
        breakdown,
        observation,
    )
}

/// The step-8 direction after substage `(i, j)`: ascending iff
/// `v_{j-1} == mask` with `v_{-1} ≡ 0`.
fn direction_for(v: u32, j: usize, mask: u32) -> Direction {
    let v_jm1 = if j == 0 { 0 } else { (v >> (j - 1)) & 1 };
    if v_jm1 == mask {
        Direction::Ascending
    } else {
        Direction::Descending
    }
}

/// One-call entry point: plan (partition + heuristics) and sort.
///
/// ```
/// use ftsort::prelude::*;
///
/// // Q4 with three dead processors still sorts — on 12 live processors.
/// let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 7, 13]);
/// let out = fault_tolerant_sort(
///     &faults,
///     CostModel::default(),
///     (0..100u32).rev().collect(),
///     Protocol::HalfExchange,
/// ).unwrap();
/// assert_eq!(out.sorted, (0..100).collect::<Vec<u32>>());
/// assert_eq!(out.processors_used, 12);
/// ```
///
/// # Errors
/// [`FtError`] when the fault set cannot be tolerated (see [`FtPlan::new`]).
pub fn fault_tolerant_sort<K>(
    faults: &FaultSet,
    cost: CostModel,
    data: Vec<K>,
    protocol: Protocol,
) -> Result<SortOutcome<K>, FtError>
where
    K: Key,
{
    let plan = FtPlan::new(faults)?;
    Ok(fault_tolerant_sort_with_plan(&plan, cost, data, protocol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::topology::Hypercube;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_data(rng: &mut StdRng, m: usize) -> Vec<u32> {
        (0..m).map(|_| rng.random_range(0..1_000_000)).collect()
    }

    fn check_sorted(faults: &FaultSet, data: Vec<u32>, protocol: Protocol) -> SortOutcome<u32> {
        let mut expect = data.clone();
        expect.sort_unstable();
        let out = fault_tolerant_sort(faults, CostModel::paper_form(), data, protocol)
            .expect("plan must exist");
        assert_eq!(out.sorted, expect);
        out
    }

    #[test]
    fn paper_example_configuration_sorts() {
        // Q5 with the paper's 4 faults {3, 5, 16, 24}; 47 keys as in Fig. 6.
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_data(&mut rng, 47);
        let out = check_sorted(&faults, data, Protocol::HalfExchange);
        assert_eq!(out.processors_used, 24); // N' = 32 − 8
    }

    #[test]
    fn plan_exposes_paper_quantities() {
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let plan = FtPlan::new(&faults).unwrap();
        assert_eq!(plan.partition().mincut, 3);
        assert_eq!(plan.selection().dims, vec![0, 1, 3]);
        assert_eq!(plan.selection().cost, 3);
        assert_eq!(plan.live_count(), 24);
        let util = plan.utilization();
        assert!((util - 24.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn zero_and_one_fault_degenerate_to_bitonic() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = random_data(&mut rng, 100);
        let out = check_sorted(
            &FaultSet::none(Hypercube::new(3)),
            data.clone(),
            Protocol::HalfExchange,
        );
        assert_eq!(out.processors_used, 8);
        let out = check_sorted(
            &FaultSet::from_raw(Hypercube::new(3), &[6]),
            data,
            Protocol::HalfExchange,
        );
        assert_eq!(out.processors_used, 7);
    }

    #[test]
    fn pooled_runs_are_byte_identical_and_share_slabs() {
        // Two pooled runs on one caller-owned BufferPool must match the
        // unpooled call exactly (pool identity is unobservable to the
        // simulation), and run 1 must leave warmed slabs in the shared
        // store for run 2 to draw on.
        let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 9]);
        let plan = FtPlan::new(&faults).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data = random_data(&mut rng, 500);
        let config = FtConfig {
            engine: hypercube::sim::EngineKind::Par,
            threads: Some(2),
            ..FtConfig::default()
        };
        let (plain, _, _) = fault_tolerant_sort_observed(&plan, &config, data.clone());
        let pool: BufferPool<Padded<u32>> = BufferPool::new();
        let (run1, _, _) = fault_tolerant_sort_pooled(&plan, &config, data.clone(), &pool);
        assert_eq!(run1.sorted, plain.sorted);
        assert_eq!(run1.time_us.to_bits(), plain.time_us.to_bits());
        assert_eq!(run1.stats, plain.stats);
        let warmed = pool.shared_slabs();
        assert!(warmed > 0, "run 1 must park warmed slabs in the pool");
        let (run2, _, _) = fault_tolerant_sort_pooled(&plan, &config, data, &pool);
        assert_eq!(run2.sorted, plain.sorted);
        assert_eq!(run2.time_us.to_bits(), plain.time_us.to_bits());
        assert_eq!(run2.stats, plain.stats);
    }

    #[test]
    fn two_faults_no_dangling_processors() {
        // With r = 2 the cube splits into two half-cubes, each with one
        // fault: N' = N − 2, zero dangling (the paper's headline case).
        let faults = FaultSet::from_raw(Hypercube::new(4), &[2, 3]);
        let plan = FtPlan::new(&faults).unwrap();
        assert_eq!(plan.partition().mincut, 1);
        assert_eq!(plan.structure().dangling_count(), 0);
        assert_eq!(plan.live_count(), 14);
        assert!((plan.utilization() - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        check_sorted(&faults, random_data(&mut rng, 200), Protocol::HalfExchange);
    }

    #[test]
    fn all_fault_counts_on_q4_and_q5() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [4usize, 5] {
            for r in 0..n {
                for _ in 0..5 {
                    let faults = FaultSet::random(Hypercube::new(n), r, &mut rng);
                    let m_total = rng.random_range(1..300);
                    let data = random_data(&mut rng, m_total);
                    check_sorted(&faults, data, Protocol::HalfExchange);
                }
            }
        }
    }

    #[test]
    fn both_protocols_agree() {
        let mut rng = StdRng::seed_from_u64(5);
        let faults = FaultSet::from_raw(Hypercube::new(4), &[1, 6, 12]);
        let data = random_data(&mut rng, 150);
        let a = check_sorted(&faults, data.clone(), Protocol::FullExchange);
        let b = check_sorted(&faults, data, Protocol::HalfExchange);
        assert_eq!(a.sorted, b.sorted);
    }

    #[test]
    fn tiny_inputs_and_duplicates() {
        let faults = FaultSet::from_raw(Hypercube::new(4), &[0, 15]);
        check_sorted(&faults, vec![], Protocol::HalfExchange);
        check_sorted(&faults, vec![5], Protocol::HalfExchange);
        check_sorted(&faults, vec![9, 9, 9, 9, 9], Protocol::HalfExchange);
        check_sorted(
            &faults,
            (0..50).map(|i| i % 4).collect(),
            Protocol::HalfExchange,
        );
    }

    #[test]
    fn already_sorted_and_reversed_inputs() {
        let faults = FaultSet::from_raw(Hypercube::new(4), &[3, 5, 9]);
        check_sorted(&faults, (0..111).collect(), Protocol::HalfExchange);
        check_sorted(&faults, (0..111).rev().collect(), Protocol::HalfExchange);
    }

    #[test]
    fn utilization_beats_mffs_bound() {
        // Paper: dangling processors ≤ N/4 in the worst case, so utilization
        // ≥ 3/4 over live+dangling; MFFS with r = n−1 is at best N/2.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let n = 6;
            let faults = FaultSet::random(Hypercube::new(n), n - 1, &mut rng);
            let plan = FtPlan::new(&faults).unwrap();
            let live = plan.live_count();
            assert!(
                live * 4 >= 3 * (1 << n),
                "live {live} below 3N/4 for faults {:?}",
                faults.to_vec()
            );
        }
    }

    #[test]
    fn isolation_is_rejected() {
        // Q2 with node 0's both neighbors faulty
        let faults = FaultSet::from_raw(Hypercube::new(2), &[1, 2]);
        let err = FtPlan::new(&faults).unwrap_err();
        assert!(matches!(err, FtError::TooManyFaults { .. }));
    }

    #[test]
    fn r_equal_n_still_works_when_separable() {
        // The paper notes the partition also applies for r ≥ n if no normal
        // node is isolated.
        let faults = FaultSet::from_raw(Hypercube::new(3), &[0, 1, 2]); // r = n = 3
        let mut rng = StdRng::seed_from_u64(7);
        check_sorted(&faults, random_data(&mut rng, 60), Protocol::HalfExchange);
    }

    #[test]
    fn host_io_collectives_produce_same_result_and_cost_more() {
        let mut rng = StdRng::seed_from_u64(9);
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let plan = FtPlan::new(&faults).unwrap();
        let data = random_data(&mut rng, 2_400);
        let mut expect = data.clone();
        expect.sort_unstable();
        let free = fault_tolerant_sort_configured(&plan, &FtConfig::default(), data.clone());
        let host = fault_tolerant_sort_configured(
            &plan,
            &FtConfig {
                include_host_io: true,
                ..FtConfig::default()
            },
            data,
        );
        assert_eq!(free.sorted, expect);
        assert_eq!(host.sorted, expect);
        assert!(
            host.time_us > free.time_us,
            "host I/O must add time: {} vs {}",
            host.time_us,
            free.time_us
        );
        assert!(host.stats.element_hops > free.stats.element_hops);
    }

    #[test]
    fn phase_breakdown_accounts_for_the_run() {
        let mut rng = StdRng::seed_from_u64(10);
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let plan = FtPlan::new(&faults).unwrap();
        let data = random_data(&mut rng, 4_800);
        let (out, phases) = fault_tolerant_sort_profiled(&plan, &FtConfig::default(), data);
        assert!(phases.step3_us > 0.0);
        assert!(phases.step7_us > 0.0);
        assert!(phases.step8_us > 0.0);
        assert_eq!(phases.host_scatter_us, 0.0, "host I/O off by default");
        assert_eq!(phases.host_gather_us, 0.0);
        let sum = phases.step3_us + phases.step7_us + phases.step8_us;
        // per-phase maxima bound the turnaround from above (waiting charged
        // per phase) and each phase is below the total
        assert!(
            sum >= out.time_us * 0.99,
            "sum {sum} vs total {}",
            out.time_us
        );
        assert!(phases.step3_us < out.time_us);
        // with host I/O on, the I/O phases appear
        let data = random_data(&mut rng, 4_800);
        let (_, phases) = fault_tolerant_sort_profiled(
            &plan,
            &FtConfig {
                include_host_io: true,
                ..FtConfig::default()
            },
            data,
        );
        assert!(phases.host_scatter_us > 0.0);
        assert!(phases.host_gather_us > 0.0);
    }

    #[test]
    fn local_sort_choices_agree() {
        use crate::seq::LocalSort;
        let mut rng = StdRng::seed_from_u64(11);
        let faults = FaultSet::from_raw(Hypercube::new(4), &[1, 6, 12]);
        let plan = FtPlan::new(&faults).unwrap();
        let data = random_data(&mut rng, 3_000);
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut times = Vec::new();
        for local_sort in [
            LocalSort::Heapsort,
            LocalSort::Quicksort,
            LocalSort::Mergesort,
        ] {
            let out = fault_tolerant_sort_configured(
                &plan,
                &FtConfig {
                    local_sort,
                    ..FtConfig::default()
                },
                data.clone(),
            );
            assert_eq!(out.sorted, expect, "{local_sort:?}");
            times.push((local_sort, out.time_us, out.stats.comparisons));
        }
        // quicksort should use fewer comparisons than heapsort on random data
        assert!(times[1].2 < times[0].2, "{times:?}");
    }

    #[test]
    fn virtual_time_deterministic() {
        let faults = FaultSet::from_raw(Hypercube::new(5), &[3, 5, 16, 24]);
        let mut rng = StdRng::seed_from_u64(8);
        let data = random_data(&mut rng, 480);
        let t1 = fault_tolerant_sort(
            &faults,
            CostModel::default(),
            data.clone(),
            Protocol::HalfExchange,
        )
        .unwrap()
        .time_us;
        let t2 = fault_tolerant_sort(&faults, CostModel::default(), data, Protocol::HalfExchange)
            .unwrap()
            .time_us;
        assert_eq!(t1, t2);
        assert!(t1 > 0.0);
    }
}
