//! Comparison-counted quicksort (median-of-three, insertion sort below a
//! small cutoff) — an alternative local sort for the step-3 ablation.
//!
//! The paper prescribes heapsort; on real machines quicksort's constant is
//! usually smaller while its worst case is quadratic. The ablation bench
//! quantifies what that choice is worth on the simulated machine.

use super::Direction;
use std::cmp::Ordering;

const INSERTION_CUTOFF: usize = 12;

/// Sorts `data` in place in the requested direction, returning the number
/// of key comparisons performed.
pub fn quicksort<K: Ord>(data: &mut [K], dir: Direction) -> u64 {
    let mut comparisons = 0u64;
    quicksort_rec(data, dir, &mut comparisons);
    comparisons
}

fn less<K: Ord>(a: &K, b: &K, dir: Direction, comparisons: &mut u64) -> bool {
    *comparisons += 1;
    match dir {
        Direction::Ascending => a < b,
        Direction::Descending => a > b,
    }
}

fn quicksort_rec<K: Ord>(mut data: &mut [K], dir: Direction, comparisons: &mut u64) {
    loop {
        let n = data.len();
        if n <= INSERTION_CUTOFF {
            insertion_sort(data, dir, comparisons);
            return;
        }
        // median-of-three pivot: first, middle, last → move median to end-1
        let mid = n / 2;
        if less(&data[mid], &data[0], dir, comparisons) {
            data.swap(mid, 0);
        }
        if less(&data[n - 1], &data[0], dir, comparisons) {
            data.swap(n - 1, 0);
        }
        if less(&data[n - 1], &data[mid], dir, comparisons) {
            data.swap(n - 1, mid);
        }
        data.swap(mid, n - 2);
        let pivot_idx = n - 2;
        // Hoare-ish partition over data[1..n-2] with sentinels at both ends
        let mut i = 0usize;
        let mut j = pivot_idx;
        loop {
            i += 1;
            while less(&data[i], &data[pivot_idx], dir, comparisons) {
                i += 1;
            }
            j -= 1;
            while less(&data[pivot_idx], &data[j], dir, comparisons) {
                j -= 1;
            }
            if i >= j {
                break;
            }
            data.swap(i, j);
        }
        data.swap(i, pivot_idx);
        // recurse on the smaller side, loop on the larger (O(log n) stack)
        let (lo, rest) = data.split_at_mut(i);
        let (_pivot, hi) = rest.split_at_mut(1);
        if lo.len() < hi.len() {
            quicksort_rec(lo, dir, comparisons);
            data = hi;
        } else {
            quicksort_rec(hi, dir, comparisons);
            data = lo;
        }
    }
}

fn insertion_sort<K: Ord>(data: &mut [K], dir: Direction, comparisons: &mut u64) {
    let want = |o: Ordering| match dir {
        Direction::Ascending => o == Ordering::Less,
        Direction::Descending => o == Ordering::Greater,
    };
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 {
            *comparisons += 1;
            if want(data[j].cmp(&data[j - 1])) {
                data.swap(j, j - 1);
                j -= 1;
            } else {
                break;
            }
        }
    }
}

/// Comparison-counted bottom-up merge sort (stable), the third local-sort
/// option.
pub fn mergesort<K: Ord>(data: &mut Vec<K>, dir: Direction) -> u64 {
    let taken = std::mem::take(data);
    let mut runs: Vec<Vec<K>> = taken.into_iter().map(|x| vec![x]).collect();
    let mut comparisons = 0u64;
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            if let Some(b) = it.next() {
                let (m, c) = merge_dir(a, b, dir);
                comparisons += c;
                next.push(m);
            } else {
                next.push(a);
            }
        }
        runs = next;
    }
    *data = runs.pop().unwrap_or_default();
    comparisons
}

fn merge_dir<K: Ord>(a: Vec<K>, b: Vec<K>, dir: Direction) -> (Vec<K>, u64) {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut comparisons = 0u64;
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                comparisons += 1;
                let take_a = match dir {
                    Direction::Ascending => x <= y,
                    Direction::Descending => x >= y,
                };
                if take_a {
                    out.push(ai.next().unwrap());
                } else {
                    out.push(bi.next().unwrap());
                }
            }
            (Some(_), None) => {
                out.extend(ai);
                break;
            }
            (None, _) => {
                out.extend(bi);
                break;
            }
        }
    }
    (out, comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_all(mut v: Vec<i64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut q = v.clone();
        quicksort(&mut q, Direction::Ascending);
        assert_eq!(q, expect);
        let mut m = v.clone();
        mergesort(&mut m, Direction::Ascending);
        assert_eq!(m, expect);
        expect.reverse();
        quicksort(&mut v, Direction::Descending);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_basic_cases() {
        check_all(vec![]);
        check_all(vec![1]);
        check_all(vec![2, 1]);
        check_all(vec![3, 1, 2]);
        check_all((0..100).collect());
        check_all((0..100).rev().collect());
        check_all(vec![5; 50]);
    }

    #[test]
    fn sorts_random_inputs() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..60 {
            let len = rng.random_range(0..400);
            let v: Vec<i64> = (0..len).map(|_| rng.random_range(-50..50)).collect();
            check_all(v);
        }
    }

    #[test]
    fn mergesort_is_stable() {
        let mut v = vec![(2, 'a'), (1, 'a'), (2, 'b'), (1, 'b')];
        // sort by first field only
        #[derive(PartialEq, Eq)]
        struct ByKey((i32, char));
        impl Ord for ByKey {
            fn cmp(&self, other: &Self) -> Ordering {
                self.0 .0.cmp(&other.0 .0)
            }
        }
        impl PartialOrd for ByKey {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut wrapped: Vec<ByKey> = v.drain(..).map(ByKey).collect();
        mergesort(&mut wrapped, Direction::Ascending);
        let back: Vec<(i32, char)> = wrapped.into_iter().map(|w| w.0).collect();
        assert_eq!(back, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
    }

    #[test]
    fn quicksort_comparisons_near_n_log_n_on_random_input() {
        let mut rng = StdRng::seed_from_u64(37);
        for k in [100usize, 1000, 10_000] {
            let mut v: Vec<u64> = (0..k).map(|_| rng.random()).collect();
            let c = quicksort(&mut v, Direction::Ascending);
            let bound = 3.0 * k as f64 * (k as f64).log2();
            assert!((c as f64) < bound, "k={k}: {c} comparisons");
        }
    }

    #[test]
    fn quicksort_beats_heapsort_on_average() {
        let mut rng = StdRng::seed_from_u64(41);
        let v: Vec<u64> = (0..10_000).map(|_| rng.random()).collect();
        let mut a = v.clone();
        let qc = quicksort(&mut a, Direction::Ascending);
        let mut b = v;
        let hc = super::super::heapsort(&mut b, Direction::Ascending);
        assert!(qc < hc, "quicksort {qc} vs heapsort {hc}");
    }
}
