//! The key-type abstraction for the branchless kernel layer.
//!
//! The scalar reference kernels in [`super::merge`] work over any `K: Ord`.
//! The branchless/cache-blocked kernels in [`super::branchless`] additionally
//! need keys they can load and move by value inside a fixed-width inner loop
//! with no data-dependent control flow — that is what [`Key`] captures:
//! `Ord + Copy` plus the thread bounds the three engines need to ship runs
//! between nodes. Everything above the kernels (`compare_split_remote`, the
//! sorts in `ftsort`/`mffs`/`baselines`) dispatches over `Key`
//! monomorphically, so each concrete key type gets its own specialized
//! branchless loop.

use serde::{Deserialize, Serialize};

/// A sortable key the branchless kernels can move by value.
///
/// Implemented for the primitive integers, for [`KeyPair`]
/// (key + payload), and for [`crate::distribute::Padded<K>`] so the
/// dummy-extended element type used on the wire is itself a `Key`.
///
/// `Copy` is the load-bearing bound: the branchless inner loop reads both
/// candidates, selects with a conditional move, and advances one index —
/// none of which is expressible (without branches) over move-only values.
/// `Send + Sync + 'static` are what the threaded and work-stealing engines
/// require to ship runs between nodes.
pub trait Key: Ord + Copy + Send + Sync + std::fmt::Debug + 'static {}

macro_rules! impl_key {
    ($($t:ty),*) => {$( impl Key for $t {} )*};
}
impl_key!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// A 16-byte key + payload record: orders by `key` first (then `payload`,
/// so ties stay deterministic), carries `payload` along untouched.
///
/// This is the "sorting real records, not bare integers" row in the kernel
/// bench: twice the bytes per element of `u64`, same comparison counts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct KeyPair {
    /// The sort key.
    pub key: u64,
    /// Opaque payload, moved wherever the key goes.
    pub payload: u64,
}

impl KeyPair {
    /// A record sorting by `key`, carrying `payload`.
    pub fn new(key: u64, payload: u64) -> Self {
        KeyPair { key, payload }
    }
}

impl Key for KeyPair {}

/// The concrete key types the CLI and report bins can sort — the monomorphic
/// dispatch set. Parsed from `--key-type`, recorded in `RunReport` JSON.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum KeyType {
    /// 4-byte unsigned keys.
    U32,
    /// 8-byte unsigned keys.
    U64,
    /// 8-byte signed keys (the default).
    #[default]
    I64,
    /// 16-byte [`KeyPair`] records.
    Pair,
}

impl KeyType {
    /// All variants, in `--key-type` spelling order.
    pub const ALL: [KeyType; 4] = [KeyType::U32, KeyType::U64, KeyType::I64, KeyType::Pair];

    /// Parses a `--key-type` argument.
    pub fn parse(s: &str) -> Result<KeyType, String> {
        match s {
            "u32" => Ok(KeyType::U32),
            "u64" => Ok(KeyType::U64),
            "i64" => Ok(KeyType::I64),
            "pair" => Ok(KeyType::Pair),
            other => Err(format!(
                "unknown key type '{other}' (expected u32|u64|i64|pair)"
            )),
        }
    }

    /// The `--key-type` spelling (also what reports record).
    pub fn as_str(self) -> &'static str {
        match self {
            KeyType::U32 => "u32",
            KeyType::U64 => "u64",
            KeyType::I64 => "i64",
            KeyType::Pair => "pair",
        }
    }
}

impl std::fmt::Display for KeyType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl<K: Key> Key for crate::distribute::Padded<K> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_pair_orders_by_key_then_payload() {
        assert!(KeyPair::new(1, 9) < KeyPair::new(2, 0));
        assert!(KeyPair::new(1, 0) < KeyPair::new(1, 1));
        assert_eq!(KeyPair::new(3, 3), KeyPair::new(3, 3));
    }

    #[test]
    fn key_type_parses_every_spelling_and_rejects_junk() {
        for kt in KeyType::ALL {
            assert_eq!(KeyType::parse(kt.as_str()), Ok(kt));
            assert_eq!(kt.to_string(), kt.as_str());
        }
        assert!(KeyType::parse("f32").is_err());
        assert_eq!(KeyType::default(), KeyType::I64);
    }
}
