//! A per-node pool of reusable `Vec` buffers for the compare-split hot path.

/// A free list of empty `Vec<K>` allocations.
///
/// Each node program keeps one `Scratch` for the duration of a sort. The
/// compare-split protocol [`take`]s buffers for merge outputs and loser
/// halves and [`put`]s spent input buffers back, so after the first few
/// rounds warm the pool no compare-split allocates — buffers just cycle
/// between the pool, the in-flight messages and the live run. (On the
/// sequential engine message payloads move by ownership, so an exchange
/// swaps whole allocations between the partners' pools.)
///
/// [`take`]: Scratch::take
/// [`put`]: Scratch::put
#[derive(Debug)]
pub struct Scratch<K> {
    bufs: Vec<Vec<K>>,
}

impl<K> Default for Scratch<K> {
    fn default() -> Self {
        Scratch::new()
    }
}

impl<K> Scratch<K> {
    /// An empty pool.
    pub fn new() -> Self {
        Scratch { bufs: Vec::new() }
    }

    /// Takes an empty buffer with capacity ≥ `capacity` from the pool (the
    /// most recently returned one, for cache warmth), or allocates one if
    /// the pool is dry.
    pub fn take(&mut self, capacity: usize) -> Vec<K> {
        match self.bufs.pop() {
            Some(mut buf) => {
                buf.reserve(capacity);
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a spent buffer to the pool. The contents are dropped; the
    /// allocation is kept for the next [`Scratch::take`].
    pub fn put(&mut self, mut buf: Vec<K>) {
        buf.clear();
        self.bufs.push(buf);
    }

    /// Number of pooled buffers (diagnostics / tests).
    pub fn pooled(&self) -> usize {
        self.bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_allocations() {
        let mut pool: Scratch<u64> = Scratch::new();
        let mut a = pool.take(100);
        a.extend(0..100);
        let ptr = a.as_ptr();
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.take(50);
        assert_eq!(b.as_ptr(), ptr, "pooled allocation is reused");
        assert_eq!(b.capacity(), cap);
        assert!(b.is_empty());
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn take_grows_when_pool_is_dry_or_small() {
        let mut pool: Scratch<u8> = Scratch::new();
        let a = pool.take(16);
        assert!(a.capacity() >= 16);
        pool.put(a);
        let b = pool.take(1024);
        assert!(
            b.capacity() >= 1024,
            "reserve grows a too-small pooled buffer"
        );
    }
}
