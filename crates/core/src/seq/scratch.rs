//! A per-node pool of reusable `Vec` buffers for the compare-split hot path.

use hypercube::sim::PoolHandle;

/// Where a [`Scratch`] parks and draws its allocations.
enum Store<K> {
    /// A private free list owned by this node alone.
    Own(Vec<Vec<K>>),
    /// A handle on a run-wide [`hypercube::sim::BufferPool`]: buffers cycle
    /// through a small per-node local list and spill to the shared store,
    /// so slabs warmed by one node are reused by others — on the threaded
    /// and parallel engines this turns `N` cold starts into one.
    Pooled(PoolHandle<K>),
}

/// A free list of empty `Vec<K>` allocations.
///
/// Each node program keeps one `Scratch` for the duration of a sort. The
/// compare-split protocol [`take`]s buffers for merge outputs and loser
/// halves and [`put`]s spent input buffers back, so after the first few
/// rounds warm the pool no compare-split allocates — buffers just cycle
/// between the pool, the in-flight messages and the live run. (On the
/// frontier engines message payloads move by ownership, so an exchange
/// swaps whole allocations between the partners' pools.)
///
/// A `Scratch` is either self-contained ([`Scratch::new`]) or backed by a
/// run-wide [`hypercube::sim::BufferPool`] ([`Scratch::pooled`]); the hot
/// path is identical, only the refill/spill target differs.
///
/// [`take`]: Scratch::take
/// [`put`]: Scratch::put
pub struct Scratch<K> {
    store: Store<K>,
}

impl<K> Default for Scratch<K> {
    fn default() -> Self {
        Scratch::new()
    }
}

impl<K> Scratch<K> {
    /// An empty self-contained pool.
    pub fn new() -> Self {
        Scratch {
            store: Store::Own(Vec::new()),
        }
    }

    /// A pool backed by a run-wide slab store. Dropping the `Scratch`
    /// (node finish) returns its local slabs for other nodes to reuse.
    pub fn pooled(handle: PoolHandle<K>) -> Self {
        Scratch {
            store: Store::Pooled(handle),
        }
    }

    /// Takes an empty buffer with capacity ≥ `capacity` from the pool (the
    /// most recently returned one, for cache warmth), or allocates one if
    /// the pool is dry.
    pub fn take(&mut self, capacity: usize) -> Vec<K> {
        match &mut self.store {
            Store::Own(bufs) => match bufs.pop() {
                Some(mut buf) => {
                    buf.reserve(capacity);
                    buf
                }
                None => Vec::with_capacity(capacity),
            },
            Store::Pooled(handle) => handle.take(capacity),
        }
    }

    /// Returns a spent buffer to the pool. The contents are dropped; the
    /// allocation is kept for the next [`Scratch::take`].
    pub fn put(&mut self, mut buf: Vec<K>) {
        match &mut self.store {
            Store::Own(bufs) => {
                buf.clear();
                bufs.push(buf);
            }
            Store::Pooled(handle) => handle.put(buf),
        }
    }

    /// Number of buffers pooled locally (diagnostics / tests); slabs spilled
    /// to a backing [`hypercube::sim::BufferPool`] are not counted.
    pub fn pooled_local(&self) -> usize {
        match &self.store {
            Store::Own(bufs) => bufs.len(),
            Store::Pooled(handle) => handle.local_slabs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercube::sim::BufferPool;

    #[test]
    fn take_reuses_returned_allocations() {
        let mut pool: Scratch<u64> = Scratch::new();
        let mut a = pool.take(100);
        a.extend(0..100);
        let ptr = a.as_ptr();
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.pooled_local(), 1);
        let b = pool.take(50);
        assert_eq!(b.as_ptr(), ptr, "pooled allocation is reused");
        assert_eq!(b.capacity(), cap);
        assert!(b.is_empty());
        assert_eq!(pool.pooled_local(), 0);
    }

    #[test]
    fn take_grows_when_pool_is_dry_or_small() {
        let mut pool: Scratch<u8> = Scratch::new();
        let a = pool.take(16);
        assert!(a.capacity() >= 16);
        pool.put(a);
        let b = pool.take(1024);
        assert!(
            b.capacity() >= 1024,
            "reserve grows a too-small pooled buffer"
        );
    }

    #[test]
    fn pooled_scratch_round_trips_through_the_shared_store() {
        let shared: BufferPool<u32> = BufferPool::new();
        let mut a = Scratch::pooled(shared.handle());
        let mut buf = a.take(64);
        buf.extend(0..64);
        let ptr = buf.as_ptr();
        a.put(buf);
        drop(a); // node finishes: its slab parks in the shared store
        assert_eq!(shared.shared_slabs(), 1);
        let mut b = Scratch::pooled(shared.handle());
        let again = b.take(8);
        assert_eq!(again.as_ptr(), ptr, "another node reuses the warm slab");
    }
}
