//! Scalar reference merge kernels for sorted and bitonic runs.
//!
//! Every kernel exists in two forms: an owning form (`merge_runs`, …) that
//! allocates its output, and an `_into` form that drains the inputs into a
//! caller-supplied buffer, leaving the input allocations intact for reuse.
//! The `_into` forms, together with the [`crate::seq::Scratch`] buffer pool,
//! make a compare-split round allocation-free once the pool is warm. Both
//! forms perform identical comparison sequences, so charged virtual time
//! does not depend on which is used.
//!
//! These kernels work over any `K: Ord` and serve as the semantic reference:
//! the compare-split hot path now runs the branchless/cache-blocked kernels
//! ([`crate::seq::merge_runs_auto_into`] & co., over `K: Key`), which are
//! pinned to these by differential tests — identical outputs *and* identical
//! comparison counts, so the cost model cannot tell them apart.

/// Merges ascending `a` and `b` into `out` (cleared first), draining both
/// inputs but keeping their allocations. Returns the number of comparisons
/// performed (≤ `a.len() + b.len() − 1`, the quantity the paper's
/// step 7(c) charges).
pub fn merge_runs_into<K: Ord>(a: &mut Vec<K>, b: &mut Vec<K>, out: &mut Vec<K>) -> u64 {
    out.clear();
    out.reserve(a.len() + b.len());
    let mut comparisons = 0u64;
    let mut ai = a.drain(..).peekable();
    let mut bi = b.drain(..).peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                comparisons += 1;
                if x <= y {
                    out.push(ai.next().unwrap());
                } else {
                    out.push(bi.next().unwrap());
                }
            }
            (Some(_), None) => {
                out.extend(ai);
                break;
            }
            (None, _) => {
                out.extend(bi);
                break;
            }
        }
    }
    comparisons
}

/// Merges two ascending runs into one ascending run, returning the merged
/// run and the comparison count. Owning wrapper over [`merge_runs_into`].
pub fn merge_runs<K: Ord>(mut a: Vec<K>, mut b: Vec<K>) -> (Vec<K>, u64) {
    let mut out = Vec::new();
    let comparisons = merge_runs_into(&mut a, &mut b, &mut out);
    (out, comparisons)
}

/// Merges ascending `a` and `b` into `out` (cleared first) keeping only the
/// `keep` smallest keys — the truncated merge a `Low`-keeping compare-split
/// needs. At most `keep` comparisons. Drains both inputs (losers included),
/// keeping their allocations.
pub fn merge_keep_low_into<K: Ord>(
    a: &mut Vec<K>,
    b: &mut Vec<K>,
    keep: usize,
    out: &mut Vec<K>,
) -> u64 {
    debug_assert!(keep <= a.len() + b.len());
    out.clear();
    out.reserve(keep);
    let mut comparisons = 0u64;
    let mut ai = a.drain(..).peekable();
    let mut bi = b.drain(..).peekable();
    while out.len() < keep {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                comparisons += 1;
                if x <= y {
                    out.push(ai.next().unwrap());
                } else {
                    out.push(bi.next().unwrap());
                }
            }
            (Some(_), None) => out.push(ai.next().unwrap()),
            (None, Some(_)) => out.push(bi.next().unwrap()),
            (None, None) => unreachable!("keep exceeds input size"),
        }
    }
    comparisons
}

/// Merges two ascending runs but keeps only the `keep` smallest keys.
/// Owning wrapper over [`merge_keep_low_into`].
pub fn merge_keep_low<K: Ord>(mut a: Vec<K>, mut b: Vec<K>, keep: usize) -> (Vec<K>, u64) {
    let mut out = Vec::new();
    let comparisons = merge_keep_low_into(&mut a, &mut b, keep, &mut out);
    (out, comparisons)
}

/// Merges ascending `a` and `b` into `out` (cleared first) keeping only the
/// `keep` largest keys, by merging from the back. At most `keep`
/// comparisons. Drains both inputs (losers included), keeping their
/// allocations.
pub fn merge_keep_high_into<K: Ord>(
    a: &mut Vec<K>,
    b: &mut Vec<K>,
    keep: usize,
    out: &mut Vec<K>,
) -> u64 {
    debug_assert!(keep <= a.len() + b.len());
    out.clear();
    out.reserve(keep);
    let mut comparisons = 0u64;
    while out.len() < keep {
        let take_a = match (a.last(), b.last()) {
            (Some(x), Some(y)) => {
                comparisons += 1;
                x > y
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("keep exceeds input size"),
        };
        if take_a {
            out.push(a.pop().unwrap());
        } else {
            out.push(b.pop().unwrap());
        }
    }
    out.reverse();
    a.clear();
    b.clear();
    comparisons
}

/// Merges two ascending runs but keeps only the `keep` largest keys.
/// Owning wrapper over [`merge_keep_high_into`].
pub fn merge_keep_high<K: Ord>(mut a: Vec<K>, mut b: Vec<K>, keep: usize) -> (Vec<K>, u64) {
    let mut out = Vec::new();
    let comparisons = merge_keep_high_into(&mut a, &mut b, keep, &mut out);
    (out, comparisons)
}

/// Sorts a *bitonic* run (ascending prefix followed by descending suffix, or
/// the rotationally equivalent descending-then-ascending form produced by
/// element-wise compare-splits) into an ascending run.
///
/// Works in `O(k)` comparisons: locate the extremum, split into two monotone
/// pieces, and merge. Falls back gracefully on arbitrary monotone inputs
/// (already-ascending or already-descending runs are valid bitonic runs).
///
/// Returns the sorted run and the comparison count.
///
/// # Panics
/// Debug builds assert the output is actually sorted, which catches
/// non-bitonic inputs.
pub fn sort_bitonic_run<K: Ord>(run: Vec<K>) -> (Vec<K>, u64) {
    let k = run.len();
    if k <= 1 {
        return (run, 0);
    }
    let mut comparisons = 0u64;
    // A bitonic sequence (in the cyclic sense) has at most one ascent-to-
    // descent change and at most one descent-to-ascent change. Find the first
    // direction change; split there; both pieces are monotone.
    let mut split = k;
    let mut rising = true;
    for i in 1..k {
        comparisons += 1;
        let up = run[i - 1] <= run[i];
        if i == 1 {
            rising = up;
            continue;
        }
        if up != rising {
            split = i;
            break;
        }
    }
    let mut head: Vec<K> = run;
    let tail: Vec<K> = head.split_off(split.min(k));
    if !rising {
        head.reverse();
    } else {
        // tail is the descending part (or empty)
    }
    let tail = {
        let mut t = tail;
        // tail is monotone in the opposite sense of head's original sense
        if rising {
            t.reverse();
        }
        t
    };
    // `head` and `tail` are now both ascending — but a *cyclic* bitonic run
    // (descending-then-ascending) makes `tail` non-monotone after one
    // reversal is applied to the wrong piece. Handle it by checking and
    // re-splitting if needed.
    if !is_ascending(&tail, &mut comparisons) || !is_ascending(&head, &mut comparisons) {
        // Cyclic case: fall back to a counted insertion-free approach —
        // re-split the concatenation at its minimum.
        let mut all = head;
        all.extend(tail);
        // restore original order? `head` may have been reversed; order no
        // longer matters for correctness below because we re-sort from the
        // two monotone pieces around the global minimum of the original
        // cyclic sequence; simplest robust fallback: merge-sort the pieces.
        return merge_sort_counted(all, comparisons);
    }
    let (merged, c) = merge_runs(head, tail);
    comparisons += c;
    debug_assert!(super::is_sorted(&merged), "input was not bitonic");
    (merged, comparisons)
}

fn is_ascending<K: Ord>(run: &[K], comparisons: &mut u64) -> bool {
    for w in run.windows(2) {
        *comparisons += 1;
        if w[0] > w[1] {
            return false;
        }
    }
    true
}

/// Comparison-counted bottom-up merge sort, used as the robust fallback for
/// degenerate "bitonic" inputs.
fn merge_sort_counted<K: Ord>(data: Vec<K>, mut comparisons: u64) -> (Vec<K>, u64) {
    let mut runs: Vec<Vec<K>> = data.into_iter().map(|x| vec![x]).collect();
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            if let Some(b) = it.next() {
                let (m, c) = merge_runs(a, b);
                comparisons += c;
                next.push(m);
            } else {
                next.push(a);
            }
        }
        runs = next;
    }
    (runs.pop().unwrap_or_default(), comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::is_sorted;

    #[test]
    fn merge_basic() {
        let (m, c) = merge_runs(vec![1, 3, 5], vec![2, 4, 6]);
        assert_eq!(m, vec![1, 2, 3, 4, 5, 6]);
        assert!(c <= 5);
    }

    #[test]
    fn merge_empty_sides() {
        let (m, c) = merge_runs(Vec::<u32>::new(), vec![1, 2]);
        assert_eq!(m, vec![1, 2]);
        assert_eq!(c, 0);
        let (m, _) = merge_runs(vec![1, 2], Vec::new());
        assert_eq!(m, vec![1, 2]);
    }

    #[test]
    fn merge_is_stable_for_ties() {
        // ties prefer the left run (x <= y takes from `a` first)
        let (m, _) = merge_runs(vec![(1, 'a'), (2, 'a')], vec![(1, 'b'), (2, 'b')]);
        assert_eq!(m, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
    }

    #[test]
    fn merge_disjoint_ranges() {
        let (m, c) = merge_runs(vec![10, 11, 12], vec![1, 2, 3]);
        assert_eq!(m, vec![1, 2, 3, 10, 11, 12]);
        assert!(c <= 5);
    }

    #[test]
    fn merge_keep_low_truncates_with_few_comparisons() {
        let (lo, c) = merge_keep_low(vec![1, 4, 7, 10], vec![2, 3, 9, 11], 4);
        assert_eq!(lo, vec![1, 2, 3, 4]);
        assert!(c <= 4);
    }

    #[test]
    fn merge_keep_high_truncates_with_few_comparisons() {
        let (hi, c) = merge_keep_high(vec![1, 4, 7, 10], vec![2, 3, 9, 11], 4);
        assert_eq!(hi, vec![7, 9, 10, 11]);
        assert!(c <= 4);
    }

    #[test]
    fn merge_keep_halves_partition_the_union() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let k = rng.random_range(0..20usize);
            let mut a: Vec<u32> = (0..k).map(|_| rng.random_range(0..50)).collect();
            let mut b: Vec<u32> = (0..k).map(|_| rng.random_range(0..50)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let (lo, _) = merge_keep_low(a.clone(), b.clone(), k);
            let (hi, _) = merge_keep_high(a.clone(), b.clone(), k);
            let mut both: Vec<u32> = lo.iter().chain(hi.iter()).copied().collect();
            both.sort_unstable();
            let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
            expect.sort_unstable();
            assert_eq!(both, expect);
            assert!(is_sorted(&lo));
            assert!(is_sorted(&hi));
            if let (Some(l), Some(h)) = (lo.last(), hi.first()) {
                assert!(l <= h);
            }
        }
    }

    #[test]
    fn merge_keep_degenerate_sizes() {
        let (lo, _) = merge_keep_low(Vec::<u32>::new(), vec![], 0);
        assert!(lo.is_empty());
        let (lo, _) = merge_keep_low(vec![5], vec![3], 1);
        assert_eq!(lo, vec![3]);
        let (hi, _) = merge_keep_high(vec![5], vec![3], 1);
        assert_eq!(hi, vec![5]);
        let (hi, _) = merge_keep_high(vec![1, 2], vec![3, 4], 4);
        assert_eq!(hi, vec![1, 2, 3, 4]);
    }

    #[test]
    fn merge_keep_low_keeps_nothing_with_zero_comparisons() {
        // keep == 0 on non-empty inputs: nothing kept, nothing compared
        let (lo, c) = merge_keep_low(vec![1, 4, 7], vec![2, 3], 0);
        assert!(lo.is_empty());
        assert_eq!(c, 0);
        let (hi, c) = merge_keep_high(vec![1, 4, 7], vec![2, 3], 0);
        assert!(hi.is_empty());
        assert_eq!(c, 0);
    }

    #[test]
    fn merge_keep_low_full_keep_is_a_plain_merge() {
        // keep == a.len() + b.len(): the truncated merge degenerates to the
        // full merge, including the comparison count
        let a = vec![1, 4, 7, 10];
        let b = vec![2, 3, 9];
        let keep = a.len() + b.len();
        let (lo, c_keep) = merge_keep_low(a.clone(), b.clone(), keep);
        let (full, c_full) = merge_runs(a, b);
        assert_eq!(lo, full);
        assert_eq!(lo, vec![1, 2, 3, 4, 7, 9, 10]);
        assert_eq!(c_keep, c_full);
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_owning_forms() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = Vec::new();
        for _ in 0..50 {
            let ka = rng.random_range(0..16usize);
            let kb = rng.random_range(0..16usize);
            let mut a: Vec<u32> = (0..ka).map(|_| rng.random_range(0..40)).collect();
            let mut b: Vec<u32> = (0..kb).map(|_| rng.random_range(0..40)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let keep = rng.random_range(0..=ka + kb);
            for mode in 0..3 {
                let (mut a2, mut b2) = (a.clone(), b.clone());
                let (a_cap, b_cap) = (a2.capacity(), b2.capacity());
                let (expect, c_into) = match mode {
                    0 => (
                        merge_runs(a.clone(), b.clone()),
                        merge_runs_into(&mut a2, &mut b2, &mut out),
                    ),
                    1 => (
                        merge_keep_low(a.clone(), b.clone(), keep),
                        merge_keep_low_into(&mut a2, &mut b2, keep, &mut out),
                    ),
                    _ => (
                        merge_keep_high(a.clone(), b.clone(), keep),
                        merge_keep_high_into(&mut a2, &mut b2, keep, &mut out),
                    ),
                };
                assert_eq!(out, expect.0);
                assert_eq!(c_into, expect.1, "comparison counts must agree");
                // inputs drained but their allocations preserved
                assert!(a2.is_empty() && b2.is_empty());
                assert_eq!(a2.capacity(), a_cap);
                assert_eq!(b2.capacity(), b_cap);
            }
        }
    }

    #[test]
    fn bitonic_ascending_then_descending() {
        let (s, _) = sort_bitonic_run(vec![1, 4, 9, 8, 3, 0]);
        assert_eq!(s, vec![0, 1, 3, 4, 8, 9]);
    }

    #[test]
    fn bitonic_descending_then_ascending() {
        let (s, _) = sort_bitonic_run(vec![9, 5, 2, 3, 7, 11]);
        assert_eq!(s, vec![2, 3, 5, 7, 9, 11]);
    }

    #[test]
    fn bitonic_pure_monotone_inputs() {
        let (s, _) = sort_bitonic_run(vec![1, 2, 3, 4]);
        assert_eq!(s, vec![1, 2, 3, 4]);
        let (s, _) = sort_bitonic_run(vec![4, 3, 2, 1]);
        assert_eq!(s, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bitonic_tiny_inputs() {
        let (s, c) = sort_bitonic_run(Vec::<u32>::new());
        assert!(s.is_empty());
        assert_eq!(c, 0);
        let (s, _) = sort_bitonic_run(vec![7]);
        assert_eq!(s, vec![7]);
        let (s, _) = sort_bitonic_run(vec![9, 1]);
        assert_eq!(s, vec![1, 9]);
    }

    #[test]
    fn bitonic_with_duplicates_and_plateaus() {
        let (s, _) = sort_bitonic_run(vec![2, 2, 5, 5, 5, 3, 2, 2]);
        assert_eq!(s, vec![2, 2, 2, 2, 3, 5, 5, 5]);
    }

    #[test]
    fn all_rotations_of_a_sorted_sequence_are_handled() {
        // every rotation of a sorted sequence is cyclically bitonic
        let base: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6, 7];
        for r in 0..base.len() {
            let rotated: Vec<u32> = base[r..].iter().chain(&base[..r]).copied().collect();
            let (s, _) = sort_bitonic_run(rotated);
            assert_eq!(s, base, "rotation {r}");
        }
    }

    #[test]
    fn random_bitonic_runs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let up = rng.random_range(0..20);
            let down = rng.random_range(0..20);
            let mut v: Vec<i32> = (0..up).map(|_| rng.random_range(0..100)).collect();
            v.sort_unstable();
            let mut w: Vec<i32> = (0..down).map(|_| rng.random_range(0..100)).collect();
            w.sort_unstable_by(|a, b| b.cmp(a));
            v.extend(w);
            let mut expect = v.clone();
            expect.sort_unstable();
            let (s, _) = sort_bitonic_run(v);
            assert_eq!(s, expect);
            assert!(is_sorted(&s));
        }
    }
}
