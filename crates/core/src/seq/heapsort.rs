//! Heapsort, exactly as charged in the paper's step-3 analysis.
//!
//! The paper bounds local sorting by `[(k − 1)·log₂ k + 1]·t_c` comparisons
//! for `k` elements; this bottom-up heapsort stays within a small constant of
//! that bound and reports the comparisons it actually performed.

use super::Direction;

/// Sorts `data` in place in the requested direction and returns the number
/// of key comparisons performed.
pub fn heapsort<K: Ord>(data: &mut [K], dir: Direction) -> u64 {
    let mut comparisons = 0u64;
    let n = data.len();
    if n < 2 {
        return 0;
    }
    // Build a max-heap (ascending sort) by sifting down from the last parent.
    for start in (0..n / 2).rev() {
        sift_down(data, start, n, dir, &mut comparisons);
    }
    // Repeatedly move the root to the back and restore the heap.
    for end in (1..n).rev() {
        data.swap(0, end);
        sift_down(data, 0, end, dir, &mut comparisons);
    }
    comparisons
}

/// Restores the heap property for the subtree rooted at `start`, over
/// `data[..end]`. For [`Direction::Ascending`] this is a max-heap sift; for
/// [`Direction::Descending`] a min-heap sift.
fn sift_down<K: Ord>(
    data: &mut [K],
    mut start: usize,
    end: usize,
    dir: Direction,
    comparisons: &mut u64,
) {
    let dominates = |a: &K, b: &K, comparisons: &mut u64| -> bool {
        *comparisons += 1;
        match dir {
            Direction::Ascending => a > b,
            Direction::Descending => a < b,
        }
    };
    loop {
        let left = 2 * start + 1;
        if left >= end {
            return;
        }
        let right = left + 1;
        // Child select as index arithmetic (cmov-friendly): same comparison
        // sequence as the branching form — one compare iff `right` exists.
        let mut top = left;
        if right < end {
            top = left + dominates(&data[right], &data[left], comparisons) as usize;
        }
        if dominates(&data[top], &data[start], comparisons) {
            data.swap(start, top);
            start = top;
        } else {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{is_sorted, is_sorted_dir};

    #[test]
    fn sorts_ascending() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 7, 4, 6, 0];
        let c = heapsort(&mut v, Direction::Ascending);
        assert_eq!(v, (0..10).collect::<Vec<_>>());
        assert!(c > 0);
    }

    #[test]
    fn sorts_descending() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 7, 4, 6, 0];
        heapsort(&mut v, Direction::Descending);
        assert_eq!(v, (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        let mut v: Vec<u32> = vec![];
        assert_eq!(heapsort(&mut v, Direction::Ascending), 0);
        let mut v = vec![42];
        assert_eq!(heapsort(&mut v, Direction::Ascending), 0);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn handles_duplicates() {
        let mut v = vec![3, 1, 3, 1, 2, 2, 3];
        heapsort(&mut v, Direction::Ascending);
        assert_eq!(v, vec![1, 1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn already_sorted_inputs() {
        let mut v: Vec<u32> = (0..100).collect();
        heapsort(&mut v, Direction::Ascending);
        assert!(is_sorted(&v));
        let mut v: Vec<u32> = (0..100).rev().collect();
        heapsort(&mut v, Direction::Descending);
        assert!(is_sorted_dir(&v, Direction::Descending));
    }

    #[test]
    fn comparison_count_within_paper_bound_constant() {
        // Paper bound: (k-1)·⌈log k⌉ + 1; heapsort build+extract is ≤ about
        // 2k·log k + O(k). Assert we stay within 3× the paper bound for a
        // range of sizes (sanity on the counting, not a tight proof).
        for k in [2usize, 10, 64, 1000, 4096] {
            let mut v: Vec<u32> = (0..k as u32).rev().collect();
            let c = heapsort(&mut v, Direction::Ascending);
            let bound = ((k as f64 - 1.0) * (k as f64).log2().ceil() + 1.0) * 3.0;
            assert!(
                (c as f64) < bound,
                "k={k}: {c} comparisons vs 3×paper bound {bound}"
            );
        }
    }

    #[test]
    fn random_inputs_sort_correctly() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let len = rng.random_range(0..200);
            let mut v: Vec<i64> = (0..len).map(|_| rng.random_range(-1000..1000)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            heapsort(&mut v, Direction::Ascending);
            assert_eq!(v, expect);
        }
    }
}
