//! Sequential sorting kernels used inside each processor.
//!
//! The paper's step 3 sorts each processor's local elements with **heapsort**;
//! later steps merge sorted runs. Both are implemented from scratch here with
//! exact comparison counting so the simulation can charge `t_c` for the work
//! actually done.
//!
//! The merge kernels exist in two tiers: the scalar reference in [`merge`]
//! over any `K: Ord`, and the branchless/cache-blocked kernels in
//! [`branchless`] over [`Key`] types — same outputs, same comparison
//! counts, shaped for conditional moves instead of data-dependent branches.
//! The compare-split hot path dispatches through the `_auto_` forms.

mod branchless;
mod heapsort;
mod key;
mod merge;
mod quicksort;
mod scratch;

pub use branchless::{
    charged_merge_comparisons, merge_keep_high_branchless_into, merge_keep_low_branchless_into,
    merge_runs_auto, merge_runs_auto_into, merge_runs_blocked_into, merge_runs_branchless_into,
    BLOCK_BYTES, MERGE_CHUNK,
};
pub use heapsort::heapsort;
pub use key::{Key, KeyPair, KeyType};
pub use merge::{
    merge_keep_high, merge_keep_high_into, merge_keep_low, merge_keep_low_into, merge_runs,
    merge_runs_into, sort_bitonic_run,
};
pub use quicksort::{mergesort, quicksort};
pub use scratch::Scratch;

/// The local sorting algorithm used in step 3. The paper prescribes
/// [`LocalSort::Heapsort`]; the alternatives exist for the local-sort
/// ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum LocalSort {
    /// Heapsort, as in the paper (worst-case `O(k log k)`, no extra space).
    #[default]
    Heapsort,
    /// Median-of-three quicksort with insertion-sort cutoff.
    Quicksort,
    /// Stable bottom-up merge sort.
    Mergesort,
}

impl LocalSort {
    /// Sorts `data` in the given direction, returning the comparison count.
    pub fn sort<K: Ord>(self, data: &mut Vec<K>, dir: Direction) -> u64 {
        match self {
            LocalSort::Heapsort => heapsort(data, dir),
            LocalSort::Quicksort => quicksort(data, dir),
            LocalSort::Mergesort => mergesort(data, dir),
        }
    }
}

/// Sort direction. The paper directs each processor's run *ascending* when
/// its (reindexed) address is even and *descending* when odd; internally we
/// store runs ascending and use `Direction` for the distributed-order
/// bookkeeping at subcube granularity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Direction {
        match self {
            Direction::Ascending => Direction::Descending,
            Direction::Descending => Direction::Ascending,
        }
    }

    /// The paper's parity rule: ascending for even addresses, descending for
    /// odd.
    #[inline]
    pub fn from_parity(address: u32) -> Direction {
        if address & 1 == 0 {
            Direction::Ascending
        } else {
            Direction::Descending
        }
    }
}

/// Checks that `run` is sorted ascending.
pub fn is_sorted<K: Ord>(run: &[K]) -> bool {
    run.windows(2).all(|w| w[0] <= w[1])
}

/// Checks that `run` is sorted in the given direction.
pub fn is_sorted_dir<K: Ord>(run: &[K], dir: Direction) -> bool {
    match dir {
        Direction::Ascending => is_sorted(run),
        Direction::Descending => run.windows(2).all(|w| w[0] >= w[1]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip_and_parity() {
        assert_eq!(Direction::Ascending.flip(), Direction::Descending);
        assert_eq!(Direction::Descending.flip(), Direction::Ascending);
        assert_eq!(Direction::from_parity(0), Direction::Ascending);
        assert_eq!(Direction::from_parity(7), Direction::Descending);
        assert_eq!(Direction::from_parity(6), Direction::Ascending);
    }

    #[test]
    fn sortedness_checks() {
        assert!(is_sorted::<u32>(&[]));
        assert!(is_sorted(&[1]));
        assert!(is_sorted(&[1, 1, 2, 3]));
        assert!(!is_sorted(&[2, 1]));
        assert!(is_sorted_dir(&[3, 2, 2, 1], Direction::Descending));
        assert!(!is_sorted_dir(&[1, 2], Direction::Descending));
    }
}
