//! Branchless and cache-blocked merge kernels over [`Key`] types.
//!
//! These are drop-in replacements for the scalar reference kernels in
//! [`super::merge`]: same drain-into-caller-buffer contract, same outputs,
//! and — the invariant the cost model depends on — the **same comparison
//! counts**. The paper charges `t_c` per comparison of the abstract two-way
//! merge; every kernel here reports exactly the comparisons that merge
//! performs, regardless of how the inner loop is shaped:
//!
//! * The branchless kernels take one element per iteration while both runs
//!   are live, so the charged count is simply the number of such iterations
//!   (`i + j` at loop exit) — the identical decision sequence the scalar
//!   `x <= y` loop takes.
//! * The blocked kernel segments the merge with merge-path co-rank splits.
//!   Splitting changes where the "one run exhausted, bulk-copy the tail"
//!   shortcut fires inside each segment, so it computes the charge
//!   analytically via [`charged_merge_comparisons`] instead: a full two-way
//!   merge compares once per emitted element until one run exhausts, i.e.
//!   `a.len() + b.len() − tail` where `tail` is the suffix of the survivor
//!   that never meets a live counterpart. Co-rank binary searches are index
//!   bookkeeping (like the scalar kernels' iterator cursors), not key
//!   comparisons of the abstract merge, and are not charged.
//!
//! The inner loop is written for the autovectorizer/branch predictor: load
//! both candidates by value, `select` with a conditional move, advance one
//! index by the comparison bit — no data-dependent branches in the steady
//! state, unrolled in fixed-width chunks of [`MERGE_CHUNK`].

use super::key::Key;

/// Fixed unroll width of the steady-state inner loop. While both runs have
/// at least this many unmerged elements the loop body runs with no
/// data-dependent exits, which is what lets the backend turn the select
/// into conditional moves.
pub const MERGE_CHUNK: usize = 8;

/// Byte size above which [`merge_runs_auto_into`] switches to the
/// cache-blocked kernel: half a typical L2 (the merge touches two inputs
/// plus the output, so runs past this point stream from L3/DRAM and benefit
/// from merge-path segmentation that keeps each working set L2-resident).
pub const BLOCK_BYTES: usize = 512 * 1024;

/// One steady-state + drain branchless merge of two sorted slices, appended
/// to `out`. Returns the number of both-runs-live iterations — exactly the
/// comparisons the scalar reference charges for the same inputs.
#[inline]
fn merge_spans<K: Key>(a: &[K], b: &[K], out: &mut Vec<K>) -> u64 {
    let (alen, blen) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    // Steady state: both runs hold ≥ MERGE_CHUNK unmerged elements, so the
    // chunk body needs no per-element liveness checks.
    while alen - i >= MERGE_CHUNK && blen - j >= MERGE_CHUNK {
        for _ in 0..MERGE_CHUNK {
            let x = a[i];
            let y = b[j];
            let take_a = x <= y; // ties take from `a`, like the scalar kernel
            out.push(if take_a { x } else { y });
            i += take_a as usize;
            j += usize::from(!take_a);
        }
    }
    while i < alen && j < blen {
        let x = a[i];
        let y = b[j];
        let take_a = x <= y;
        out.push(if take_a { x } else { y });
        i += take_a as usize;
        j += usize::from(!take_a);
    }
    let comparisons = (i + j) as u64;
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    comparisons
}

/// The comparisons a full two-way merge of `a` and `b` performs, computed
/// analytically: one per emitted element until one run exhausts, so
/// `a.len() + b.len() − tail` where `tail` is the bulk-copied suffix of the
/// survivor — the elements strictly beyond the other run's maximum under
/// the merge's tie rule (ties take from `a`).
pub fn charged_merge_comparisons<K: Ord>(a: &[K], b: &[K]) -> u64 {
    let (alen, blen) = (a.len(), b.len());
    if alen == 0 || blen == 0 {
        return 0;
    }
    let a_last = &a[alen - 1];
    let b_last = &b[blen - 1];
    // If a's maximum emits before b's tail (a_last <= b_last wins its last
    // comparison), the copied tail is b's strict-upper part; symmetrically
    // otherwise. partition_point is bookkeeping, not a charged comparison.
    let tail = if a_last <= b_last {
        blen - b.partition_point(|y| y < a_last)
    } else {
        alen - a.partition_point(|x| x <= b_last)
    };
    (alen + blen - tail) as u64
}

/// The merge-path split of output position `p`: the unique `(ai, bi)` with
/// `ai + bi = p` such that `a[..ai] ++ b[..bi]` is exactly the first `p`
/// elements the merge emits (ties taken from `a`). Binary search —
/// uncharged index bookkeeping.
fn corank<K: Ord>(p: usize, a: &[K], b: &[K]) -> (usize, usize) {
    let (alen, blen) = (a.len(), b.len());
    let mut lo = p.saturating_sub(blen);
    let mut hi = p.min(alen);
    while lo < hi {
        let ai = lo + (hi - lo) / 2;
        let bi = p - ai;
        // a[ai] precedes b[bi-1] in the merge ⇔ a[ai] <= b[bi-1], in which
        // case a[ai] must also be inside the first p elements.
        if ai < alen && bi > 0 && a[ai] <= b[bi - 1] {
            lo = ai + 1;
        } else {
            hi = ai;
        }
    }
    (lo, p - lo)
}

/// Branchless [`super::merge_runs_into`]: merges ascending `a` and `b` into
/// `out` (cleared first), draining both inputs but keeping their
/// allocations. Identical output and comparison count to the scalar
/// reference.
pub fn merge_runs_branchless_into<K: Key>(a: &mut Vec<K>, b: &mut Vec<K>, out: &mut Vec<K>) -> u64 {
    out.clear();
    out.reserve(a.len() + b.len());
    let comparisons = merge_spans(a, b, out);
    a.clear();
    b.clear();
    comparisons
}

/// Cache-blocked [`super::merge_runs_into`] for runs past L2: walks the
/// merge path in [`BLOCK_BYTES`]-halves segments so each inner merge stays
/// cache-resident, with the branchless loop inside each segment. Identical
/// output and comparison count to the scalar reference.
pub fn merge_runs_blocked_into<K: Key>(a: &mut Vec<K>, b: &mut Vec<K>, out: &mut Vec<K>) -> u64 {
    out.clear();
    let (alen, blen) = (a.len(), b.len());
    out.reserve(alen + blen);
    let comparisons = charged_merge_comparisons(a, b);
    let total = alen + blen;
    let block = (BLOCK_BYTES / 2 / size_of::<K>().max(1)).max(MERGE_CHUNK);
    let (mut ai, mut bi) = (0usize, 0usize);
    let mut pos = 0usize;
    while pos < total {
        let next = (pos + block).min(total);
        let (na, nb) = corank(next, a, b);
        merge_spans(&a[ai..na], &b[bi..nb], out);
        (ai, bi) = (na, nb);
        pos = next;
    }
    a.clear();
    b.clear();
    comparisons
}

/// Size-dispatching full merge: branchless below [`BLOCK_BYTES`], blocked
/// above. This is what the compare-split hot path calls.
pub fn merge_runs_auto_into<K: Key>(a: &mut Vec<K>, b: &mut Vec<K>, out: &mut Vec<K>) -> u64 {
    if (a.len() + b.len()) * size_of::<K>() > BLOCK_BYTES {
        merge_runs_blocked_into(a, b, out)
    } else {
        merge_runs_branchless_into(a, b, out)
    }
}

/// Owning wrapper over [`merge_runs_auto_into`], mirroring
/// [`super::merge_runs`].
pub fn merge_runs_auto<K: Key>(mut a: Vec<K>, mut b: Vec<K>) -> (Vec<K>, u64) {
    let mut out = Vec::new();
    let comparisons = merge_runs_auto_into(&mut a, &mut b, &mut out);
    (out, comparisons)
}

/// Branchless [`super::merge_keep_low_into`]: keeps only the `keep`
/// smallest keys, ≤ `keep` comparisons, drains both inputs. Identical
/// output and comparison count to the scalar reference.
pub fn merge_keep_low_branchless_into<K: Key>(
    a: &mut Vec<K>,
    b: &mut Vec<K>,
    keep: usize,
    out: &mut Vec<K>,
) -> u64 {
    debug_assert!(keep <= a.len() + b.len());
    out.clear();
    out.reserve(keep);
    let (alen, blen) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while keep - out.len() >= MERGE_CHUNK && alen - i >= MERGE_CHUNK && blen - j >= MERGE_CHUNK {
        for _ in 0..MERGE_CHUNK {
            let x = a[i];
            let y = b[j];
            let take_a = x <= y;
            out.push(if take_a { x } else { y });
            i += take_a as usize;
            j += usize::from(!take_a);
        }
    }
    while out.len() < keep && i < alen && j < blen {
        let x = a[i];
        let y = b[j];
        let take_a = x <= y;
        out.push(if take_a { x } else { y });
        i += take_a as usize;
        j += usize::from(!take_a);
    }
    // Comparisons happen only while both runs are live, like the scalar
    // kernel; the top-up below is an uncompared bulk copy.
    let comparisons = (i + j) as u64;
    let remaining = keep - out.len();
    if remaining > 0 {
        if i < alen {
            out.extend_from_slice(&a[i..i + remaining]);
        } else {
            out.extend_from_slice(&b[j..j + remaining]);
        }
    }
    a.clear();
    b.clear();
    comparisons
}

/// Branchless [`super::merge_keep_high_into`]: keeps only the `keep`
/// largest keys by merging from the back, ≤ `keep` comparisons, drains both
/// inputs. Identical output and comparison count to the scalar reference.
pub fn merge_keep_high_branchless_into<K: Key>(
    a: &mut Vec<K>,
    b: &mut Vec<K>,
    keep: usize,
    out: &mut Vec<K>,
) -> u64 {
    debug_assert!(keep <= a.len() + b.len());
    out.clear();
    out.reserve(keep);
    let (alen, blen) = (a.len(), b.len());
    let (mut i, mut j) = (alen, blen); // `i`/`j` = number still unmerged
    while keep - out.len() >= MERGE_CHUNK && i >= MERGE_CHUNK && j >= MERGE_CHUNK {
        for _ in 0..MERGE_CHUNK {
            let x = a[i - 1];
            let y = b[j - 1];
            let take_a = x > y; // strict: ties yield to `b`, like the scalar
            out.push(if take_a { x } else { y });
            i -= take_a as usize;
            j -= usize::from(!take_a);
        }
    }
    while out.len() < keep && i > 0 && j > 0 {
        let x = a[i - 1];
        let y = b[j - 1];
        let take_a = x > y;
        out.push(if take_a { x } else { y });
        i -= take_a as usize;
        j -= usize::from(!take_a);
    }
    let comparisons = ((alen - i) + (blen - j)) as u64;
    let remaining = keep - out.len();
    if remaining > 0 {
        // One run exhausted: take the survivor's top `remaining`, still
        // descending to keep the final reverse correct.
        if i > 0 {
            out.extend(a[i - remaining..i].iter().rev().copied());
        } else {
            out.extend(b[j - remaining..j].iter().rev().copied());
        }
    }
    out.reverse();
    a.clear();
    b.clear();
    comparisons
}

#[cfg(test)]
mod tests {
    use super::super::merge::{merge_keep_high_into, merge_keep_low_into, merge_runs_into};
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sorted(rng: &mut StdRng, len: usize, span: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..len).map(|_| rng.random_range(0..span.max(1))).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn branchless_full_merge_matches_scalar_output_and_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut out_s, mut out_b) = (Vec::new(), Vec::new());
        for _ in 0..200 {
            let la = rng.random_range(0..40);
            let lb = rng.random_range(0..40);
            let a = sorted(&mut rng, la, 30);
            let b = sorted(&mut rng, lb, 30);
            let (mut a1, mut b1) = (a.clone(), b.clone());
            let (mut a2, mut b2) = (a, b);
            let cs = merge_runs_into(&mut a1, &mut b1, &mut out_s);
            let cb = merge_runs_branchless_into(&mut a2, &mut b2, &mut out_b);
            assert_eq!(out_b, out_s);
            assert_eq!(cb, cs);
            assert!(a2.is_empty() && b2.is_empty());
        }
    }

    #[test]
    fn charged_comparisons_formula_matches_the_scalar_kernel() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = Vec::new();
        for _ in 0..300 {
            let la = rng.random_range(0..30);
            let lb = rng.random_range(0..30);
            let a = sorted(&mut rng, la, 10); // many ties
            let b = sorted(&mut rng, lb, 10);
            let want = merge_runs_into(&mut a.clone(), &mut b.clone(), &mut out);
            assert_eq!(charged_merge_comparisons(&a, &b), want, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn corank_prefixes_tile_the_merge() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        for _ in 0..100 {
            let la = rng.random_range(0..20);
            let lb = rng.random_range(0..20);
            let a = sorted(&mut rng, la, 8);
            let b = sorted(&mut rng, lb, 8);
            merge_runs_into(&mut a.clone(), &mut b.clone(), &mut out);
            for p in 0..=a.len() + b.len() {
                let (ai, bi) = corank(p, &a, &b);
                assert_eq!(ai + bi, p);
                let mut prefix = Vec::new();
                merge_spans(&a[..ai], &b[..bi], &mut prefix);
                assert_eq!(prefix, out[..p], "p={p} a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn blocked_merge_matches_scalar_even_with_tiny_blocks() {
        // BLOCK_BYTES is fixed, so exercise segmentation with large-ish runs
        // of a small key type instead: u8 elements make the block small in
        // element terms... still huge. Instead drive corank+merge_spans via
        // merge_runs_blocked_into on runs big enough to segment for u64 by
        // construction below (covered in the integration suite); here check
        // the degenerate and disjoint shapes.
        let mut out = Vec::new();
        for (a, b) in [
            (vec![], vec![]),
            (vec![1u64, 2, 3], vec![]),
            (vec![], vec![4u64, 5]),
            (vec![1u64, 2], vec![10, 11]),
            (vec![10u64, 11], vec![1, 2]),
            (vec![5u64, 5, 5], vec![5, 5]),
        ] {
            let want_c = merge_runs_into(&mut a.clone(), &mut b.clone(), &mut out);
            let want = out.clone();
            let (mut a2, mut b2) = (a, b);
            let mut got = Vec::new();
            let got_c = merge_runs_blocked_into(&mut a2, &mut b2, &mut got);
            assert_eq!(got, want);
            assert_eq!(got_c, want_c);
        }
    }

    #[test]
    fn branchless_keeps_match_scalar_outputs_and_counts() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mut out_s, mut out_b) = (Vec::new(), Vec::new());
        for _ in 0..200 {
            let la = rng.random_range(0..30);
            let lb = rng.random_range(0..30);
            let a = sorted(&mut rng, la, 20);
            let b = sorted(&mut rng, lb, 20);
            let keep = rng.random_range(0..=a.len() + b.len());
            let cs = merge_keep_low_into(&mut a.clone(), &mut b.clone(), keep, &mut out_s);
            let cb =
                merge_keep_low_branchless_into(&mut a.clone(), &mut b.clone(), keep, &mut out_b);
            assert_eq!(out_b, out_s, "keep_low keep={keep} a={a:?} b={b:?}");
            assert_eq!(cb, cs);
            let cs = merge_keep_high_into(&mut a.clone(), &mut b.clone(), keep, &mut out_s);
            let cb =
                merge_keep_high_branchless_into(&mut a.clone(), &mut b.clone(), keep, &mut out_b);
            assert_eq!(out_b, out_s, "keep_high keep={keep} a={a:?} b={b:?}");
            assert_eq!(cb, cs);
        }
    }

    #[test]
    fn auto_dispatch_picks_blocked_past_the_threshold() {
        // Below threshold both paths are the same kernel; at/above it the
        // dispatcher must still produce scalar-identical results.
        let n = BLOCK_BYTES / size_of::<u64>(); // 2n elements total > threshold
        let a: Vec<u64> = (0..n as u64).map(|x| x * 2).collect();
        let b: Vec<u64> = (0..n as u64).map(|x| x * 2 + 1).collect();
        let mut out = Vec::new();
        let want_c = merge_runs_into(&mut a.clone(), &mut b.clone(), &mut out);
        let (got, got_c) = merge_runs_auto(a, b);
        assert_eq!(got, out);
        assert_eq!(got_c, want_c);
    }
}
