//! Vendored stand-in for the `criterion` crate (the build environment has no
//! network access to crates.io). It implements a small but functional
//! wall-clock harness behind the subset of the criterion 0.7 API the
//! workspace's benches use: `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `Bencher::{iter, iter_batched}`, and the
//! `criterion_group!` / `criterion_main!` macros. One extension the real
//! criterion lacks: [`Bencher::iter_spanned`] lets the routine report
//! labeled sub-span durations per iteration (e.g. per-phase wall time),
//! and the report breaks the wall clock down per label.
//!
//! Each benchmark runs one untimed warm-up iteration, then `sample_size`
//! timed samples; min / median / mean are printed per benchmark. There is no
//! statistical outlier analysis — numbers are indicative, not rigorous.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The distinction matters for the real criterion's memory strategy only;
/// here every iteration gets a fresh input either way.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Inputs are cheap; criterion would batch many per allocation.
    SmallInput,
    /// Inputs are large; criterion would allocate one at a time.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Labeled sub-durations one [`Bencher::iter_spanned`] iteration reports —
/// e.g. per-phase wall time carved out of a single run.
#[derive(Default)]
pub struct SpanRecorder {
    spans: Vec<(String, Duration)>,
}

impl SpanRecorder {
    /// Charges `duration` to `label` within the current sample.
    pub fn record(&mut self, label: impl Into<String>, duration: Duration) {
        let label = label.into();
        match self.spans.iter_mut().find(|(l, _)| *l == label) {
            Some((_, d)) => *d += duration,
            None => self.spans.push((label, duration)),
        }
    }
}

/// Per-benchmark driver handed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    span_samples: Vec<Vec<(String, Duration)>>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over warm-up + `sample_size` iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` like [`Self::iter`], additionally collecting the
    /// labeled sub-spans each iteration reports through its recorder; the
    /// benchmark report then carries a per-label median breakdown of the
    /// wall clock, not just the total.
    pub fn iter_spanned<O, F: FnMut(&mut SpanRecorder) -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine(&mut SpanRecorder::default())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let mut recorder = SpanRecorder::default();
            let start = Instant::now();
            std::hint::black_box(routine(&mut recorder));
            self.samples.push(start.elapsed());
            self.span_samples.push(recorder.spans);
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        None => String::new(),
    };
    println!("{name:<50} min {min:>10.3?}  median {median:>10.3?}  mean {mean:>10.3?}{rate}");
}

/// Prints the per-label median breakdown collected by
/// [`Bencher::iter_spanned`], one indented line per label in
/// first-occurrence order, with each label's share of the summed medians.
fn report_spans(samples: &[Vec<(String, Duration)>]) {
    if samples.is_empty() {
        return;
    }
    let mut labels: Vec<&str> = Vec::new();
    for sample in samples {
        for (label, _) in sample {
            if !labels.iter().any(|l| l == label) {
                labels.push(label);
            }
        }
    }
    let medians: Vec<(&str, Duration)> = labels
        .iter()
        .map(|&label| {
            let mut per: Vec<Duration> = samples
                .iter()
                .map(|sample| {
                    sample
                        .iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, d)| *d)
                        .unwrap_or_default()
                })
                .collect();
            per.sort_unstable();
            (label, per[per.len() / 2])
        })
        .collect();
    let total: Duration = medians.iter().map(|(_, d)| *d).sum();
    for (label, median) in medians {
        let share = if total.is_zero() {
            0.0
        } else {
            median.as_secs_f64() / total.as_secs_f64() * 100.0
        };
        println!("    {label:<46} median {median:>10.3?}  {share:>5.1}%");
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            span_samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut bencher.samples, self.throughput);
        report_spans(&bencher.span_samples);
        self
    }

    /// Ends the group (printing happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            span_samples: Vec::new(),
            sample_size,
        };
        f(&mut bencher);
        report(&id.to_string(), &mut bencher.samples, None);
        report_spans(&bencher.span_samples);
        self
    }
}

/// Declares a function running the given benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 6, "warm-up + 5 samples");
    }

    #[test]
    fn iter_spanned_collects_spans_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut runs = 0usize;
        group.bench_function("spanned", |b| {
            b.iter_spanned(|rec| {
                runs += 1;
                rec.record("setup", Duration::from_micros(2));
                rec.record("work", Duration::from_micros(5));
                rec.record("work", Duration::from_micros(5)); // accumulates
            })
        });
        group.finish();
        assert_eq!(runs, 5, "warm-up + 4 samples");
    }

    #[test]
    fn span_recorder_accumulates_per_label() {
        let mut rec = SpanRecorder::default();
        rec.record("a", Duration::from_micros(3));
        rec.record("b", Duration::from_micros(1));
        rec.record("a", Duration::from_micros(4));
        assert_eq!(
            rec.spans,
            vec![
                ("a".to_string(), Duration::from_micros(7)),
                ("b".to_string(), Duration::from_micros(1)),
            ]
        );
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(4));
        let mut built = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    built += 1;
                    vec![built; 4]
                },
                |v| v.iter().sum::<usize>(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(built, 4, "warm-up + 3 samples each get a fresh input");
    }
}
