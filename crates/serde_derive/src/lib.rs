//! No-op `Serialize` / `Deserialize` derives for the vendored `serde`
//! stand-in. The workspace only *tags* types as serializable (the derive
//! appears in `#[derive(...)]` lists); nothing serializes through serde at
//! runtime — JSON reports are emitted by hand — so the derives expand to
//! nothing. `attributes(serde)` is declared so `#[serde(...)]` field/type
//! attributes remain legal if a type ever adds them.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
