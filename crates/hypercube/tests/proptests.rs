//! Property-based tests of the substrate's algebraic invariants.

use hypercube::address::{complement_dims, extract_bits, gray, gray_inverse, scatter_bits, NodeId};
use hypercube::fault::{FaultModel, FaultSet, Link};
use hypercube::routing::{ecube_route, hop_count, route};
use hypercube::subcube::Subcube;
use hypercube::topology::Hypercube;
use proptest::prelude::*;

fn dim_and_node() -> impl Strategy<Value = (usize, u32)> {
    (1usize..=8).prop_flat_map(|n| (Just(n), 0u32..(1u32 << n)))
}

proptest! {
    #[test]
    fn xor_is_an_automorphism((n, mask) in dim_and_node(), a in any::<u32>(), d in 0usize..8) {
        prop_assume!(d < n);
        let a = NodeId::new(a % (1 << n));
        let b = a.neighbor(d);
        prop_assert_eq!(a.xor(mask).hamming(b.xor(mask)), 1);
    }

    #[test]
    fn extract_scatter_roundtrip((n, v) in dim_and_node(), mask in any::<u32>()) {
        let dims: Vec<usize> = (0..n).filter(|&d| mask >> d & 1 == 1).collect();
        let rest = complement_dims(n, &dims);
        let hi = extract_bits(v, &dims);
        let lo = extract_bits(v, &rest);
        prop_assert_eq!(scatter_bits(hi, &dims) | scatter_bits(lo, &rest), v);
        // and the parts are disjoint
        prop_assert_eq!(scatter_bits(hi, &dims) & scatter_bits(lo, &rest), 0);
    }

    #[test]
    fn gray_code_bijective_and_unit_step(i in 0u32..65535) {
        prop_assert_eq!(gray_inverse(gray(i)), i);
        prop_assert_eq!((gray(i) ^ gray(i + 1)).count_ones(), 1);
    }

    #[test]
    fn subcube_split_partitions((n, seed) in dim_and_node(), d in 0usize..8) {
        prop_assume!(d < n);
        let q = Subcube::whole(n);
        let (lo, hi) = q.split(d);
        let node = NodeId::new(seed);
        prop_assert!(lo.contains(node) ^ hi.contains(node));
        prop_assert_eq!(lo.len() + hi.len(), q.len());
        prop_assert!(lo.is_disjoint(&hi));
        prop_assert!(q.contains_subcube(&lo) && q.contains_subcube(&hi));
    }

    #[test]
    fn subcube_local_global_roundtrip((n, v) in dim_and_node(), mask in any::<u32>(), pat in any::<u32>()) {
        let space = (1u32 << n) - 1;
        let mask = mask & space;
        let pat = pat & mask;
        let sc = Subcube::new(n, mask, pat);
        let local = extract_bits(v & space, &sc.free_dims());
        let g = sc.global_address(local);
        prop_assert!(sc.contains(g));
        prop_assert_eq!(sc.local_address(g), local);
    }

    #[test]
    fn ecube_route_valid_and_minimal((n, a) in dim_and_node(), b in any::<u32>()) {
        let cube = Hypercube::new(n);
        let a = NodeId::new(a);
        let b = NodeId::new(b % (1 << n));
        let r = ecube_route(a, b);
        prop_assert!(r.is_valid(&cube));
        prop_assert_eq!(r.hops(), a.hamming(b));
        prop_assert_eq!(r.source(), a);
        prop_assert_eq!(r.destination(), b);
    }

    #[test]
    fn total_routes_avoid_faults_and_stay_short(
        (n, a) in (3usize..=6).prop_flat_map(|n| (Just(n), 0u32..(1u32 << n))),
        b in any::<u32>(),
        fault_seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let cube = Hypercube::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(fault_seed);
        let faults = FaultSet::random(cube, n - 1, &mut rng).with_model(FaultModel::Total);
        let a = NodeId::new(a);
        let b = NodeId::new(b % (1 << n));
        prop_assume!(faults.is_normal(a) && faults.is_normal(b));
        let r = route(&faults, a, b).expect("connected under r ≤ n−1");
        prop_assert!(r.is_valid(&cube));
        prop_assert!(r.path().iter().all(|p| faults.is_normal(*p)));
        prop_assert!(r.hops() >= a.hamming(b));
        prop_assert_eq!(r.hops() % 2, a.hamming(b) % 2, "bipartite parity");
        // detours are bounded: BFS is shortest, so ≤ diameter + slack
        prop_assert!(r.hops() <= (2 * n) as u32);
    }

    #[test]
    fn link_fault_routes_avoid_broken_links(
        (n, a) in (2usize..=5).prop_flat_map(|n| (Just(n), 0u32..(1u32 << n))),
        b in any::<u32>(),
        l1 in any::<u32>(),
        d1 in 0usize..5,
    ) {
        prop_assume!(d1 < n);
        let cube = Hypercube::new(n);
        let link = Link::new(NodeId::new(l1 % (1 << n)), d1);
        let faults = FaultSet::none(cube).with_faulty_links([link]);
        let a = NodeId::new(a);
        let b = NodeId::new(b % (1 << n));
        if let Some(r) = route(&faults, a, b) {
            prop_assert!(r.is_valid(&cube));
            prop_assert!(r.path().windows(2).all(|w| !faults.is_link_faulty(w[0], w[1])));
        } else {
            // a single broken link can never disconnect Q_n for n ≥ 2
            prop_assert!(false, "single link fault disconnected the cube");
        }
    }

    #[test]
    fn collectives_roundtrip_arbitrary_participant_sets(
        n in 2usize..=4,
        live_mask in 1u32..,
        root_pick in any::<u32>(),
        k in 1usize..4,
    ) {
        use hypercube::collectives::{gather, scatter, Participants};
        use hypercube::cost::CostModel;
        use hypercube::sim::{Comm, Engine, Tag};
        let cube = Hypercube::new(n);
        let live_mask = live_mask & ((1u32 << cube.len()) - 1);
        prop_assume!(live_mask != 0);
        let live: Vec<NodeId> = (0..cube.len() as u32)
            .filter(|i| live_mask >> i & 1 == 1)
            .map(NodeId::new)
            .collect();
        let root = live[root_pick as usize % live.len()];
        let parts = Participants::new(cube.len(), root, &live);
        let engine = Engine::fault_free(cube, CostModel::paper_form());
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; cube.len()];
        for p in &live {
            inputs[p.index()] = Some(vec![]);
        }
        let parts_ref = &parts;
        let out = engine.run(inputs, move |ctx, _| {
            let rank = parts_ref.rank(ctx.me()).unwrap();
            let pieces = (rank == 0).then(|| {
                (0..parts_ref.len())
                    .map(|r| (0..k).map(|j| (r * 10 + j) as u32).collect())
                    .collect::<Vec<Vec<u32>>>()
            });
            let mine = scatter(ctx, parts_ref, Tag::new(1), pieces, k);
            prop_assert_eq!(mine.len(), k);
            prop_assert_eq!(mine[0], (rank * 10) as u32);
            let back = gather(ctx, parts_ref, Tag::new(2), mine, k);
            if rank == 0 {
                let pieces = back.unwrap();
                for (r, p) in pieces.iter().enumerate() {
                    prop_assert_eq!(p[0], (r * 10) as u32);
                }
            } else {
                prop_assert!(back.is_none());
            }
            Ok(())
        });
        for (_, r) in out.into_results() {
            r?;
        }
    }

    #[test]
    fn hop_count_symmetric_under_total_faults(
        fault_seed in any::<u64>(),
        a in 0u32..32,
        b in 0u32..32,
    ) {
        use rand::SeedableRng;
        let cube = Hypercube::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(fault_seed);
        let faults = FaultSet::random(cube, 4, &mut rng).with_model(FaultModel::Total);
        let a = NodeId::new(a);
        let b = NodeId::new(b);
        prop_assume!(faults.is_normal(a) && faults.is_normal(b));
        prop_assert_eq!(hop_count(&faults, a, b), hop_count(&faults, b, a));
    }
}
