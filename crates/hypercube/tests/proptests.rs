//! Randomized property tests of the substrate's algebraic invariants.
//!
//! Each property is exercised over a deterministic seeded sample of the
//! input space (a lightweight stand-in for a property-testing framework,
//! which the offline build environment cannot provide); failures print the
//! offending case, which is reproducible from the fixed seed.

use hypercube::address::{complement_dims, extract_bits, gray, gray_inverse, scatter_bits, NodeId};
use hypercube::fault::{FaultModel, FaultSet, Link};
use hypercube::routing::{ecube_route, hop_count, route};
use hypercube::subcube::Subcube;
use hypercube::topology::Hypercube;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

/// A random `(dim, node)` pair with `1 ≤ dim ≤ max_n`.
fn dim_and_node(rng: &mut StdRng, max_n: usize) -> (usize, u32) {
    let n = rng.random_range(1..=max_n);
    (n, rng.random_range(0u32..(1u32 << n)))
}

#[test]
fn xor_is_an_automorphism() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for _ in 0..CASES {
        let (n, mask) = dim_and_node(&mut rng, 8);
        let a = NodeId::new(rng.random::<u32>() % (1 << n));
        let d = rng.random_range(0..n);
        let b = a.neighbor(d);
        assert_eq!(a.xor(mask).hamming(b.xor(mask)), 1);
    }
}

#[test]
fn extract_scatter_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    for _ in 0..CASES {
        let (n, v) = dim_and_node(&mut rng, 8);
        let mask = rng.random::<u32>();
        let dims: Vec<usize> = (0..n).filter(|&d| mask >> d & 1 == 1).collect();
        let rest = complement_dims(n, &dims);
        let hi = extract_bits(v, &dims);
        let lo = extract_bits(v, &rest);
        assert_eq!(scatter_bits(hi, &dims) | scatter_bits(lo, &rest), v);
        // and the parts are disjoint
        assert_eq!(scatter_bits(hi, &dims) & scatter_bits(lo, &rest), 0);
    }
}

#[test]
fn gray_code_bijective_and_unit_step() {
    for i in 0u32..65535 {
        assert_eq!(gray_inverse(gray(i)), i);
        assert_eq!((gray(i) ^ gray(i + 1)).count_ones(), 1);
    }
}

#[test]
fn subcube_split_partitions() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    for _ in 0..CASES {
        let (n, seed) = dim_and_node(&mut rng, 8);
        let d = rng.random_range(0..n);
        let q = Subcube::whole(n);
        let (lo, hi) = q.split(d);
        let node = NodeId::new(seed);
        assert!(lo.contains(node) ^ hi.contains(node));
        assert_eq!(lo.len() + hi.len(), q.len());
        assert!(lo.is_disjoint(&hi));
        assert!(q.contains_subcube(&lo) && q.contains_subcube(&hi));
    }
}

#[test]
fn subcube_local_global_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0004);
    for _ in 0..CASES {
        let (n, v) = dim_and_node(&mut rng, 8);
        let space = (1u32 << n) - 1;
        let mask = rng.random::<u32>() & space;
        let pat = rng.random::<u32>() & mask;
        let sc = Subcube::new(n, mask, pat);
        let local = extract_bits(v & space, &sc.free_dims());
        let g = sc.global_address(local);
        assert!(sc.contains(g));
        assert_eq!(sc.local_address(g), local);
    }
}

#[test]
fn ecube_route_valid_and_minimal() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0005);
    for _ in 0..CASES {
        let (n, a) = dim_and_node(&mut rng, 8);
        let cube = Hypercube::new(n);
        let a = NodeId::new(a);
        let b = NodeId::new(rng.random::<u32>() % (1 << n));
        let r = ecube_route(a, b);
        assert!(r.is_valid(&cube));
        assert_eq!(r.hops(), a.hamming(b));
        assert_eq!(r.source(), a);
        assert_eq!(r.destination(), b);
    }
}

#[test]
fn total_routes_avoid_faults_and_stay_short() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0006);
    let mut checked = 0;
    while checked < CASES {
        let n = rng.random_range(3usize..=6);
        let cube = Hypercube::new(n);
        let faults = FaultSet::random(cube, n - 1, &mut rng).with_model(FaultModel::Total);
        let a = NodeId::new(rng.random_range(0u32..(1u32 << n)));
        let b = NodeId::new(rng.random_range(0u32..(1u32 << n)));
        if !(faults.is_normal(a) && faults.is_normal(b)) {
            continue;
        }
        checked += 1;
        let r = route(&faults, a, b).expect("connected under r ≤ n−1");
        assert!(r.is_valid(&cube));
        assert!(r.path().iter().all(|p| faults.is_normal(*p)));
        assert!(r.hops() >= a.hamming(b));
        assert_eq!(r.hops() % 2, a.hamming(b) % 2, "bipartite parity");
        // detours are bounded: BFS is shortest, so ≤ diameter + slack
        assert!(r.hops() <= (2 * n) as u32);
    }
}

#[test]
fn link_fault_routes_avoid_broken_links() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0007);
    for _ in 0..CASES {
        let n = rng.random_range(2usize..=5);
        let cube = Hypercube::new(n);
        let d1 = rng.random_range(0..n);
        let link = Link::new(NodeId::new(rng.random::<u32>() % (1 << n)), d1);
        let faults = FaultSet::none(cube).with_faulty_links([link]);
        let a = NodeId::new(rng.random_range(0u32..(1u32 << n)));
        let b = NodeId::new(rng.random_range(0u32..(1u32 << n)));
        match route(&faults, a, b) {
            Some(r) => {
                assert!(r.is_valid(&cube));
                assert!(r
                    .path()
                    .windows(2)
                    .all(|w| !faults.is_link_faulty(w[0], w[1])));
            }
            // a single broken link can never disconnect Q_n for n ≥ 2
            None => panic!("single link fault disconnected the cube"),
        }
    }
}

#[test]
fn collectives_roundtrip_arbitrary_participant_sets() {
    use hypercube::collectives::{gather, scatter, Participants};
    use hypercube::cost::CostModel;
    use hypercube::sim::{Comm, Engine, EngineKind, Tag};
    let mut rng = StdRng::seed_from_u64(0x5eed_0008);
    for case in 0..64 {
        let n = rng.random_range(2usize..=4);
        let cube = Hypercube::new(n);
        let live_mask = rng.random_range(1u32..(1u32 << cube.len()));
        let k = rng.random_range(1usize..4);
        let live: Vec<NodeId> = (0..cube.len() as u32)
            .filter(|i| live_mask >> i & 1 == 1)
            .map(NodeId::new)
            .collect();
        let root = live[rng.random::<u32>() as usize % live.len()];
        let parts = Participants::new(cube.len(), root, &live);
        // alternate executors so the property covers both
        let kind = if case % 2 == 0 {
            EngineKind::Seq
        } else {
            EngineKind::Threaded
        };
        let engine = Engine::fault_free(cube, CostModel::paper_form()).with_engine(kind);
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; cube.len()];
        for p in &live {
            inputs[p.index()] = Some(vec![]);
        }
        let parts_ref = &parts;
        let out = engine.run(inputs, async move |ctx, _| {
            let rank = parts_ref.rank(ctx.me()).unwrap();
            let pieces = (rank == 0).then(|| {
                (0..parts_ref.len())
                    .map(|r| (0..k).map(|j| (r * 10 + j) as u32).collect())
                    .collect::<Vec<Vec<u32>>>()
            });
            let mine = scatter(ctx, parts_ref, Tag::new(1), pieces, k).await;
            assert_eq!(mine.len(), k);
            assert_eq!(mine[0], (rank * 10) as u32);
            let back = gather(ctx, parts_ref, Tag::new(2), mine, k).await;
            if rank == 0 {
                let pieces = back.unwrap();
                for (r, p) in pieces.iter().enumerate() {
                    assert_eq!(p[0], (r * 10) as u32);
                }
            } else {
                assert!(back.is_none());
            }
        });
        assert_eq!(out.into_results().len(), live.len());
    }
}

#[test]
fn hop_count_symmetric_under_total_faults() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0009);
    let mut checked = 0;
    while checked < CASES {
        let cube = Hypercube::new(5);
        let faults = FaultSet::random(cube, 4, &mut rng).with_model(FaultModel::Total);
        let a = NodeId::new(rng.random_range(0u32..32));
        let b = NodeId::new(rng.random_range(0u32..32));
        if !(faults.is_normal(a) && faults.is_normal(b)) {
            continue;
        }
        checked += 1;
        assert_eq!(hop_count(&faults, a, b), hop_count(&faults, b, a));
    }
}
