//! Asserts the frontier engines' message path is allocation-free once
//! warm when tracing is off — the property the zero-alloc hot path (and
//! the preallocated observability buffers riding on it) is built around.
//!
//! The counting `#[global_allocator]` sees every allocation in the
//! process; the node program snapshots the counter after a few warm-up
//! exchanges (which size the inboxes, outboxes, metric histograms and
//! span buffers) and asserts the next 64 exchanges allocate nothing:
//! sends are pointer handoffs into already-sized inboxes, receives reuse
//! parked wait entries, and metrics/span recording only touches
//! preallocated storage.
//!
//! The same property is pinned for the parallel engine, whose round
//! handshake (work-stealing deques + a sense-reversing barrier, not
//! channels) was chosen precisely so concurrency adds no per-round
//! allocations — the counter is process-wide, so any allocation on any
//! worker or on the coordinator inside the measurement window fails the
//! test (rounds are barrier-aligned across nodes, so every node's window
//! covers the same rounds). The run-wide [`BufferPool`] rides the same
//! window: slab take/put cycles on every node stay allocation-free once
//! warm — and because the pool is an `Arc`-backed store that outlives any
//! single engine run, a *second* run on the same pool starts warm: its
//! very first slab cycle reuses run 1's allocations and must allocate
//! nothing.
//!
//! The scheduler profiler ([`hypercube::obs::sched`]) is pinned to the
//! same standard: its per-worker event rings are preallocated before any
//! node program runs, so attaching it must add zero allocations to the
//! warm message path.

use hypercube::cost::CostModel;
use hypercube::fault::FaultSet;
use hypercube::sim::{BufferPool, Comm, Engine, EngineKind, Tag};
use hypercube::topology::Hypercube;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-wide, so the measuring tests must not overlap —
/// the harness runs `#[test]`s on concurrent threads by default.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn seq_engine_message_path_is_allocation_free_when_warm() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Q2 ping-pong across dimension 0, payload ownership bouncing back and
    // forth — the compare-split communication skeleton.
    let cube = Hypercube::new(2);
    let engine =
        Engine::new(FaultSet::none(cube), CostModel::default()).with_engine(EngineKind::Seq);
    let inputs: Vec<Option<Vec<u64>>> = (0..cube.len())
        .map(|i| Some((0..256).map(|x| (i as u64) << 32 | x).collect()))
        .collect();
    let out = engine.run(inputs, async |ctx, data| {
        let partner = hypercube::address::NodeId::new(ctx.me().raw() ^ 1);
        let tag = Tag::phase(9, 0, 0);
        let mut buf = data;
        // Warm-up: sizes the inbox, the outbox and the metric histograms
        // (and exercises a span within the span log's initial capacity).
        ctx.span_enter(9);
        for _ in 0..4 {
            buf = ctx.exchange(partner, tag, buf).await;
        }
        ctx.span_exit();
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..64 {
            buf = ctx.exchange(partner, tag, buf).await;
            ctx.charge_comparisons(buf.len());
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        (buf.len(), after - before)
    });
    for (i, outcome) in out.outcomes().iter().enumerate() {
        let Some(outcome) = outcome else { continue };
        let (len, allocs) = outcome.result;
        assert_eq!(len, 256, "payload must survive the ping-pong");
        assert_eq!(
            allocs, 0,
            "warm seq message path allocated {allocs} times on node {i}"
        );
    }
}

#[test]
fn par_engine_message_path_and_buffer_pool_are_allocation_free_when_warm() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Same Q2 ping-pong on the worker-pool engine, two nodes per worker,
    // with a shared BufferPool slab cycled inside the hot loop. The window
    // spans the full round protocol: worker wake-up, polling, the barrier
    // commit and the next staging all happen between the two counter reads.
    let cube = Hypercube::new(2);
    let engine = Engine::new(FaultSet::none(cube), CostModel::default())
        .with_engine(EngineKind::Par)
        .with_workers(2);
    let pool: BufferPool<u64> = BufferPool::new();
    let pool = &pool;
    let inputs: Vec<Option<Vec<u64>>> = (0..cube.len())
        .map(|i| Some((0..256).map(|x| (i as u64) << 32 | x).collect()))
        .collect();
    let out = engine.run(inputs, async |ctx, data| {
        let partner = hypercube::address::NodeId::new(ctx.me().raw() ^ 1);
        let tag = Tag::phase(9, 0, 0);
        let mut handle = pool.handle();
        let mut buf = data;
        ctx.span_enter(9);
        for _ in 0..4 {
            buf = ctx.exchange(partner, tag, buf).await;
            let slab = handle.take(256);
            handle.put(slab);
        }
        ctx.span_exit();
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..64 {
            buf = ctx.exchange(partner, tag, buf).await;
            ctx.charge_comparisons(buf.len());
            // the compare-split slab cycle: grab a scratch slab, use it,
            // hand the allocation back
            let mut slab = handle.take(256);
            slab.push(buf.len() as u64);
            handle.put(slab);
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        // One more exchange after the counter read: a barrier that keeps
        // every node's window clear of the teardown rounds (a finishing
        // node drops its PoolHandle, whose first spill into the shared
        // store allocates — real, but not part of the warm path).
        buf = ctx.exchange(partner, tag, buf).await;
        (buf.len(), after - before)
    });
    for (i, outcome) in out.outcomes().iter().enumerate() {
        let Some(outcome) = outcome else { continue };
        let (len, allocs) = outcome.result;
        assert_eq!(len, 256, "payload must survive the ping-pong");
        assert_eq!(
            allocs, 0,
            "warm par message path allocated {allocs} times on node {i}"
        );
    }
}

#[test]
fn sched_profiler_records_allocation_free_when_warm() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The par ping-pong again, now with the scheduler profiler attached:
    // every poll/steal/barrier/park transition inside the window records
    // into each worker's preallocated event ring (sized by
    // `WorkerProf::new` before any node program runs), so profiling a
    // warm run must add exactly zero allocations to the message path.
    let cube = Hypercube::new(2);
    let profiler = std::sync::Arc::new(hypercube::obs::sched::SchedProfiler::new());
    let engine = Engine::new(FaultSet::none(cube), CostModel::default())
        .with_engine(EngineKind::Par)
        .with_workers(2)
        .with_sched_profiler(profiler.clone());
    let inputs: Vec<Option<Vec<u64>>> = (0..cube.len())
        .map(|i| Some((0..256).map(|x| (i as u64) << 32 | x).collect()))
        .collect();
    let out = engine.run(inputs, async |ctx, data| {
        let partner = hypercube::address::NodeId::new(ctx.me().raw() ^ 1);
        let tag = Tag::phase(9, 0, 0);
        let mut buf = data;
        ctx.span_enter(9);
        for _ in 0..4 {
            buf = ctx.exchange(partner, tag, buf).await;
        }
        ctx.span_exit();
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..64 {
            buf = ctx.exchange(partner, tag, buf).await;
            ctx.charge_comparisons(buf.len());
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        (buf.len(), after - before)
    });
    for (i, outcome) in out.outcomes().iter().enumerate() {
        let Some(outcome) = outcome else { continue };
        let (len, allocs) = outcome.result;
        assert_eq!(len, 256, "payload must survive the ping-pong");
        assert_eq!(
            allocs, 0,
            "profiled warm par message path allocated {allocs} times on node {i}"
        );
    }
    // The profiler really was live — a full profile with intact rings
    // was installed, so the zero-alloc window covered real recording.
    let profile = profiler.take().expect("profiled run installs a profile");
    assert_eq!(profile.workers, 2);
    for prof in &profile.workers_prof {
        assert_eq!(
            prof.dropped(),
            0,
            "worker {} ring overflowed inside the test",
            prof.worker()
        );
        assert!(
            !prof.events().is_empty(),
            "worker {} recorded no events",
            prof.worker()
        );
    }
}

#[test]
fn second_run_on_the_same_buffer_pool_starts_warm() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cube = Hypercube::new(2);
    let pool: BufferPool<u64> = BufferPool::new();

    // Run 1 warms the pool: every node cycles one 256-capacity slab, and
    // the handles' Drop returns the slabs to the shared store.
    let run = |measure: bool| {
        let engine = Engine::new(FaultSet::none(cube), CostModel::default())
            .with_engine(EngineKind::Par)
            .with_workers(2);
        let pool = &pool;
        let inputs: Vec<Option<Vec<u64>>> = (0..cube.len())
            .map(|i| Some((0..256).map(|x| (i as u64) << 32 | x).collect()))
            .collect();
        let out = engine.run(inputs, async |ctx, data| {
            let partner = hypercube::address::NodeId::new(ctx.me().raw() ^ 1);
            let tag = Tag::phase(9, 0, 0);
            let mut handle = pool.handle();
            let mut buf = data;
            // Message-path warm-up only: inboxes and histograms are
            // per-run state. Deliberately no slab warm-up — when
            // measuring, the window's first `take` must already be warm,
            // fed by the previous run's slabs.
            for _ in 0..4 {
                buf = ctx.exchange(partner, tag, buf).await;
            }
            let before = ALLOCS.load(Ordering::Relaxed);
            for _ in 0..32 {
                buf = ctx.exchange(partner, tag, buf).await;
                let mut slab = handle.take(256);
                slab.push(buf.len() as u64);
                handle.put(slab);
            }
            let after = ALLOCS.load(Ordering::Relaxed);
            // Post-window barrier: keeps teardown (handle Drop spilling
            // into the shared store) out of every node's window.
            buf = ctx.exchange(partner, tag, buf).await;
            (buf.len(), after - before)
        });
        for (i, outcome) in out.outcomes().iter().enumerate() {
            let Some(outcome) = outcome else { continue };
            let (len, allocs) = outcome.result;
            assert_eq!(len, 256, "payload must survive the ping-pong");
            if measure {
                assert_eq!(
                    allocs, 0,
                    "second-run slab cycle allocated {allocs} times on node {i}"
                );
            }
        }
    };
    run(false);
    assert_eq!(
        pool.shared_slabs(),
        cube.len(),
        "run 1 must park one warmed slab per node in the shared store"
    );
    run(true);
}

#[test]
fn warm_metric_recording_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The live-telemetry contract: registration (install_global) is the
    // cold path and may allocate; recording on already-registered handles
    // is pure atomics. Counters, gauges and histogram records all run
    // inside the counting window.
    let global = hypercube::obs::metrics::install_global();
    let m = &global.run;
    // Touch every instrument once outside the window (paranoia — handles
    // were fully built at registration, nothing is lazy).
    m.engine.rounds.inc();
    m.engine.msg_elements.record(17);
    m.ws.parked_workers.add(1);
    m.ws.parked_workers.sub(1);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..4096u64 {
        m.engine.rounds.inc();
        m.engine.messages_delivered.inc();
        m.engine.elements_priced.add(i);
        m.engine.link_wait_us.add(i & 7);
        m.engine.msg_elements.record(i);
        m.ws.steals.inc();
        m.ws.barrier_epochs.inc();
        m.ws.parked_workers.add(1);
        m.ws.parked_workers.sub(1);
        m.pool.takes.inc();
        m.pool.puts.inc();
        m.pool.shared_slabs.set(i as i64);
        m.pool.slab_high_water.set_max(i as i64);
        m.sink.events.inc();
        m.sink.gz_bytes_in.add(i);
        m.sink.gz_bytes_out.add(i / 2);
        m.sched.ring_events.set(i as i64);
        m.sched.events_dropped.add(0);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm metric recording allocated {} times",
        after - before
    );
}

#[test]
fn metered_par_engine_message_path_is_allocation_free_when_warm() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The par ping-pong with the global registry *installed*: every
    // engine/barrier/pool telemetry hook fires on the hot path (steals,
    // parks, deliveries, element histograms, stats-pool slab cycles) and
    // must still add zero allocations to the warm rounds.
    hypercube::obs::metrics::install_global();
    let cube = Hypercube::new(2);
    let engine = Engine::new(FaultSet::none(cube), CostModel::default())
        .with_engine(EngineKind::Par)
        .with_workers(2);
    let pool: BufferPool<u64> = BufferPool::with_stats();
    let pool = &pool;
    let inputs: Vec<Option<Vec<u64>>> = (0..cube.len())
        .map(|i| Some((0..256).map(|x| (i as u64) << 32 | x).collect()))
        .collect();
    let out = engine.run(inputs, async |ctx, data| {
        let partner = hypercube::address::NodeId::new(ctx.me().raw() ^ 1);
        let tag = Tag::phase(9, 0, 0);
        let mut handle = pool.handle();
        let mut buf = data;
        ctx.span_enter(9);
        for _ in 0..4 {
            buf = ctx.exchange(partner, tag, buf).await;
            let slab = handle.take(256);
            handle.put(slab);
        }
        ctx.span_exit();
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..64 {
            buf = ctx.exchange(partner, tag, buf).await;
            ctx.charge_comparisons(buf.len());
            let mut slab = handle.take(256);
            slab.push(buf.len() as u64);
            handle.put(slab);
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        // Post-window barrier: keeps handle-Drop spills out of the window.
        buf = ctx.exchange(partner, tag, buf).await;
        (buf.len(), after - before)
    });
    for (i, outcome) in out.outcomes().iter().enumerate() {
        let Some(outcome) = outcome else { continue };
        let (len, allocs) = outcome.result;
        assert_eq!(len, 256, "payload must survive the ping-pong");
        assert_eq!(
            allocs, 0,
            "metered warm par message path allocated {allocs} times on node {i}"
        );
    }
    // The hooks really fired: the process-wide counters saw this run.
    let g = hypercube::obs::metrics::global().expect("installed above");
    assert!(g.run.engine.messages_delivered.get() > 0);
    assert!(g.run.engine.msg_elements.count() > 0);
    assert!(g.run.pool.takes.get() > 0);
    assert!(g.run.ws.barrier_epochs.get() > 0);
}
