//! Collective operations on (possibly faulty) hypercubes.
//!
//! The paper's host "distributes each normal processor ⌊M/N'⌋ elements"
//! (step 2) and collects the sorted result at the end. These collectives
//! implement that traffic as real messages over the simulated machine.
//!
//! Faulty and idle processors make the participant set an arbitrary subset
//! of the cube, so the schedules are **rank-based binomial trees** (the
//! classic MPI construction): participants are ranked `0 … P−1` with the
//! root at rank 0, rank `r > 0` has parent `r` with its highest set bit
//! cleared, and the children of `r` are `r | 2^d` for every `2^d > r`
//! (bounded by `P`). The router charges the real hop distance between the
//! physical nodes behind any pair of ranks, so holes cost extra hops but
//! never break the schedule.

use crate::address::NodeId;
use crate::sim::{Comm, Tag};

/// The ordered participant set of a collective. Rank 0 is the root.
#[derive(Clone, Debug)]
pub struct Participants {
    /// Physical node of each rank; `nodes[0]` is the root.
    nodes: Vec<NodeId>,
    /// Inverse map, indexed by physical address.
    rank_of: Vec<Option<usize>>,
}

impl Participants {
    /// Builds the participant set from the live nodes (in slot order) with
    /// `root` moved to rank 0 (the relative order of the others is kept).
    ///
    /// # Panics
    /// If `root` is not in `live`, a node repeats, or `live` is empty.
    pub fn new(cube_len: usize, root: NodeId, live: &[NodeId]) -> Self {
        assert!(
            !live.is_empty(),
            "collective needs at least one participant"
        );
        let mut nodes = Vec::with_capacity(live.len());
        nodes.push(root);
        nodes.extend(live.iter().copied().filter(|&p| p != root));
        assert_eq!(
            nodes.len(),
            live.len(),
            "root must be one of the participants"
        );
        let mut rank_of = vec![None; cube_len];
        for (r, &p) in nodes.iter().enumerate() {
            assert!(p.index() < cube_len, "participant outside cube");
            assert!(rank_of[p.index()].is_none(), "duplicate participant {p:?}");
            rank_of[p.index()] = Some(r);
        }
        Participants { nodes, rank_of }
    }

    /// The root node (rank 0).
    pub fn root(&self) -> NodeId {
        self.nodes[0]
    }

    /// Number of participants `P`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (construction requires ≥ 1 participant).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The rank of a node, if it participates.
    pub fn rank(&self, node: NodeId) -> Option<usize> {
        self.rank_of.get(node.index()).copied().flatten()
    }

    /// The physical node of a rank.
    pub fn node(&self, rank: usize) -> NodeId {
        self.nodes[rank]
    }

    /// Participants in rank order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Height of `rank`'s subtree: the root covers the whole range, every
    /// other rank covers `2^(trailing zeros)` ranks.
    fn height(&self, rank: usize) -> u32 {
        if rank == 0 {
            self.len().next_power_of_two().trailing_zeros()
        } else {
            rank.trailing_zeros()
        }
    }

    /// Binomial-tree parent of `rank`: its lowest set bit cleared (`None`
    /// for the root). This orientation makes every subtree a *contiguous*
    /// rank range, so scatter/gather bundles are contiguous slices.
    pub fn parent(&self, rank: usize) -> Option<usize> {
        if rank == 0 {
            None
        } else {
            Some(rank & (rank - 1))
        }
    }

    /// Binomial-tree children of `rank`, ascending: `rank + 2^d` for
    /// `d < height(rank)`, bounded by `P`.
    pub fn children(&self, rank: usize) -> Vec<usize> {
        let p = self.len();
        (0..self.height(rank))
            .map(|d| rank + (1usize << d))
            .filter(|&c| c < p)
            .collect()
    }

    /// The contiguous rank range of `rank`'s subtree (itself included):
    /// `[rank, min(rank + 2^height, P))`.
    pub fn subtree_span(&self, rank: usize) -> std::ops::Range<usize> {
        let p = self.len();
        let end = rank.saturating_add(1usize << self.height(rank)).min(p);
        std::ops::Range {
            start: rank,
            end: end.max(rank + 1),
        }
    }
}

/// Broadcasts the root's payload to every participant; all return it.
pub async fn broadcast<K, C>(
    ctx: &mut C,
    parts: &Participants,
    tag: Tag,
    payload: Option<Vec<K>>,
) -> Vec<K>
where
    K: Clone + Send,
    C: Comm<K>,
{
    let me = ctx.me();
    let rank = parts.rank(me).expect("non-participant called broadcast");
    ctx.span_enter((tag.0 >> 32) as u16);
    let payload = if rank == 0 {
        payload.expect("root must supply the broadcast payload")
    } else {
        let parent = parts.parent(rank).expect("non-root has a parent");
        ctx.recv(parts.node(parent), tag).await
    };
    for child in parts.children(rank) {
        ctx.send(parts.node(child), tag, payload.clone());
    }
    ctx.span_exit();
    payload
}

/// Scatters `pieces[r]` to the participant of rank `r`; every participant
/// returns its own piece. Only the root supplies `pieces`.
///
/// Bundles travel down the binomial tree: each node receives the
/// concatenation for its subtree (with a piece-length header encoded by the
/// caller-supplied uniform `piece_len`), keeps the front piece, and forwards
/// contiguous sub-bundles to its children.
pub async fn scatter<K, C>(
    ctx: &mut C,
    parts: &Participants,
    tag: Tag,
    pieces: Option<Vec<Vec<K>>>,
    piece_len: usize,
) -> Vec<K>
where
    K: Clone + Send,
    C: Comm<K>,
{
    let me = ctx.me();
    let rank = parts.rank(me).expect("non-participant called scatter");
    ctx.span_enter((tag.0 >> 32) as u16);
    let my_span = parts.subtree_span(rank);
    let mut bundle: Vec<K> = if rank == 0 {
        let pieces = pieces.expect("root must supply the scatter pieces");
        assert_eq!(pieces.len(), parts.len(), "one piece per participant");
        assert!(
            pieces.iter().all(|p| p.len() == piece_len),
            "scatter requires uniform piece length"
        );
        pieces.into_iter().flatten().collect()
    } else {
        let parent = parts.parent(rank).expect("non-root has a parent");
        ctx.recv(parts.node(parent), tag).await
    };
    assert_eq!(bundle.len(), (my_span.end - my_span.start) * piece_len);
    // forward children's sub-bundles, largest child first (they are
    // contiguous suffixes; peel from the back)
    for child in parts.children(rank).into_iter().rev() {
        let child_span = parts.subtree_span(child);
        let offset = (child_span.start - my_span.start) * piece_len;
        let sub = bundle.split_off(offset);
        ctx.send(parts.node(child), tag, sub);
    }
    ctx.span_exit();
    bundle
}

/// Gathers every participant's piece to the root, which returns
/// `Some(pieces-in-rank-order)`; everyone else returns `None`.
pub async fn gather<K, C>(
    ctx: &mut C,
    parts: &Participants,
    tag: Tag,
    piece: Vec<K>,
    piece_len: usize,
) -> Option<Vec<Vec<K>>>
where
    K: Clone + Send,
    C: Comm<K>,
{
    let me = ctx.me();
    let rank = parts.rank(me).expect("non-participant called gather");
    ctx.span_enter((tag.0 >> 32) as u16);
    assert_eq!(
        piece.len(),
        piece_len,
        "gather requires uniform piece length"
    );
    let my_span = parts.subtree_span(rank);
    let mut bundle = piece;
    bundle.reserve((my_span.end - my_span.start - 1) * piece_len);
    // children report in ascending rank order; their spans are contiguous
    for child in parts.children(rank) {
        let child_span = parts.subtree_span(child);
        let sub = ctx.recv(parts.node(child), tag).await;
        assert_eq!(sub.len(), (child_span.end - child_span.start) * piece_len);
        bundle.extend(sub);
    }
    let result = match parts.parent(rank) {
        Some(parent) => {
            ctx.send(parts.node(parent), tag, bundle);
            None
        }
        None => Some(
            bundle
                .chunks(piece_len.max(1))
                .map(|c| c.to_vec())
                .collect(),
        ),
    };
    ctx.span_exit();
    result
}

/// Reduces every participant's value to the root with the associative
/// element-wise combiner `op`; the root returns `Some(result)`.
pub async fn reduce<K, C, F>(
    ctx: &mut C,
    parts: &Participants,
    tag: Tag,
    value: Vec<K>,
    op: F,
) -> Option<Vec<K>>
where
    K: Clone + Send,
    C: Comm<K>,
    F: Fn(&K, &K) -> K,
{
    let me = ctx.me();
    let rank = parts.rank(me).expect("non-participant called reduce");
    ctx.span_enter((tag.0 >> 32) as u16);
    let mut acc = value;
    for child in parts.children(rank) {
        let theirs = ctx.recv(parts.node(child), tag).await;
        assert_eq!(theirs.len(), acc.len(), "reduce requires uniform length");
        acc = acc
            .iter()
            .zip(theirs.iter())
            .map(|(a, b)| op(a, b))
            .collect();
    }
    let result = match parts.parent(rank) {
        Some(parent) => {
            ctx.send(parts.node(parent), tag, acc);
            None
        }
        None => Some(acc),
    };
    ctx.span_exit();
    result
}

/// Tree-combine: folds every participant's payload up the binomial tree
/// with an arbitrary associative combiner on whole payloads (unlike
/// [`reduce`], which is element-wise). The root returns `Some(total)`.
///
/// Used e.g. for distributed top-k selection, where the combiner merges two
/// sorted lists and truncates.
pub async fn combine<K, C, F>(
    ctx: &mut C,
    parts: &Participants,
    tag: Tag,
    value: Vec<K>,
    op: F,
) -> Option<Vec<K>>
where
    K: Clone + Send,
    C: Comm<K>,
    F: Fn(Vec<K>, Vec<K>) -> Vec<K>,
{
    let me = ctx.me();
    let rank = parts.rank(me).expect("non-participant called combine");
    ctx.span_enter((tag.0 >> 32) as u16);
    let mut acc = value;
    for child in parts.children(rank) {
        let theirs = ctx.recv(parts.node(child), tag).await;
        acc = op(acc, theirs);
    }
    let result = match parts.parent(rank) {
        Some(parent) => {
            ctx.send(parts.node(parent), tag, acc);
            None
        }
        None => Some(acc),
    };
    ctx.span_exit();
    result
}

/// All-reduce: every participant returns the reduction of all values
/// (reduce to the root, then broadcast back).
pub async fn allreduce<K, C, F>(
    ctx: &mut C,
    parts: &Participants,
    tag: Tag,
    value: Vec<K>,
    op: F,
) -> Vec<K>
where
    K: Clone + Send,
    C: Comm<K>,
    F: Fn(&K, &K) -> K,
{
    let reduced = reduce(ctx, parts, tag, value, op).await;
    broadcast(ctx, parts, Tag(tag.0 ^ (1 << 60)), reduced).await
}

/// All-gather: every participant returns every piece, in rank order
/// (gather to the root, then broadcast the concatenation back).
pub async fn allgather<K, C>(
    ctx: &mut C,
    parts: &Participants,
    tag: Tag,
    piece: Vec<K>,
    piece_len: usize,
) -> Vec<Vec<K>>
where
    K: Clone + Send,
    C: Comm<K>,
{
    let collected = gather(ctx, parts, tag, piece, piece_len).await;
    let flat = collected.map(|pieces| pieces.into_iter().flatten().collect::<Vec<K>>());
    let flat = broadcast(ctx, parts, Tag(tag.0 ^ (1 << 60)), flat).await;
    flat.chunks(piece_len.max(1)).map(|c| c.to_vec()).collect()
}

/// Barrier: gather-then-broadcast of an empty payload; returns when every
/// participant has entered.
pub async fn barrier<C: Comm<u8>>(ctx: &mut C, parts: &Participants, tag: Tag) {
    let up = gather(ctx, parts, tag, Vec::new(), 0).await;
    let down = if up.is_some() { Some(Vec::new()) } else { None };
    let _ = broadcast(ctx, parts, Tag(tag.0 ^ (1 << 61)), down).await;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::fault::FaultSet;
    use crate::sim::Engine;
    use crate::topology::Hypercube;

    fn make(n: usize, root: u32, live: &[u32]) -> (Engine, Participants, Vec<Option<Vec<u32>>>) {
        let cube = Hypercube::new(n);
        let live_nodes: Vec<NodeId> = live.iter().copied().map(NodeId::new).collect();
        let parts = Participants::new(cube.len(), NodeId::new(root), &live_nodes);
        let engine = Engine::fault_free(cube, CostModel::paper_form());
        let mut inputs: Vec<Option<Vec<u32>>> = vec![None; cube.len()];
        for &p in live {
            inputs[p as usize] = Some(vec![]);
        }
        (engine, parts, inputs)
    }

    #[test]
    fn tree_structure_is_consistent() {
        let parts = Participants::new(16, NodeId::new(3), &[3, 0, 1, 5, 7, 9, 11].map(NodeId::new));
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.rank(NodeId::new(3)), Some(0));
        for r in 1..parts.len() {
            let p = parts.parent(r).unwrap();
            assert!(p < r);
            assert!(parts.children(p).contains(&r), "rank {r} parent {p}");
        }
        // every rank appears in exactly one child list
        let mut seen = vec![false; parts.len()];
        seen[0] = true;
        for r in 0..parts.len() {
            for c in parts.children(r) {
                assert!(!seen[c], "rank {c} has two parents");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // subtree spans are contiguous and nested
        for r in 0..parts.len() {
            let span = parts.subtree_span(r);
            assert!(span.contains(&r));
            for c in parts.children(r) {
                let cs = parts.subtree_span(c);
                assert!(cs.start >= span.start && cs.end <= span.end);
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        for (n, root, live) in [
            (3usize, 0u32, (0..8).collect::<Vec<u32>>()),
            (3, 5, (0..8).collect()),
            (3, 0, vec![0, 1, 2, 4, 5, 7]),
            (3, 7, vec![0, 1, 2, 4, 5, 7]),
            (2, 1, vec![1, 2]),
            (2, 3, vec![3]),
            (4, 9, vec![9, 0, 3, 6, 12, 15, 1]),
        ] {
            let (engine, parts, inputs) = make(n, root, &live);
            let parts_ref = &parts;
            let out = engine.run(inputs, async move |ctx, _| {
                let payload = if ctx.me() == parts_ref.root() {
                    Some(vec![42u32, 43])
                } else {
                    None
                };
                broadcast(ctx, parts_ref, Tag::new(5), payload).await
            });
            let results = out.into_results();
            assert_eq!(results.len(), live.len());
            for (node, got) in results {
                assert_eq!(got, vec![42, 43], "node {node:?} root {root}");
            }
        }
    }

    #[test]
    fn scatter_delivers_each_rank_its_piece() {
        let live = vec![6u32, 0, 1, 3, 4, 7];
        let (engine, parts, inputs) = make(3, 6, &live);
        let parts_ref = &parts;
        let out = engine.run(inputs, async move |ctx, _| {
            let rank = parts_ref.rank(ctx.me()).unwrap();
            let pieces = (rank == 0).then(|| {
                (0..parts_ref.len() as u32)
                    .map(|r| vec![r * 10, r * 10 + 1])
                    .collect::<Vec<_>>()
            });
            let piece = scatter(ctx, parts_ref, Tag::new(6), pieces, 2).await;
            (rank, piece)
        });
        for (_, (rank, piece)) in out.into_results() {
            assert_eq!(piece, vec![rank as u32 * 10, rank as u32 * 10 + 1]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let live = vec![2u32, 0, 5, 7, 6];
        let (engine, parts, inputs) = make(3, 2, &live);
        let parts_ref = &parts;
        let out = engine.run(inputs, async move |ctx, _| {
            let rank = parts_ref.rank(ctx.me()).unwrap() as u32;
            gather(ctx, parts_ref, Tag::new(7), vec![rank, rank + 100], 2).await
        });
        let mut root_result = None;
        for (node, res) in out.into_results() {
            if node == parts.root() {
                root_result = res;
            } else {
                assert!(res.is_none());
            }
        }
        let pieces = root_result.expect("root gathers");
        assert_eq!(pieces.len(), 5);
        for (r, p) in pieces.iter().enumerate() {
            assert_eq!(*p, vec![r as u32, r as u32 + 100]);
        }
    }

    #[test]
    fn gather_inverts_scatter() {
        let live: Vec<u32> = (0..16).collect();
        let (engine, parts, inputs) = make(4, 0, &live);
        let parts_ref = &parts;
        let out = engine.run(inputs, async move |ctx, _| {
            let rank = parts_ref.rank(ctx.me()).unwrap();
            let pieces =
                (rank == 0).then(|| (0..16u32).map(|r| vec![r, r * r]).collect::<Vec<_>>());
            let mine = scatter(ctx, parts_ref, Tag::new(8), pieces.clone(), 2).await;
            gather(ctx, parts_ref, Tag::new(9), mine, 2).await
        });
        let root_pieces = out
            .node(NodeId::new(0))
            .unwrap()
            .result
            .clone()
            .expect("root");
        assert_eq!(
            root_pieces,
            (0..16u32).map(|r| vec![r, r * r]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reduce_sums_over_participants() {
        let live = vec![4u32, 1, 2, 7, 5, 0];
        let (engine, parts, inputs) = make(3, 4, &live);
        let parts_ref = &parts;
        let out = engine.run(inputs, async move |ctx, _| {
            let me = ctx.me().raw();
            reduce(ctx, parts_ref, Tag::new(10), vec![me, 1], |a, b| a + b).await
        });
        let expect_sum: u32 = live.iter().sum();
        let root = out.node(NodeId::new(4)).unwrap().result.clone().unwrap();
        assert_eq!(root, vec![expect_sum, live.len() as u32]);
    }

    #[test]
    fn allreduce_gives_everyone_the_total() {
        let live = vec![5u32, 0, 3, 6, 1];
        let (engine, parts, inputs) = make(3, 5, &live);
        let parts_ref = &parts;
        let out = engine.run(inputs, async move |ctx, _| {
            let me = ctx.me().raw();
            allreduce(ctx, parts_ref, Tag::new(12), vec![me], |a, b| *a.max(b)).await
        });
        for (node, v) in out.into_results() {
            assert_eq!(v, vec![6], "node {node:?}");
        }
    }

    #[test]
    fn allgather_gives_everyone_all_pieces_in_rank_order() {
        let live = vec![1u32, 4, 7, 2];
        let (engine, parts, inputs) = make(3, 1, &live);
        let parts_ref = &parts;
        let out = engine.run(inputs, async move |ctx, _| {
            let rank = parts_ref.rank(ctx.me()).unwrap() as u32;
            allgather(
                ctx,
                parts_ref,
                Tag::new(13),
                vec![rank * 2, rank * 2 + 1],
                2,
            )
            .await
        });
        for (node, pieces) in out.into_results() {
            assert_eq!(pieces.len(), 4, "node {node:?}");
            for (r, p) in pieces.iter().enumerate() {
                assert_eq!(*p, vec![r as u32 * 2, r as u32 * 2 + 1]);
            }
        }
    }

    #[test]
    fn barrier_completes_with_faulty_machine() {
        let cube = Hypercube::new(3);
        let faults = FaultSet::from_raw(cube, &[3, 5]);
        let live: Vec<NodeId> = faults.normal_nodes().collect();
        let parts = Participants::new(cube.len(), live[0], &live);
        let engine = Engine::new(faults, CostModel::paper_form());
        let mut inputs: Vec<Option<Vec<u8>>> = vec![None; cube.len()];
        for p in &live {
            inputs[p.index()] = Some(vec![]);
        }
        let parts_ref = &parts;
        let out = engine.run(inputs, async move |ctx, _| {
            barrier(ctx, parts_ref, Tag::new(11)).await;
            ctx.clock()
        });
        assert_eq!(out.into_results().len(), 6);
    }

    #[test]
    #[should_panic(expected = "root must be one of the participants")]
    fn root_must_participate() {
        let _ = Participants::new(8, NodeId::new(0), &[NodeId::new(1), NodeId::new(2)]);
    }
}
