//! Minimal gzip (RFC 1952) + DEFLATE (RFC 1951) — enough to stream run
//! files through `.gz` compression and read them back, with no external
//! crates (the container builds offline; see CHANGES.md PR 1).
//!
//! The compressor emits a single fixed-Huffman DEFLATE block: greedy LZ77
//! over a 32 KiB sliding history with hash-chain match search, compressing
//! incrementally in ~64 KiB batches so [`GzEncoder`] adds O(window) memory
//! to a streamed run, not O(file). Run files are line-oriented JSON with
//! heavily repeated key names, so even this modest scheme compresses them
//! roughly 10×. The decompressor is complete — stored, fixed and dynamic
//! blocks — so externally-gzipped run files replay too.

use super::metrics::{self, SinkMetrics};
use std::io::{self, Write};

/// The gzip magic bytes.
pub fn is_gzip(data: &[u8]) -> bool {
    data.len() >= 2 && data[0] == 0x1f && data[1] == 0x8b
}

// ---------------------------------------------------------------- CRC32

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

struct Crc32 {
    table: [u32; 256],
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Crc32 {
            table: crc32_table(),
            state: 0xFFFF_FFFF,
        }
    }

    fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = self.table[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    fn value(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

// ------------------------------------------------------- DEFLATE tables

const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// RFC 1951 §3.2.7: the order code-length code lengths are transmitted in.
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

const WINDOW: usize = 32 * 1024;
const BATCH: usize = 64 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;
const CHAIN_LIMIT: usize = 64;

/// Reverses the low `n` bits of `code` — Huffman codes are packed into the
/// LSB-first bitstream starting from their most significant bit.
fn reverse_bits(code: u32, n: u32) -> u32 {
    code.reverse_bits() >> (32 - n)
}

/// The fixed litlen code (RFC 1951 §3.2.6): `(code, bits)` per symbol.
fn fixed_litlen(sym: usize) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym as u32, 8),
        144..=255 => (0x190 + (sym - 144) as u32, 9),
        256..=279 => ((sym - 256) as u32, 7),
        _ => (0xC0 + (sym - 280) as u32, 8),
    }
}

fn length_code(len: usize) -> usize {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let mut c = 28;
    while LEN_BASE[c] as usize > len {
        c -= 1;
    }
    // code 284 covers 227..=257 but 258 has its own zero-extra code
    if len == 258 {
        28
    } else if c == 28 {
        27
    } else {
        c
    }
}

fn dist_code(dist: usize) -> usize {
    let mut c = 29;
    while DIST_BASE[c] as usize > dist {
        c -= 1;
    }
    c
}

// ------------------------------------------------------------ GzEncoder

/// A gzip compressor over any writer. Bytes written are compressed in
/// batches; the stream is completed (end-of-block symbol, CRC32 + ISIZE
/// trailer) by [`finish`](GzEncoder::finish), or on drop if never finished
/// explicitly — `TraceSink::finish` only flushes its writer, so the sink
/// drop path must still produce a valid file.
pub struct GzEncoder<W: Write> {
    out: Option<W>,
    crc: Crc32,
    total_in: u32,
    total_out: u64,
    hist: Vec<u8>,
    pending: Vec<u8>,
    bitbuf: u64,
    nbits: u32,
    finished: bool,
    metrics: Option<SinkMetrics>,
}

impl<W: Write> GzEncoder<W> {
    /// Writes the gzip header and the (single) fixed-block header.
    pub fn new(mut out: W) -> io::Result<Self> {
        // magic, CM=deflate, no flags, no mtime, no XFL, OS=unknown
        out.write_all(&[0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff])?;
        let mut enc = GzEncoder {
            out: Some(out),
            crc: Crc32::new(),
            total_in: 0,
            total_out: 10,
            hist: Vec::with_capacity(WINDOW),
            pending: Vec::with_capacity(BATCH + MAX_MATCH),
            bitbuf: 0,
            nbits: 0,
            finished: false,
            metrics: metrics::global().map(|g| g.run.sink.clone()),
        };
        enc.put_bits(1, 1)?; // BFINAL: one block for the whole stream
        enc.put_bits(0b01, 2)?; // BTYPE: fixed Huffman
        Ok(enc)
    }

    /// Uncompressed bytes fed in so far (wraps with gzip's 32-bit ISIZE).
    pub fn total_in(&self) -> u64 {
        self.total_in as u64
    }

    /// Compressed bytes handed to the writer so far (header included; up
    /// to 7 bits may still sit in the bit buffer until the stream ends).
    pub fn total_out(&self) -> u64 {
        self.total_out
    }

    fn put_bits(&mut self, value: u32, n: u32) -> io::Result<()> {
        self.bitbuf |= (value as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            let byte = [(self.bitbuf & 0xFF) as u8];
            self.out.as_mut().expect("writer taken").write_all(&byte)?;
            self.total_out += 1;
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
        Ok(())
    }

    fn put_symbol(&mut self, sym: usize) -> io::Result<()> {
        let (code, bits) = fixed_litlen(sym);
        self.put_bits(reverse_bits(code, bits), bits)
    }

    /// Compresses everything in `pending` and slides the history window.
    fn compress_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let base = self.hist.len();
        let mut window = std::mem::take(&mut self.hist);
        window.append(&mut self.pending);

        let hash_size = 1usize << HASH_BITS;
        let hash_of = |w: &[u8], i: usize| -> usize {
            let h = (w[i] as u32)
                .wrapping_mul(0x9E37)
                .wrapping_add((w[i + 1] as u32).wrapping_mul(0x85EB))
                .wrapping_add(w[i + 2] as u32);
            (h.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize & (hash_size - 1)
        };
        let mut head = vec![usize::MAX; hash_size];
        let mut prev = vec![usize::MAX; window.len()];
        let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, w: &[u8], i: usize| {
            if i + MIN_MATCH <= w.len() {
                let h = hash_of(w, i);
                prev[i] = head[h];
                head[h] = i;
            }
        };
        for i in 0..base {
            insert(&mut head, &mut prev, &window, i);
        }

        let mut i = base;
        while i < window.len() {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if i + MIN_MATCH <= window.len() {
                let limit = (window.len() - i).min(MAX_MATCH);
                let mut cand = head[hash_of(&window, i)];
                let mut chain = 0;
                while cand != usize::MAX && chain < CHAIN_LIMIT {
                    let dist = i - cand;
                    if dist > WINDOW {
                        break;
                    }
                    let mut l = 0usize;
                    while l < limit && window[cand + l] == window[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = dist;
                        if l == limit {
                            break;
                        }
                    }
                    cand = prev[cand];
                    chain += 1;
                }
            }
            if best_len >= MIN_MATCH {
                let lc = length_code(best_len);
                self.put_symbol(257 + lc)?;
                let extra = LEN_EXTRA[lc] as u32;
                if extra > 0 {
                    self.put_bits((best_len - LEN_BASE[lc] as usize) as u32, extra)?;
                }
                let dc = dist_code(best_dist);
                self.put_bits(reverse_bits(dc as u32, 5), 5)?;
                let dextra = DIST_EXTRA[dc] as u32;
                if dextra > 0 {
                    self.put_bits((best_dist - DIST_BASE[dc] as usize) as u32, dextra)?;
                }
                for k in i..i + best_len {
                    insert(&mut head, &mut prev, &window, k);
                }
                i += best_len;
            } else {
                self.put_symbol(window[i] as usize)?;
                insert(&mut head, &mut prev, &window, i);
                i += 1;
            }
        }

        let keep = window.len().min(WINDOW);
        self.hist.clear();
        self.hist.extend_from_slice(&window[window.len() - keep..]);
        Ok(())
    }

    fn finish_stream(&mut self) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        self.compress_pending()?;
        self.put_symbol(256)?; // end of block
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put_bits(0, pad)?;
        }
        let crc = self.crc.value();
        let isize = self.total_in;
        let out = self.out.as_mut().expect("writer taken");
        out.write_all(&crc.to_le_bytes())?;
        out.write_all(&isize.to_le_bytes())?;
        self.total_out += 8;
        // One flush of this stream's byte totals into the global counters
        // (per-byte atomics would put an rmw in put_bits's inner loop).
        if let Some(m) = &self.metrics {
            m.gz_bytes_in.add(self.total_in as u64);
            m.gz_bytes_out.add(self.total_out);
        }
        self.out.as_mut().expect("writer taken").flush()
    }

    /// Completes the stream and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.finish_stream()?;
        Ok(self.out.take().expect("writer taken"))
    }
}

impl<W: Write> Write for GzEncoder<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.finished {
            return Err(io::Error::other("write after gzip stream was finished"));
        }
        self.crc.update(buf);
        self.total_in = self.total_in.wrapping_add(buf.len() as u32);
        self.pending.extend_from_slice(buf);
        if self.pending.len() >= BATCH {
            self.compress_pending()?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Push pending bytes into the bitstream (whole bytes reach the
        // writer; up to 7 bits stay buffered — a gzip stream is only
        // decodable once finished anyway) and flush the writer.
        if !self.finished {
            self.compress_pending()?;
        }
        self.out.as_mut().expect("writer taken").flush()
    }
}

impl<W: Write> Drop for GzEncoder<W> {
    fn drop(&mut self) {
        if self.out.is_some() {
            let _ = self.finish_stream();
        }
    }
}

// -------------------------------------------------------------- inflate

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bitbuf: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    fn take_bits(&mut self, n: u32) -> Result<u32, String> {
        while self.nbits < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or("gzip: unexpected end of compressed data")?;
            self.bitbuf |= (byte as u64) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let v = (self.bitbuf & ((1u64 << n) - 1)) as u32;
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(v)
    }

    fn align_byte(&mut self) {
        self.bitbuf = 0;
        self.nbits = 0;
    }
}

/// Canonical Huffman decoder: per-length first-code/first-symbol tables
/// (bit-by-bit decode — simple and fast enough for replay).
struct Huffman {
    /// Per code length 1..=15: (first code, first symbol index, count).
    levels: Vec<(u32, u32, u32)>,
    symbols: Vec<u16>,
}

impl Huffman {
    fn new(lengths: &[u8]) -> Result<Huffman, String> {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        if max_len == 0 {
            // A legal alphabet with no codes (e.g. the distance table of a
            // match-free dynamic block): decoding any symbol is an error,
            // but building the table is not.
            return Ok(Huffman {
                levels: Vec::new(),
                symbols: Vec::new(),
            });
        }
        let mut count = vec![0u32; max_len + 1];
        for &l in lengths {
            count[l as usize] += 1;
        }
        count[0] = 0;
        let mut symbols = Vec::with_capacity(lengths.len());
        let mut levels = Vec::with_capacity(max_len);
        let mut code = 0u32;
        #[allow(clippy::needless_range_loop)] // `bits` is the code length, not just an index
        for bits in 1..=max_len {
            code <<= 1;
            levels.push((code, symbols.len() as u32, count[bits]));
            for (sym, &l) in lengths.iter().enumerate() {
                if l as usize == bits {
                    symbols.push(sym as u16);
                }
            }
            code += count[bits];
            if code as u64 > 1u64 << bits {
                return Err("gzip: over-subscribed Huffman code".into());
            }
        }
        Ok(Huffman { levels, symbols })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, String> {
        let mut code = 0u32;
        for &(first, sym_base, count) in &self.levels {
            code = (code << 1) | r.take_bits(1)?;
            if code < first + count {
                let idx = sym_base + (code - first);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err("gzip: invalid Huffman code".into())
    }
}

fn fixed_tables() -> (Huffman, Huffman) {
    let mut litlen = vec![0u8; 288];
    for (sym, len) in litlen.iter_mut().enumerate() {
        *len = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist = vec![5u8; 30];
    (
        Huffman::new(&litlen).expect("fixed litlen table"),
        Huffman::new(&dist).expect("fixed dist table"),
    )
}

fn inflate(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(data.len() * 4);
    loop {
        let bfinal = r.take_bits(1)?;
        let btype = r.take_bits(2)?;
        match btype {
            0b00 => {
                r.align_byte();
                let mut hdr = [0u8; 4];
                for b in &mut hdr {
                    *b = *r
                        .data
                        .get(r.pos)
                        .ok_or("gzip: truncated stored block header")?;
                    r.pos += 1;
                }
                let len = u16::from_le_bytes([hdr[0], hdr[1]]) as usize;
                let nlen = u16::from_le_bytes([hdr[2], hdr[3]]);
                if nlen != !u16::from_le_bytes([hdr[0], hdr[1]]) {
                    return Err("gzip: stored block LEN/NLEN mismatch".into());
                }
                let end = r.pos + len;
                if end > r.data.len() {
                    return Err("gzip: truncated stored block".into());
                }
                out.extend_from_slice(&r.data[r.pos..end]);
                r.pos = end;
            }
            0b01 | 0b10 => {
                let (litlen, dist) = if btype == 0b01 {
                    fixed_tables()
                } else {
                    read_dynamic_tables(&mut r)?
                };
                loop {
                    let sym = litlen.decode(&mut r)? as usize;
                    match sym {
                        0..=255 => out.push(sym as u8),
                        256 => break,
                        257..=285 => {
                            let lc = sym - 257;
                            let len =
                                LEN_BASE[lc] as usize + r.take_bits(LEN_EXTRA[lc] as u32)? as usize;
                            let dc = dist.decode(&mut r)? as usize;
                            if dc >= 30 {
                                return Err("gzip: invalid distance code".into());
                            }
                            let d = DIST_BASE[dc] as usize
                                + r.take_bits(DIST_EXTRA[dc] as u32)? as usize;
                            if d > out.len() {
                                return Err("gzip: distance beyond output".into());
                            }
                            let from = out.len() - d;
                            for k in 0..len {
                                let b = out[from + k];
                                out.push(b);
                            }
                        }
                        _ => return Err("gzip: invalid litlen symbol".into()),
                    }
                }
            }
            _ => return Err("gzip: reserved block type".into()),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Huffman, Huffman), String> {
    let hlit = r.take_bits(5)? as usize + 257;
    let hdist = r.take_bits(5)? as usize + 1;
    let hclen = r.take_bits(4)? as usize + 4;
    let mut clen_lengths = [0u8; 19];
    for &pos in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[pos] = r.take_bits(3)? as u8;
    }
    let clen = Huffman::new(&clen_lengths)?;
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        match clen.decode(r)? {
            sym @ 0..=15 => lengths.push(sym as u8),
            16 => {
                let last = *lengths
                    .last()
                    .ok_or("gzip: repeat with no previous length")?;
                let n = r.take_bits(2)? + 3;
                for _ in 0..n {
                    lengths.push(last);
                }
            }
            17 => {
                let n = r.take_bits(3)? + 3;
                lengths.resize(lengths.len() + n as usize, 0);
            }
            18 => {
                let n = r.take_bits(7)? + 11;
                lengths.resize(lengths.len() + n as usize, 0);
            }
            _ => return Err("gzip: invalid code-length symbol".into()),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err("gzip: code lengths overflow the alphabets".into());
    }
    let litlen = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((litlen, dist))
}

/// Decompresses a gzip member, verifying the CRC32 and ISIZE trailer.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, String> {
    if !is_gzip(data) {
        return Err("not a gzip stream (bad magic)".into());
    }
    if data.len() < 18 {
        return Err("gzip: truncated stream".into());
    }
    if data[2] != 0x08 {
        return Err(format!("gzip: unsupported compression method {}", data[2]));
    }
    let flg = data[3];
    let mut pos = 10;
    if flg & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > data.len() {
            return Err("gzip: truncated FEXTRA".into());
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings
        if flg & flag != 0 {
            while *data.get(pos).ok_or("gzip: truncated header string")? != 0 {
                pos += 1;
            }
            pos += 1;
        }
    }
    if flg & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if pos + 8 > data.len() {
        return Err("gzip: truncated stream".into());
    }
    let body = &data[pos..data.len() - 8];
    let out = inflate(body)?;
    let trailer = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let want_isize = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    let mut crc = Crc32::new();
    crc.update(&out);
    if crc.value() != want_crc {
        return Err("gzip: CRC32 mismatch".into());
    }
    if out.len() as u32 != want_isize {
        return Err("gzip: ISIZE mismatch".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut enc = GzEncoder::new(Vec::new()).expect("header");
        enc.write_all(data).expect("write");
        let packed = enc.finish().expect("finish");
        assert!(is_gzip(&packed));
        gunzip(&packed).expect("gunzip")
    }

    #[test]
    fn roundtrips_empty_and_tiny_inputs() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"a"), b"a");
        assert_eq!(roundtrip(b"abcabcabcabc"), b"abcabcabcabc");
    }

    #[test]
    fn roundtrips_repetitive_json_and_compresses_it() {
        let mut line = String::new();
        for i in 0..5000 {
            line.push_str(&format!(
                "{{\"t\":{}.5,\"node\":{},\"kind\":\"send\",\"elements\":128}}\n",
                i * 37,
                i % 16
            ));
        }
        let mut enc = GzEncoder::new(Vec::new()).expect("header");
        enc.write_all(line.as_bytes()).expect("write");
        let packed = enc.finish().expect("finish");
        assert_eq!(gunzip(&packed).expect("gunzip"), line.as_bytes());
        assert!(
            packed.len() * 5 < line.len(),
            "repetitive input should compress >5x, got {} -> {}",
            line.len(),
            packed.len()
        );
    }

    #[test]
    fn roundtrips_incompressible_bytes_across_batches() {
        // xorshift noise, long enough to cross several compress batches
        let mut x = 0x2545F491_4F6CDD1Du64;
        let data: Vec<u8> = (0..300_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn roundtrips_required_edge_cases() {
        // empty input
        assert_eq!(roundtrip(b""), b"");
        // a single byte
        assert_eq!(roundtrip(b"\x00"), b"\x00");
        assert_eq!(roundtrip(b"z"), b"z");
        // incompressible (xorshift) random data
        let mut x = 0x9E3779B9_7F4A7C15u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect();
        assert_eq!(roundtrip(&noise), noise);
        // a stream comfortably past 64 KiB (crosses the compress batch)
        let big: Vec<u8> = (0..100_000usize).map(|i| (i % 251) as u8).collect();
        assert!(big.len() > 64 * 1024);
        assert_eq!(roundtrip(&big), big);
    }

    #[test]
    fn byte_totals_track_the_stream() {
        let data = b"some bytes some bytes some bytes";
        let mut enc = GzEncoder::new(Vec::new()).expect("header");
        enc.write_all(data).expect("write");
        enc.flush().expect("flush");
        assert_eq!(enc.total_in(), data.len() as u64);
        let mid_out = enc.total_out();
        assert!(mid_out >= 10, "header bytes are counted");
        let packed = enc.finish().expect("finish");
        assert!(packed.len() as u64 >= mid_out);
        assert_eq!(gunzip(&packed).expect("gunzip"), data);
    }

    #[test]
    fn chunked_writes_match_one_shot() {
        let data: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut enc = GzEncoder::new(Vec::new()).expect("header");
        for chunk in data.chunks(7) {
            enc.write_all(chunk).expect("write");
        }
        let packed = enc.finish().expect("finish");
        assert_eq!(gunzip(&packed).expect("gunzip"), data);
    }

    #[test]
    fn drop_finishes_the_stream() {
        let mut out = Vec::new();
        {
            let mut enc = GzEncoder::new(&mut out).expect("header");
            enc.write_all(b"dropped, not finished").expect("write");
        }
        assert_eq!(gunzip(&out).expect("gunzip"), b"dropped, not finished");
    }

    #[test]
    fn inflates_a_stored_block() {
        // hand-built gzip member with one stored block: "hi"
        let mut data = vec![0x1f, 0x8b, 0x08, 0, 0, 0, 0, 0, 0, 0xff];
        data.push(0b001); // BFINAL=1, BTYPE=00
        data.extend_from_slice(&2u16.to_le_bytes());
        data.extend_from_slice(&(!2u16).to_le_bytes());
        data.extend_from_slice(b"hi");
        let mut crc = Crc32::new();
        crc.update(b"hi");
        data.extend_from_slice(&crc.value().to_le_bytes());
        data.extend_from_slice(&2u32.to_le_bytes());
        assert_eq!(gunzip(&data).expect("gunzip"), b"hi");
    }

    #[test]
    fn inflates_a_dynamic_block() {
        // Hand-built dynamic block encoding "A": litlen lengths give only
        // 'A' (65) and EOB (256) one-bit codes; one unused distance code.
        struct W {
            bytes: Vec<u8>,
            buf: u64,
            n: u32,
        }
        impl W {
            fn put(&mut self, v: u32, n: u32) {
                self.buf |= (v as u64) << self.n;
                self.n += n;
                while self.n >= 8 {
                    self.bytes.push((self.buf & 0xFF) as u8);
                    self.buf >>= 8;
                    self.n -= 8;
                }
            }
            fn done(mut self) -> Vec<u8> {
                if self.n > 0 {
                    self.bytes.push((self.buf & 0xFF) as u8);
                }
                self.bytes
            }
        }
        let mut w = W {
            bytes: Vec::new(),
            buf: 0,
            n: 0,
        };
        w.put(1, 1); // BFINAL
        w.put(0b10, 2); // dynamic
        w.put(0, 5); // HLIT = 257
        w.put(0, 5); // HDIST = 1
        w.put(15, 4); // HCLEN = 19
                      // code-length code lengths in CLEN_ORDER; syms 18 (pos 2) and 1
                      // (pos 17) get length 1 -> canonical codes: sym1=0, sym18=1
        for pos in 0..19 {
            w.put(if pos == 2 || pos == 17 { 1 } else { 0 }, 3);
        }
        // litlen lengths: 65 zeros, len-1, 190 zeros (138 + 52), len-1
        w.put(1, 1); // sym18
        w.put(65 - 11, 7);
        w.put(0, 1); // sym1 -> 'A' has length 1
        w.put(1, 1); // sym18
        w.put(138 - 11, 7);
        w.put(1, 1); // sym18
        w.put(52 - 11, 7);
        w.put(0, 1); // sym1 -> EOB has length 1
                     // one distance code of length 1 (never used)
        w.put(0, 1); // sym1
                     // data: 'A' (code 0), EOB (code 1)
        w.put(0, 1);
        w.put(1, 1);
        let body = w.done();

        let mut data = vec![0x1f, 0x8b, 0x08, 0, 0, 0, 0, 0, 0, 0xff];
        data.extend_from_slice(&body);
        let mut crc = Crc32::new();
        crc.update(b"A");
        data.extend_from_slice(&crc.value().to_le_bytes());
        data.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(gunzip(&data).expect("gunzip"), b"A");
    }

    #[test]
    fn rejects_corrupt_streams() {
        let mut enc = GzEncoder::new(Vec::new()).expect("header");
        enc.write_all(b"payload bytes here").expect("write");
        let mut packed = enc.finish().expect("finish");
        assert!(gunzip(b"no").is_err());
        assert!(gunzip(&packed[..12]).is_err());
        let last = packed.len() - 1;
        packed[last] ^= 0xFF; // corrupt ISIZE
        assert!(gunzip(&packed).is_err());
    }
}
