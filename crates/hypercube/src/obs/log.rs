//! Structured leveled logging: JSON lines through a pluggable writer.
//!
//! The repo's diagnostics so far are ad-hoc `eprintln!` calls — fine for
//! a CLI, useless for the long-running `ftsortd` daemon (ROADMAP item 2)
//! where logs must be machine-parseable and level-filtered. This module
//! is the substrate: one process-global logger (install with [`init`]),
//! an atomic [`Level`] threshold, and one JSON object per line:
//!
//! ```json
//! {"ts":1754640000.123,"level":"info","target":"ftsort::cli","msg":"sort done","n":1024}
//! ```
//!
//! `ts` is the wall clock (seconds since the Unix epoch, millisecond
//! precision) — wall time, *not* the simulation's virtual clock, so log
//! records never feed back into pricing. Like the metrics registry, the
//! logger is invisible to the simulation: when nothing is installed,
//! [`log`] is a single `None` check and [`log_or_stderr`] degrades to the
//! exact `eprintln!` bytes the call sites emitted before this module
//! existed.
//!
//! Unlike metric recording, emitting a log line allocates (it formats
//! JSON) and takes the writer lock — logging is for low-rate lifecycle
//! events, counters are for hot paths.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The run cannot proceed correctly.
    Error,
    /// Something surprising that does not stop the run.
    Warn,
    /// Lifecycle events (run started, artifacts written).
    Info,
    /// Detail useful when debugging a run.
    Debug,
    /// Very chatty diagnostics.
    Trace,
}

impl Level {
    /// The lowercase name used in log records and `--log-level` values.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `--log-level` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value for structured records.
#[derive(Clone, Copy, Debug)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with `{}` — `NaN`/infinities become `null`).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

struct Logger {
    level: AtomicU8,
    out: Mutex<Box<dyn Write + Send>>,
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

/// Installs the process-global logger writing to `out` at `level`.
/// The first call wins the writer; later calls only update the level
/// (the logger, like the metrics registry, is install-once). Returns
/// whether this call installed the writer.
pub fn init(level: Level, out: Box<dyn Write + Send>) -> bool {
    let mut installed = false;
    let logger = LOGGER.get_or_init(|| {
        installed = true;
        Logger {
            level: AtomicU8::new(level as u8),
            out: Mutex::new(out),
        }
    });
    if !installed {
        logger.level.store(level as u8, Ordering::Relaxed);
    }
    installed
}

/// Installs the global logger writing JSON lines to stderr.
pub fn init_stderr(level: Level) -> bool {
    init(level, Box::new(std::io::stderr()))
}

/// Adjusts the level threshold of an installed logger (no-op otherwise).
pub fn set_level(level: Level) {
    if let Some(l) = LOGGER.get() {
        l.level.store(level as u8, Ordering::Relaxed);
    }
}

/// The installed logger's threshold, or `None` when logging is off.
pub fn level() -> Option<Level> {
    LOGGER
        .get()
        .map(|l| Level::from_u8(l.level.load(Ordering::Relaxed)))
}

/// Whether a record at `lvl` would currently be written.
pub fn enabled(lvl: Level) -> bool {
    level().is_some_and(|threshold| lvl <= threshold)
}

fn write_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Formats one record as a JSON line (without trailing newline).
fn render(ts: f64, lvl: Level, target: &str, msg: &str, fields: &[(&str, Value<'_>)]) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(96 + msg.len());
    let _ = write!(line, "{{\"ts\":{ts:.3},\"level\":\"{lvl}\",\"target\":");
    write_json_str(&mut line, target);
    line.push_str(",\"msg\":");
    write_json_str(&mut line, msg);
    for (k, v) in fields {
        line.push(',');
        write_json_str(&mut line, k);
        line.push(':');
        match v {
            Value::U64(n) => {
                let _ = write!(line, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(line, "{n}");
            }
            Value::F64(f) if f.is_finite() => {
                let _ = write!(line, "{f}");
            }
            Value::F64(_) => line.push_str("null"),
            Value::Str(s) => write_json_str(&mut line, s),
            Value::Bool(b) => {
                let _ = write!(line, "{b}");
            }
        }
    }
    line.push('}');
    line
}

fn wall_clock() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Emits a structured record if a logger is installed and `lvl` passes
/// the threshold; silently drops it otherwise.
pub fn log(lvl: Level, target: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    let Some(logger) = LOGGER.get() else { return };
    if lvl > Level::from_u8(logger.level.load(Ordering::Relaxed)) {
        return;
    }
    let line = render(wall_clock(), lvl, target, msg, fields);
    if let Ok(mut out) = logger.out.lock() {
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Like [`log`], but when no logger is installed falls back to plain
/// `eprintln!` of exactly `msg` — the drop-in replacement for the ad-hoc
/// stderr diagnostics this module retires (their byte-for-byte output is
/// preserved for anything grepping stderr).
pub fn log_or_stderr(lvl: Level, target: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    if LOGGER.get().is_some() {
        log(lvl, target, msg, fields);
    } else {
        eprintln!("{msg}");
    }
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    log(Level::Error, target, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    log(Level::Debug, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
        assert!(
            Level::Error < Level::Trace,
            "severity orders most-severe-first"
        );
        assert_eq!(Level::Debug.to_string(), "debug");
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::from_u8(l as u8), l);
        }
    }

    #[test]
    fn render_is_valid_json_with_typed_fields() {
        let line = render(
            1234.5678,
            Level::Info,
            "hypercube::test",
            "hello \"world\"\n",
            &[
                ("n", Value::U64(1024)),
                ("delta", Value::I64(-3)),
                ("ratio", Value::F64(0.5)),
                ("nan", Value::F64(f64::NAN)),
                ("engine", Value::Str("par")),
                ("ok", Value::Bool(true)),
            ],
        );
        let parsed = crate::obs::json::Json::parse(&line).expect("record parses as JSON");
        assert_eq!(
            parsed.get("level").and_then(crate::obs::json::Json::as_str),
            Some("info")
        );
        assert_eq!(
            parsed.get("msg").and_then(crate::obs::json::Json::as_str),
            Some("hello \"world\"\n")
        );
        assert_eq!(
            parsed.get("n").and_then(crate::obs::json::Json::as_u64),
            Some(1024)
        );
        assert_eq!(
            parsed
                .get("engine")
                .and_then(crate::obs::json::Json::as_str),
            Some("par")
        );
        assert!(
            parsed.get("nan").is_some(),
            "non-finite floats render as null"
        );
        let ts = parsed
            .get("ts")
            .and_then(crate::obs::json::Json::as_f64)
            .unwrap();
        assert!(
            (ts - 1234.568).abs() < 1e-9,
            "ts keeps millisecond precision"
        );
    }

    #[test]
    fn uninstalled_logger_is_silent_and_disabled() {
        // These run before (or regardless of) any init in this binary's
        // other tests only if nothing installed a logger; `enabled` must
        // simply agree with `level()` either way.
        assert_eq!(enabled(Level::Error), level().is_some());
    }

    #[test]
    fn shared_sink_records_filter_by_level() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = Sink::default();
        let installed = init(Level::Info, Box::new(sink.clone()));
        // Whatever test ran first owns the writer; level updates apply.
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        log(Level::Debug, "t", "dropped", &[]);
        log(Level::Info, "t", "kept", &[]);
        log_or_stderr(Level::Info, "t", "kept2", &[("k", Value::U64(1))]);
        if installed {
            // We own the writer, so the records landed in our sink.
            let bytes = sink.0.lock().unwrap().clone();
            let text = String::from_utf8(bytes).unwrap();
            assert!(!text.contains("dropped"));
            assert!(text.contains("kept"));
            assert!(text.contains("kept2"));
            for line in text.lines() {
                crate::obs::json::Json::parse(line).expect("every log line is JSON");
            }
        }
    }
}
