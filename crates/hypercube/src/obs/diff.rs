//! Critical-path diffing: align two runs' critical paths segment by
//! segment and attribute the makespan delta to named (phase, link)
//! classes.
//!
//! The paper's Tables 1/2 report *total* sorting-time overhead as faults
//! grow; the interesting follow-up question is *where* the extra time
//! lands — which phase, and which hypercube dimension's links. A
//! [`SegmentProfile`] buckets every critical-path segment by the phase
//! covering it and by its link class (`local` work, a single-dimension
//! transfer `dim j`, or a multi-hop `multi` transfer), summing virtual
//! µs per bucket. Because the path's segments are contiguous over
//! `[0, makespan]`, each profile sums to its run's makespan — so the
//! per-bucket deltas of two profiles account for 100% of the makespan
//! delta, with no unexplained remainder.

use super::critical_path::{covering_span, CriticalPath, SegmentKind};
use super::RunObservation;
use std::fmt::Write as _;

/// Attribution bucket of one critical-path segment.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SegmentKey {
    /// Covering phase name (or `(unattributed)`).
    pub phase: String,
    /// Link class: `local`, `dim <j>`, or `multi` (a transfer crossing
    /// more than one dimension — fault detours).
    pub link: String,
}

/// Per-bucket virtual time of one run's critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentProfile {
    /// The run's makespan, µs.
    pub makespan: f64,
    /// `(bucket, on-path µs)` rows in first-occurrence order along the
    /// path; their sum equals `makespan` up to float dust.
    pub rows: Vec<(SegmentKey, f64)>,
}

impl SegmentProfile {
    /// Buckets `path`'s segments. Each segment is charged to the innermost
    /// span covering its midpoint (same rule as
    /// [`CriticalPath::attribute`]) and to its link class.
    pub fn collect(
        obs: &RunObservation,
        path: &CriticalPath,
        namer: &dyn Fn(u16) -> Option<&'static str>,
    ) -> SegmentProfile {
        let mut rows: Vec<(SegmentKey, f64)> = Vec::new();
        for seg in &path.segments {
            let phase = match covering_span(obs, seg.node, (seg.begin + seg.end) / 2.0) {
                Some(span) => match namer(span.phase) {
                    Some(s) => s.to_string(),
                    None => format!("phase-{}", span.phase),
                },
                None => "(unattributed)".to_string(),
            };
            let link = match (seg.kind, seg.from) {
                (SegmentKind::Local, _)
                | (SegmentKind::Transfer, None)
                | (SegmentKind::Wait, None) => "local".to_string(),
                (SegmentKind::Transfer, Some(from)) => Self::link_class(seg.node, from),
                // Queueing behind busy links gets its own buckets so the
                // diff still tiles 100% of a contended makespan delta.
                (SegmentKind::Wait, Some(from)) => {
                    format!("wait {}", Self::link_class(seg.node, from))
                }
            };
            let key = SegmentKey { phase, link };
            match rows.iter_mut().find(|(k, _)| *k == key) {
                Some((_, us)) => *us += seg.duration(),
                None => rows.push((key, seg.duration())),
            }
        }
        SegmentProfile {
            makespan: path.makespan,
            rows,
        }
    }

    /// `dim <j>` for a single-dimension hop, `multi` for a transfer
    /// crossing more than one dimension (fault detours).
    fn link_class(node: crate::address::NodeId, from: crate::address::NodeId) -> String {
        let crossed = node.raw() ^ from.raw();
        if crossed.count_ones() == 1 {
            format!("dim {}", crossed.trailing_zeros())
        } else {
            "multi".to_string()
        }
    }

    fn us_of(&self, key: &SegmentKey) -> f64 {
        self.rows
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, us)| *us)
            .unwrap_or(0.0)
    }
}

/// One bucket's contribution to the makespan delta between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// The bucket.
    pub key: SegmentKey,
    /// On-path µs in run A.
    pub a_us: f64,
    /// On-path µs in run B.
    pub b_us: f64,
}

impl DiffRow {
    /// `b_us - a_us`: positive means the bucket grew from A to B.
    pub fn delta(&self) -> f64 {
        self.b_us - self.a_us
    }
}

/// Aligns two profiles over the union of their buckets. Rows come back
/// largest delta first (shrunk buckets last), ties broken by bucket name
/// for determinism; summing [`DiffRow::delta`] over all rows gives
/// exactly `b.makespan - a.makespan` (up to float dust), i.e. the diff
/// attributes 100% of the makespan delta.
pub fn diff_profiles(a: &SegmentProfile, b: &SegmentProfile) -> Vec<DiffRow> {
    let mut keys: Vec<&SegmentKey> = a.rows.iter().map(|(k, _)| k).collect();
    for (k, _) in &b.rows {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let mut rows: Vec<DiffRow> = keys
        .into_iter()
        .map(|k| DiffRow {
            key: k.clone(),
            a_us: a.us_of(k),
            b_us: b.us_of(k),
        })
        .collect();
    rows.sort_by(|x, y| {
        y.delta()
            .total_cmp(&x.delta())
            .then_with(|| x.key.cmp(&y.key))
    });
    rows
}

/// Renders the aligned diff as a fixed-width table, one row per bucket,
/// with a total row tying the per-bucket deltas back to the makespan
/// delta.
pub fn render_diff(a: &SegmentProfile, b: &SegmentProfile, label_a: &str, label_b: &str) -> String {
    let rows = diff_profiles(a, b);
    let mut out = String::new();
    let _ = writeln!(out, "critical-path diff: B - A ({label_b} - {label_a})");
    let _ = writeln!(
        out,
        "makespan: A {:.1} us, B {:.1} us, delta {:+.1} us\n",
        a.makespan,
        b.makespan,
        b.makespan - a.makespan
    );
    let _ = writeln!(
        out,
        "{:<16} {:<8} {:>12} {:>12} {:>12}",
        "phase", "segment", "A us", "B us", "delta us"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    let (mut sum_a, mut sum_b) = (0.0, 0.0);
    for r in &rows {
        sum_a += r.a_us;
        sum_b += r.b_us;
        let _ = writeln!(
            out,
            "{:<16} {:<8} {:>12.1} {:>12.1} {:>+12.1}",
            r.key.phase,
            r.key.link,
            r.a_us,
            r.b_us,
            r.delta()
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(64));
    let _ = writeln!(
        out,
        "{:<16} {:<8} {:>12.1} {:>12.1} {:>+12.1}",
        "total",
        "",
        sum_a,
        sum_b,
        sum_b - sum_a
    );
    debug_assert!((sum_a - a.makespan).abs() <= 1e-6 * a.makespan.max(1.0));
    debug_assert!((sum_b - b.makespan).abs() <= 1e-6 * b.makespan.max(1.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(phase: &str, link: &str) -> SegmentKey {
        SegmentKey {
            phase: phase.into(),
            link: link.into(),
        }
    }

    #[test]
    fn diff_covers_the_union_and_sums_to_makespan_delta() {
        let a = SegmentProfile {
            makespan: 10.0,
            rows: vec![(key("step7", "dim 0"), 6.0), (key("step8", "local"), 4.0)],
        };
        let b = SegmentProfile {
            makespan: 13.0,
            rows: vec![(key("step7", "dim 0"), 5.0), (key("step8", "multi"), 8.0)],
        };
        let rows = diff_profiles(&a, &b);
        assert_eq!(rows.len(), 3);
        // largest growth first
        assert_eq!(rows[0].key, key("step8", "multi"));
        assert_eq!(rows[0].delta(), 8.0);
        let total: f64 = rows.iter().map(DiffRow::delta).sum();
        assert_eq!(total, b.makespan - a.makespan);
    }

    #[test]
    fn self_diff_is_all_zeros() {
        let a = SegmentProfile {
            makespan: 10.0,
            rows: vec![(key("step7", "dim 2"), 6.0), (key("bitonic", "local"), 4.0)],
        };
        let rows = diff_profiles(&a, &a);
        assert!(rows.iter().all(|r| r.delta() == 0.0));
    }
}
