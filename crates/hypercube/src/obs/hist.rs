//! Vendored log-bucket histograms: fixed-size power-of-two buckets with
//! no allocation after construction.
//!
//! The scheduler profiler ([`super::sched`]) records one sample per polled
//! shard slice from inside the engine's hot path, so the recorder must be
//! O(1), branch-light, and allocation-free — the counting-allocator test
//! (`crates/hypercube/tests/alloc_free.rs`) pins the latter. A fixed
//! `[u64; 65]` bucket array (bucket 0 = value 0, bucket `i` = values in
//! `[2^(i-1), 2^i)`) covers the whole `u64` range, in the spirit of HdrHistogram's
//! coarsest configuration; exact percentiles are not needed here — shard
//! sizes are capped at 64 nodes, so the interesting mass sits in the first
//! eight buckets.

use std::fmt::Write as _;

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples. Bucket 0 counts zeros;
/// bucket `i ≥ 1` counts values `v` with `bit_length(v) == i`, i.e.
/// `v ∈ [2^(i-1), 2^i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram. All storage is inline — recording never
    /// allocates.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
        }
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` bucket `i` covers (bucket 0 is
    /// the degenerate `[0, 1)`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The raw bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Serializes as a JSON array of bucket counts, trailing zero buckets
    /// trimmed (`[]` when empty).
    pub fn to_json(&self) -> String {
        let used = self.max_bucket().map_or(0, |i| i + 1);
        let mut out = String::with_capacity(2 + 4 * used);
        out.push('[');
        for (i, c) in self.counts[..used].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push(']');
        out
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) of the recorded
    /// samples: locates the bucket holding the `⌈q·total⌉`-th smallest
    /// sample and interpolates linearly across that bucket's value range.
    /// Returns `None` when the histogram is empty.
    ///
    /// The estimate is clamped into the located bucket, and the exact order
    /// statistic lies in the same bucket by construction — so the estimate
    /// is always within one log₂ bucket of the truth, which is the accuracy
    /// contract the campaign aggregators ([`super::campaign`]) rely on.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = Self::bucket_range(i);
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return Some((est as u64).clamp(lo, hi - 1));
            }
            seen += c;
        }
        // rank ≤ total, so some bucket must have crossed it above.
        unreachable!("quantile rank exceeded total count")
    }

    /// Folds any number of per-shard histograms into one. Bucket adds
    /// commute, so the result is independent of shard order; fixing a
    /// left-to-right fold nevertheless makes the merge deterministic by
    /// inspection — the rule the campaign aggregators document.
    pub fn merge_shards<'a, I>(shards: I) -> LogHistogram
    where
        I: IntoIterator<Item = &'a LogHistogram>,
    {
        let mut out = LogHistogram::new();
        for shard in shards {
            out.merge(shard);
        }
        out
    }

    /// Rebuilds a histogram from the bucket counts of
    /// [`to_json`](Self::to_json) (already parsed into a `u64` slice).
    /// Errors if more than [`BUCKETS`] counts are given.
    pub fn from_counts(counts: &[u64]) -> Result<LogHistogram, String> {
        if counts.len() > BUCKETS {
            return Err(format!(
                "histogram has {} buckets, max {BUCKETS}",
                counts.len()
            ));
        }
        let mut h = LogHistogram::new();
        h.counts[..counts.len()].copy_from_slice(counts);
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(63), 6);
        assert_eq!(LogHistogram::bucket_of(64), 7);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        // every bucket's range round-trips through bucket_of
        for i in 0..BUCKETS {
            let (lo, hi) = LogHistogram::bucket_range(i);
            assert_eq!(LogHistogram::bucket_of(lo), i);
            assert_eq!(LogHistogram::bucket_of(hi - 1), i);
        }
    }

    #[test]
    fn record_merge_and_total() {
        let mut a = LogHistogram::new();
        for v in [0, 1, 1, 5, 64] {
            a.record(v);
        }
        assert_eq!(a.total(), 5);
        assert_eq!(a.counts()[0], 1);
        assert_eq!(a.counts()[1], 2);
        assert_eq!(a.counts()[3], 1);
        assert_eq!(a.counts()[7], 1);
        let mut b = LogHistogram::new();
        b.record(5);
        b.merge(&a);
        assert_eq!(b.total(), 6);
        assert_eq!(b.counts()[3], 2);
        assert_eq!(b.max_bucket(), Some(7));
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        assert_eq!(LogHistogram::new().quantile(0.5), None);
        assert_eq!(LogHistogram::new().quantile(0.0), None);
        assert_eq!(LogHistogram::new().quantile(1.0), None);
    }

    #[test]
    fn quantile_single_bucket_stays_in_bucket() {
        // All mass in bucket 3 ([4, 8)): every quantile estimate must land
        // inside that bucket, for any q.
        let mut h = LogHistogram::new();
        for _ in 0..7 {
            h.record(5);
        }
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).expect("non-empty");
            assert_eq!(LogHistogram::bucket_of(est), 3, "q={q} est={est}");
        }
        // Degenerate single-sample histogram, including the zero bucket.
        let mut z = LogHistogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.5), Some(0));
        assert_eq!(z.quantile(1.0), Some(0));
    }

    #[test]
    fn quantile_saturated_top_bucket() {
        // Bucket 64 covers [2^63, u64::MAX) — the interpolation must not
        // overflow and the estimate must stay inside the bucket.
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1 << 63);
        for q in [0.0, 0.5, 1.0] {
            let est = h.quantile(q).expect("non-empty");
            assert_eq!(LogHistogram::bucket_of(est), 64, "q={q} est={est}");
        }
    }

    #[test]
    fn quantile_within_one_bucket_of_exact_order_statistic() {
        // Deterministic pseudo-random sample; compare against the exact
        // order statistic computed from the sorted values.
        let mut values: Vec<u64> = (0u64..500).map(|i| (i * 2654435761) % 100_000).collect();
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q).expect("non-empty");
            assert_eq!(
                LogHistogram::bucket_of(est),
                LogHistogram::bucket_of(exact),
                "q={q} est={est} exact={exact}"
            );
        }
    }

    #[test]
    fn merge_shards_is_order_independent() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in [1, 2, 3] {
            a.record(v);
        }
        for v in [100, 200] {
            b.record(v);
        }
        c.record(0);
        let ab = LogHistogram::merge_shards([&a, &b, &c]);
        let ba = LogHistogram::merge_shards([&c, &b, &a]);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 6);
        assert_eq!(
            LogHistogram::merge_shards(std::iter::empty()),
            LogHistogram::new()
        );
    }

    #[test]
    fn json_roundtrip_trims_trailing_zeros() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(9);
        assert_eq!(h.to_json(), "[1,0,0,0,1]");
        let back = LogHistogram::from_counts(&[1, 0, 0, 0, 1]).expect("parse");
        assert_eq!(back, h);
        assert_eq!(LogHistogram::new().to_json(), "[]");
        assert_eq!(
            LogHistogram::from_counts(&[]).expect("empty"),
            LogHistogram::new()
        );
        assert!(LogHistogram::from_counts(&[0; BUCKETS + 1]).is_err());
    }
}
