//! Trace-driven replay: rebuild a [`RunObservation`] from a saved run
//! file, so the report, Perfetto export and critical-path analyzers run
//! offline on files instead of live engine state.
//!
//! Replay feeds the file's records through the *same* accumulation code
//! the engines use — [`RunStats::record_message`] /
//! [`RunStats::record_comparisons`] for counters, [`NodeMetrics::on_send`]
//! for link attribution, [`SpanLog`] for spans, and
//! [`Trace::from_events`] for the global event order — so a replayed
//! observation is equal to the live one field for field (float bits
//! included), and every downstream analyzer is byte-identical on live
//! and replayed inputs. The only quantities not recomputed are the ones
//! the event stream cannot express: final clocks, blocked time and inbox
//! peaks, which come from the file's footer.

use super::json::{parse_trace_event, Json};
use super::sink::{BufferedSink, NodeSummary, TraceSink};
use super::{NodeMetrics, NodeObservation, RunObservation, SpanLog};
use crate::address::NodeId;
use crate::cost::CostModel;
use crate::sim::{Trace, TraceKind};
use crate::stats::RunStats;

/// Serializes a buffered [`RunObservation`] into the run-file schema (the
/// exact document a live [`super::sink::StreamingSink`] would have
/// written, modulo record interleaving). The observation must carry a
/// trace (tracing enabled) for the file to replay with full counters.
pub fn run_to_json(obs: &RunObservation) -> String {
    let mut sink = BufferedSink::new();
    sink.begin(obs.dim, &obs.cost);
    for e in obs.trace.events() {
        sink.event(e);
    }
    for n in obs.participants() {
        for s in &n.spans {
            sink.span(n.node, Some(s.phase), s.begin);
            sink.span(n.node, None, s.end);
        }
    }
    let summaries: Vec<NodeSummary> = obs
        .participants()
        .map(|n| NodeSummary {
            node: n.node,
            clock: n.clock,
            blocked_us: n.metrics.blocked_us,
            inbox_peak: n.metrics.inbox_peak,
        })
        .collect();
    sink.finish(&summaries);
    sink.to_json()
}

/// Parses a run file (schema version 1, written by the sinks in
/// [`super::sink`]) back into a full [`RunObservation`]. Errors name the
/// offending record.
pub fn observation_from_json(text: &str) -> Result<RunObservation, String> {
    let doc = Json::parse(text)?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing 'version'")?;
    if version != 1 {
        return Err(format!("unsupported run-file version {version}"));
    }
    let dim = doc
        .get("dim")
        .and_then(Json::as_u64)
        .ok_or("missing 'dim'")? as usize;
    if dim > 24 {
        return Err(format!("implausible dimension {dim}"));
    }
    let cost_json = doc.get("cost").ok_or("missing 'cost'")?;
    let costf = |k: &str| {
        cost_json
            .get(k)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cost: missing '{k}'"))
    };
    let cost = CostModel {
        t_sr: costf("t_sr")?,
        t_c: costf("t_c")?,
        t_startup: costf("t_startup")?,
    };

    // Footer first: it defines the participants every event must belong to.
    struct Acc {
        clock: f64,
        blocked_us: f64,
        inbox_peak: u64,
        stats: RunStats,
        metrics: NodeMetrics,
        spans: SpanLog,
    }
    let len = 1usize << dim;
    let mut accs: Vec<Option<Acc>> = (0..len).map(|_| None).collect();
    let footer = doc
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or("missing 'nodes'")?;
    for (i, n) in footer.iter().enumerate() {
        let idx = n
            .get("node")
            .and_then(Json::as_u64)
            .ok_or(format!("node record {i}: missing 'node'"))? as usize;
        if idx >= len {
            return Err(format!(
                "node record {i}: address {idx} outside the {dim}-cube"
            ));
        }
        if accs[idx].is_some() {
            return Err(format!("node record {i}: duplicate address {idx}"));
        }
        let num = |k: &str| {
            n.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("node record {i}: missing '{k}'"))
        };
        accs[idx] = Some(Acc {
            clock: num("clock")?,
            blocked_us: num("blocked_us")?,
            inbox_peak: n
                .get("inbox_peak")
                .and_then(Json::as_u64)
                .ok_or(format!("node record {i}: missing 'inbox_peak'"))?,
            stats: RunStats::new(),
            metrics: NodeMetrics::new(dim),
            spans: SpanLog::new(),
        });
    }

    // Records, in file order — which preserves each node's emission order,
    // the invariant the span stack and the stable trace sort rely on.
    let mut events = Vec::new();
    for (i, e) in doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing 'events'")?
        .iter()
        .enumerate()
    {
        let node = e
            .get("node")
            .and_then(Json::as_u64)
            .ok_or(format!("event {i}: missing 'node'"))? as usize;
        let acc = accs
            .get_mut(node)
            .and_then(Option::as_mut)
            .ok_or(format!("event {i}: node {node} not in the footer"))?;
        let time = |k: &str| {
            e.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("event {i}: bad '{k}'"))
        };
        match e.get("kind").and_then(Json::as_str) {
            Some("enter") => {
                let phase = e
                    .get("phase")
                    .and_then(Json::as_u64)
                    .filter(|p| *p <= u16::MAX as u64)
                    .ok_or(format!("event {i}: bad 'phase'"))? as u16;
                acc.spans.enter(phase, time("t")?);
            }
            Some("exit") => acc.spans.exit(time("t")?),
            _ => {
                let ev = parse_trace_event(i, e)?;
                match ev.kind {
                    TraceKind::Send { to, elements, hops } => {
                        acc.stats.record_message(elements, hops);
                        acc.metrics.on_send(ev.node, to, elements, hops);
                    }
                    TraceKind::Recv { .. } => acc.metrics.msgs_received += 1,
                    TraceKind::Compute { comparisons } => acc.stats.record_comparisons(comparisons),
                }
                events.push(ev);
            }
        }
    }

    let nodes = accs
        .into_iter()
        .enumerate()
        .map(|(idx, acc)| {
            acc.map(|acc| {
                let mut metrics = acc.metrics;
                metrics.blocked_us = acc.blocked_us;
                metrics.inbox_peak = acc.inbox_peak;
                NodeObservation {
                    node: NodeId::new(idx as u32),
                    clock: acc.clock,
                    stats: acc.stats,
                    spans: acc.spans.finish(acc.clock),
                    metrics,
                }
            })
        })
        .collect();

    Ok(RunObservation {
        dim,
        cost,
        trace: Trace::from_events(events),
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_malformed_run_files() {
        for (text, needle) in [
            ("{}", "version"),
            ("{\"version\":2}", "version 2"),
            (
                "{\"version\":1,\"dim\":1,\"cost\":{\"t_sr\":1,\"t_c\":1,\"t_startup\":0},\"events\":[],\"nodes\":[{\"node\":5,\"clock\":0,\"blocked_us\":0,\"inbox_peak\":0}]}",
                "outside",
            ),
            (
                "{\"version\":1,\"dim\":1,\"cost\":{\"t_sr\":1,\"t_c\":1,\"t_startup\":0},\"events\":[{\"t\":0,\"node\":0,\"kind\":\"exit\"}],\"nodes\":[]}",
                "not in the footer",
            ),
        ] {
            let err = observation_from_json(text).expect_err(text);
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }
}
