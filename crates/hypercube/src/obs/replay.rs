//! Trace-driven replay: rebuild a [`RunObservation`] from a saved run
//! file, so the report, Perfetto export and critical-path analyzers run
//! offline on files instead of live engine state.
//!
//! Replay feeds the file's records through the *same* accumulation code
//! the engines use — [`RunStats::record_message`] /
//! [`RunStats::record_comparisons`] for counters, [`NodeMetrics::on_send`]
//! for link attribution, [`SpanLog`] for spans, and
//! [`Trace::from_events`] for the global event order — so a replayed
//! observation is equal to the live one field for field (float bits
//! included), and every downstream analyzer is byte-identical on live
//! and replayed inputs. The only quantities not recomputed are the ones
//! the event stream cannot express: final clocks, blocked time and inbox
//! peaks, which come from the file's footer.

use super::json::{parse_trace_event, Json};
use super::sink::{BufferedSink, NodeSummary, TraceSink};
use super::{NodeMetrics, NodeObservation, RunObservation, SpanLog, SpanRecord};
use crate::address::NodeId;
use crate::cost::CostModel;
use crate::sim::{LinkModel, Trace, TraceKind};
use crate::stats::RunStats;

/// Serializes a buffered [`RunObservation`] into the run-file schema (the
/// exact document a live [`super::sink::StreamingSink`] would have
/// written, modulo record interleaving). The observation must carry a
/// trace (tracing enabled) for the file to replay with full counters.
pub fn run_to_json(obs: &RunObservation) -> String {
    let mut sink = BufferedSink::new();
    if let Some(kt) = &obs.key_type {
        sink.set_key_type(kt.clone());
    }
    sink.begin(obs.dim, &obs.cost, obs.link_model);
    for e in obs.trace.events() {
        sink.event(e);
    }
    for n in obs.participants() {
        for s in &n.spans {
            sink.span(n.node, Some(s.phase), s.begin);
            sink.span(n.node, None, s.end);
        }
    }
    let summaries: Vec<NodeSummary> = obs
        .participants()
        .map(|n| NodeSummary {
            node: n.node,
            clock: n.clock,
            blocked_us: n.metrics.blocked_us,
            inbox_peak: n.metrics.inbox_peak,
        })
        .collect();
    sink.finish(&summaries);
    sink.to_json()
}

/// Writes `obs` as a run file at `path` — gzip-compressed when the path
/// ends in `.gz`, plain otherwise. The write-side counterpart of
/// [`observation_from_file`].
pub fn write_run_file(obs: &RunObservation, path: &str) -> std::io::Result<()> {
    let json = run_to_json(obs);
    if path.ends_with(".gz") {
        let file = std::fs::File::create(path)?;
        let mut enc = super::gz::GzEncoder::new(file)?;
        std::io::Write::write_all(&mut enc, json.as_bytes())?;
        enc.finish().map(|_| ())
    } else {
        std::fs::write(path, json)
    }
}

/// Reads a run file from disk — gzip-compressed (written by
/// `sort --run-out foo.jsonl.gz`) or plain text, sniffed by magic bytes —
/// and rebuilds the observation via [`observation_from_json`].
pub fn observation_from_file(path: &str) -> Result<RunObservation, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let bytes = if super::gz::is_gzip(&bytes) {
        super::gz::gunzip(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        bytes
    };
    let text = String::from_utf8(bytes).map_err(|e| format!("{path}: not UTF-8: {e}"))?;
    observation_from_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parses a run file (schema version 1 or 2, written by the sinks in
/// [`super::sink`]) back into a full [`RunObservation`]. Version 1 files
/// predate link models: they parse with `wait = 0` on every receive and
/// [`LinkModel::Uncontended`] — exactly the semantics they were recorded
/// under, so v1 replays stay byte-identical. Version 2 files carry the
/// link model in the header, plus an optional `key_type` (stamped by
/// CLIs that know the element type; absent from library-written files)
/// that flows back into [`RunObservation::report`]. Errors name the
/// offending record.
pub fn observation_from_json(text: &str) -> Result<RunObservation, String> {
    let doc = Json::parse(text)?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing 'version'")?;
    if !(1..=2).contains(&version) {
        return Err(format!("unsupported run-file version {version}"));
    }
    let link_model = match version {
        1 => LinkModel::Uncontended,
        _ => doc
            .get("link_model")
            .and_then(Json::as_str)
            .and_then(LinkModel::parse)
            .ok_or("missing or invalid 'link_model'")?,
    };
    let key_type = doc
        .get("key_type")
        .and_then(Json::as_str)
        .map(str::to_owned);
    let dim = doc
        .get("dim")
        .and_then(Json::as_u64)
        .ok_or("missing 'dim'")? as usize;
    if dim > 24 {
        return Err(format!("implausible dimension {dim}"));
    }
    let cost_json = doc.get("cost").ok_or("missing 'cost'")?;
    let costf = |k: &str| {
        cost_json
            .get(k)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cost: missing '{k}'"))
    };
    let cost = CostModel {
        t_sr: costf("t_sr")?,
        t_c: costf("t_c")?,
        t_startup: costf("t_startup")?,
    };

    // Footer first: it defines the participants every event must belong to.
    struct Acc {
        clock: f64,
        blocked_us: f64,
        inbox_peak: u64,
        stats: RunStats,
        metrics: NodeMetrics,
        spans: SpanLog,
    }
    let len = 1usize << dim;
    let mut accs: Vec<Option<Acc>> = (0..len).map(|_| None).collect();
    let footer = doc
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or("missing 'nodes'")?;
    for (i, n) in footer.iter().enumerate() {
        let idx = n
            .get("node")
            .and_then(Json::as_u64)
            .ok_or(format!("node record {i}: missing 'node'"))? as usize;
        if idx >= len {
            return Err(format!(
                "node record {i}: address {idx} outside the {dim}-cube"
            ));
        }
        if accs[idx].is_some() {
            return Err(format!("node record {i}: duplicate address {idx}"));
        }
        let num = |k: &str| {
            n.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("node record {i}: missing '{k}'"))
        };
        accs[idx] = Some(Acc {
            clock: num("clock")?,
            blocked_us: num("blocked_us")?,
            inbox_peak: n
                .get("inbox_peak")
                .and_then(Json::as_u64)
                .ok_or(format!("node record {i}: missing 'inbox_peak'"))?,
            stats: RunStats::new(),
            metrics: NodeMetrics::new(dim),
            spans: SpanLog::new(),
        });
    }

    // Records, in file order — which preserves each node's emission order,
    // the invariant the span stack and the stable trace sort rely on.
    let mut events = Vec::new();
    for (i, e) in doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing 'events'")?
        .iter()
        .enumerate()
    {
        let node = e
            .get("node")
            .and_then(Json::as_u64)
            .ok_or(format!("event {i}: missing 'node'"))? as usize;
        let acc = accs
            .get_mut(node)
            .and_then(Option::as_mut)
            .ok_or(format!("event {i}: node {node} not in the footer"))?;
        let time = |k: &str| {
            e.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("event {i}: bad '{k}'"))
        };
        match e.get("kind").and_then(Json::as_str) {
            Some("enter") => {
                let phase = e
                    .get("phase")
                    .and_then(Json::as_u64)
                    .filter(|p| *p <= u16::MAX as u64)
                    .ok_or(format!("event {i}: bad 'phase'"))? as u16;
                acc.spans.enter(phase, time("t")?);
            }
            Some("exit") => acc.spans.exit(time("t")?),
            _ => {
                let ev = parse_trace_event(i, e)?;
                match ev.kind {
                    TraceKind::Send { to, elements, hops } => {
                        acc.stats.record_message(elements, hops);
                        acc.metrics.on_send(ev.node, to, elements, hops, &cost);
                    }
                    TraceKind::Recv { wait, .. } => {
                        acc.metrics.msgs_received += 1;
                        acc.metrics.link_wait_us += wait;
                    }
                    TraceKind::Compute { comparisons } => acc.stats.record_comparisons(comparisons),
                }
                events.push(ev);
            }
        }
    }

    let nodes = accs
        .into_iter()
        .enumerate()
        .map(|(idx, acc)| {
            acc.map(|acc| {
                let mut metrics = acc.metrics;
                metrics.blocked_us = acc.blocked_us;
                metrics.inbox_peak = acc.inbox_peak;
                NodeObservation {
                    node: NodeId::new(idx as u32),
                    clock: acc.clock,
                    stats: acc.stats,
                    spans: acc.spans.finish(acc.clock),
                    metrics,
                }
            })
        })
        .collect();

    Ok(RunObservation {
        dim,
        cost,
        link_model,
        trace: Trace::from_events(events),
        nodes,
        key_type,
    })
}

/// Re-prices a traced run under a different [`CostModel`]: the recorded
/// schedule (who sends what to whom, in which order, over how many hops)
/// is replayed through the same clock algebra the engines charge —
/// `send` advances the sender's port by `transfer(elements, min(hops,1))`,
/// `recv` jumps the receiver to `max(local, sent_at + transfer(elements,
/// hops))`, `compute` advances by `compare(count)` — with every quantity
/// recomputed under `new_cost`.
///
/// The algorithms simulated here are data-oblivious, so the communication
/// schedule is itself cost-independent: recosting a saved run produces
/// **exactly** the observation a live run under `new_cost` would have
/// (the differential test in `tests/obs_invariants.rs` pins this byte for
/// byte). Clock advances the event stream cannot express (a raw
/// `charge_compute`, which no event records) are carried into the new
/// timeline verbatim as per-node residuals.
///
/// Counters and link attributions are schedule properties and carry over
/// unchanged; `blocked_us` is recomputed from the new receive jumps;
/// `inbox_peak` is a property of the frontier schedule, which does not
/// depend on the cost model, and carries over.
///
/// Errors if the observation has no trace events (the run was not traced
/// — there is no schedule to re-price).
///
/// The run's [`LinkModel`] is preserved: re-pricing a contended run routes
/// through the schedule replayer ([`super::schedule::reprice`], which also
/// handles cross-model re-pricing); the uncontended fast path below is
/// kept verbatim.
pub fn recost(obs: &RunObservation, new_cost: CostModel) -> Result<RunObservation, String> {
    if obs.link_model == LinkModel::Contended {
        return super::schedule::reprice(obs, new_cost, LinkModel::Contended);
    }
    if obs.trace.is_empty() {
        return Err("run has no trace events — was the sort traced?".into());
    }
    let events = obs.trace.events();
    // recv event index -> send event index (FIFO per (src, dst, tag) —
    // the channel order every engine preserves)
    let mut send_of = vec![usize::MAX; events.len()];
    for (s, r) in super::perfetto::match_messages(&obs.trace) {
        send_of[r] = s;
    }

    let len = obs.nodes.len();
    // Per-node clock tracks: the recorded (old) timeline as derived from
    // the events, and the re-priced (new) one.
    let mut old_clock = vec![0.0f64; len];
    let mut new_clock = vec![0.0f64; len];
    let mut blocked = vec![0.0f64; len];
    let mut dim_busy: Vec<Vec<f64>> = vec![vec![0.0; obs.dim]; len];
    let mut new_time = vec![0.0f64; events.len()];
    // Per-node (old event time, new event time) checkpoints, in program
    // order — the piecewise map span boundaries are translated through.
    let mut checkpoints: Vec<Vec<(f64, f64)>> = vec![Vec::new(); len];

    for (i, e) in events.iter().enumerate() {
        let n = e.node.index();
        // Where the recorded time disagrees with the clock this event's
        // charge alone would predict, the gap is an un-evented advance (a
        // raw `charge_compute`); carry it verbatim. The comparison is
        // bitwise-clean: when every advance is evented (all the sorts in
        // this workspace), `predicted` reproduces the engine's exact float
        // operations, the residual is exactly zero and the branch never
        // perturbs the new timeline.
        match e.kind {
            TraceKind::Send { to, elements, hops } => {
                let predicted = old_clock[n] + obs.cost.transfer(elements, hops.min(1));
                if e.time != predicted {
                    new_clock[n] += e.time - predicted;
                }
                new_clock[n] += new_cost.transfer(elements, hops.min(1));
                let direct = e.node.raw() ^ to.raw();
                for (d, busy) in dim_busy[n].iter_mut().enumerate() {
                    if direct >> d & 1 == 1 {
                        *busy += new_cost.transfer(elements, 1);
                    }
                }
            }
            TraceKind::Recv { elements, .. } => {
                let before = new_clock[n];
                let s = send_of[i];
                if s == usize::MAX {
                    // No matching send in the file (truncated run):
                    // preserve the recorded forward jump.
                    new_clock[n] += (e.time - old_clock[n]).max(0.0);
                } else {
                    let hops = match events[s].kind {
                        TraceKind::Send { hops, .. } => hops,
                        _ => unreachable!("matched send is a Send event"),
                    };
                    let arrival = new_time[s] + new_cost.transfer(elements, hops);
                    new_clock[n] = new_clock[n].max(arrival);
                }
                blocked[n] += new_clock[n] - before;
            }
            TraceKind::Compute { comparisons } => {
                let predicted = old_clock[n] + obs.cost.compare(comparisons);
                if e.time != predicted {
                    new_clock[n] += e.time - predicted;
                }
                new_clock[n] += new_cost.compare(comparisons);
            }
        }
        old_clock[n] = e.time;
        new_time[i] = new_clock[n];
        checkpoints[n].push((e.time, new_clock[n]));
    }

    // Translate an old-timeline instant at node `n` into the new timeline:
    // new time of the last checkpoint at or before it, plus the residual.
    let map_time = |n: usize, t: f64| -> f64 {
        let cps = &checkpoints[n];
        match cps.partition_point(|&(old, _)| old <= t) {
            0 => t, // before the node's first charge the timelines agree
            p => {
                let (old, new) = cps[p - 1];
                new + (t - old)
            }
        }
    };

    let new_events: Vec<_> = events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mut e = *e;
            e.time = new_time[i];
            e
        })
        .collect();

    let nodes = obs
        .nodes
        .iter()
        .enumerate()
        .map(|(n, slot)| {
            slot.as_ref().map(|node| {
                let clock = map_time(n, node.clock);
                let mut metrics = node.metrics.clone();
                metrics.blocked_us = blocked[n];
                metrics.dim_busy_us = dim_busy[n].clone();
                NodeObservation {
                    node: node.node,
                    clock,
                    stats: node.stats,
                    spans: node
                        .spans
                        .iter()
                        .map(|s| SpanRecord {
                            phase: s.phase,
                            begin: map_time(n, s.begin),
                            end: map_time(n, s.end),
                        })
                        .collect(),
                    metrics,
                }
            })
        })
        .collect();

    Ok(RunObservation {
        dim: obs.dim,
        cost: new_cost,
        link_model: LinkModel::Uncontended,
        trace: Trace::from_events(new_events),
        nodes,
        key_type: obs.key_type.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_malformed_run_files() {
        for (text, needle) in [
            ("{}", "version"),
            ("{\"version\":3}", "version 3"),
            ("{\"version\":2,\"dim\":1}", "link_model"),
            (
                "{\"version\":2,\"dim\":1,\"link_model\":\"congested\"}",
                "link_model",
            ),
            (
                "{\"version\":1,\"dim\":1,\"cost\":{\"t_sr\":1,\"t_c\":1,\"t_startup\":0},\"events\":[],\"nodes\":[{\"node\":5,\"clock\":0,\"blocked_us\":0,\"inbox_peak\":0}]}",
                "outside",
            ),
            (
                "{\"version\":1,\"dim\":1,\"cost\":{\"t_sr\":1,\"t_c\":1,\"t_startup\":0},\"events\":[{\"t\":0,\"node\":0,\"kind\":\"exit\"}],\"nodes\":[]}",
                "not in the footer",
            ),
        ] {
            let err = observation_from_json(text).expect_err(text);
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }
}
