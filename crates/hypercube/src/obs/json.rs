//! A minimal JSON value model, parser and writers for the observability
//! exports.
//!
//! The build environment is offline, so the vendored `serde` is a no-op
//! stand-in (derives expand to nothing) and every persisted format in this
//! workspace is hand-written text. This module gives the observability
//! layer the two halves it needs: exact writers for [`Trace`] and the
//! metrics report, and a strict parser used by tests and the CLI's
//! `trace-check` command to validate emitted files round-trip.
//!
//! `f64` values are written with Rust's `Display`, which produces the
//! shortest decimal string that parses back to the identical bits — so
//! virtual timestamps survive a write/parse cycle exactly.

use crate::address::NodeId;
use crate::sim::{Tag, Trace, TraceEvent, TraceKind};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (all JSON numbers are read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            // surrogate pairs are not produced by our writers;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // multi-byte UTF-8: copy the whole scalar
                    let start = self.pos - 1;
                    let s = &self.bytes[start..];
                    let ch_len = utf8_len(b);
                    let chunk = s
                        .get(..ch_len)
                        .ok_or_else(|| "truncated UTF-8".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes a string into a JSON string literal (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes one [`TraceEvent`] as an object of the workspace trace
/// schema (also embedded in the streaming run files — see
/// [`crate::obs::sink`]). Tags use the full u64 range (protocol-round
/// bits live at 60–63), which a JSON number (f64) cannot carry exactly —
/// encoded as a string, the standard interop-safe representation for u64.
pub fn write_trace_event(out: &mut String, e: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"t\":{},\"node\":{},\"tag\":\"{}\",",
        e.time,
        e.node.raw(),
        e.tag.0
    );
    match e.kind {
        TraceKind::Send { to, elements, hops } => {
            let _ = write!(
                out,
                "\"kind\":\"send\",\"to\":{},\"elements\":{elements},\"hops\":{hops}}}",
                to.raw()
            );
        }
        TraceKind::Recv {
            from,
            elements,
            wait,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"recv\",\"from\":{},\"elements\":{elements}",
                from.raw()
            );
            // `wait` is exactly 0.0 for every uncontended receive; omitting
            // it keeps those lines identical to schema v1 and costs nothing
            // on parse (missing means zero).
            if wait != 0.0 {
                let _ = write!(out, ",\"wait\":{wait}");
            }
            out.push('}');
        }
        TraceKind::Compute { comparisons } => {
            let _ = write!(out, "\"kind\":\"compute\",\"comparisons\":{comparisons}}}");
        }
    }
}

/// Parses one object written by [`write_trace_event`]; `i` is the event's
/// index in its array, used in error messages.
pub fn parse_trace_event(i: usize, e: &Json) -> Result<TraceEvent, String> {
    let field = |k: &str| e.get(k).ok_or_else(|| format!("event {i}: missing '{k}'"));
    let num = |k: &str| field(k)?.as_f64().ok_or(format!("event {i}: bad '{k}'"));
    let int = |k: &str| field(k)?.as_u64().ok_or(format!("event {i}: bad '{k}'"));
    let time = num("t")?;
    let node = NodeId::new(int("node")? as u32);
    let tag = Tag::new(
        field("tag")?
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or(format!("event {i}: bad 'tag'"))?,
    );
    let kind = match field("kind")?.as_str() {
        Some("send") => TraceKind::Send {
            to: NodeId::new(int("to")? as u32),
            elements: int("elements")? as usize,
            hops: int("hops")? as u32,
        },
        Some("recv") => TraceKind::Recv {
            from: NodeId::new(int("from")? as u32),
            elements: int("elements")? as usize,
            wait: match e.get("wait") {
                Some(w) => w.as_f64().ok_or(format!("event {i}: bad 'wait'"))?,
                None => 0.0,
            },
        },
        Some("compute") => TraceKind::Compute {
            comparisons: int("comparisons")? as usize,
        },
        other => return Err(format!("event {i}: unknown kind {other:?}")),
    };
    Ok(TraceEvent {
        time,
        node,
        tag,
        kind,
    })
}

/// Serializes a [`Trace`] to the workspace's own trace schema (distinct
/// from the Perfetto export, which loses the raw tags): one object per
/// event with the exact virtual timestamp.
pub fn trace_to_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 * trace.len() + 32);
    out.push_str("{\"events\":[");
    for (i, e) in trace.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_trace_event(&mut out, e);
    }
    out.push_str("]}");
    out
}

/// Parses a trace serialized by [`trace_to_json`]; the round-trip is exact
/// (timestamps compare bit-equal).
pub fn trace_from_json(text: &str) -> Result<Trace, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing 'events' array")?;
    let mut out = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        out.push(parse_trace_event(i, e)?);
    }
    Ok(Trace::from_events(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_u64(), Some(2));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "12 34",
            "\"unterminated",
            "tru",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn float_display_roundtrips_exactly() {
        for x in [
            0.1 + 0.2,
            1.0 / 3.0,
            123456.789e-3,
            f64::MIN_POSITIVE,
            9007199254740993.0,
        ] {
            let text = format!("{x}");
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "tab\t quote\" back\\slash\nnewline é";
        let mut buf = String::new();
        write_str(&mut buf, original);
        assert_eq!(Json::parse(&buf).unwrap().as_str(), Some(original));
    }
}
