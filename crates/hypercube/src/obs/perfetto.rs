//! Chrome-trace-event / Perfetto JSON export.
//!
//! Emits the classic `{"traceEvents":[...]}` schema that
//! <https://ui.perfetto.dev> (and `chrome://tracing`) load directly:
//!
//! * one track per node (`pid` 0, `tid` = node address, named via `M`
//!   metadata events),
//! * phase spans as `X` complete events (`ts`/`dur` in µs — the virtual
//!   clock's native unit),
//! * messages as flow events: an `s` (flow start) on the sender at send
//!   time and an `f` (flow finish) on the receiver at receive time,
//!   sharing a numeric `id`, so the UI draws arrows along the
//!   happens-before edges,
//! * counter (`C`) tracks per node: instantaneous inbox depth (messages
//!   sent but not yet received) and cumulative element·hops sent, so
//!   queue buildup and traffic skew render as time series next to the
//!   span tracks,
//! * under [`LinkModel::Contended`] only: per-dimension link occupancy
//!   and queue-depth counter tracks recovered from the ledger replay,
//!   and each flow start carries the message's link `wait` in its args.
//!   Uncontended exports are byte-identical to pre-contention builds.
//!
//! Send↔receive matching is FIFO per `(src, dst, tag)` channel — exactly
//! the engines' delivery discipline — computed over the whole trace before
//! any pairing, because a global time sort can place a receive *before*
//! its own send when both carry equal timestamps and the receiver has the
//! smaller node address.

use super::json::{write_str, Json};
use super::RunObservation;
use crate::sim::{LinkModel, Trace, TraceKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Pairs each receive event with its send. Returns `(send_index,
/// recv_index)` pairs into `trace.events()`, in receive order. Receives
/// with no matching send (malformed traces) are skipped.
pub fn match_messages(trace: &Trace) -> Vec<(usize, usize)> {
    // channel key: (src, dst, tag) -> FIFO of send event indices
    let mut queues: HashMap<(u32, u32, u64), std::collections::VecDeque<usize>> = HashMap::new();
    for (i, e) in trace.events().iter().enumerate() {
        if let TraceKind::Send { to, .. } = e.kind {
            queues
                .entry((e.node.raw(), to.raw(), e.tag.0))
                .or_default()
                .push_back(i);
        }
    }
    let mut pairs = Vec::new();
    for (i, e) in trace.events().iter().enumerate() {
        if let TraceKind::Recv { from, .. } = e.kind {
            if let Some(queue) = queues.get_mut(&(from.raw(), e.node.raw(), e.tag.0)) {
                if let Some(send_idx) = queue.pop_front() {
                    pairs.push((send_idx, i));
                }
            }
        }
    }
    pairs
}

/// Renders a run observation as Chrome-trace-event JSON, naming span
/// phases through `namer` (unknown ids become `phase-<id>`).
pub fn perfetto_json(obs: &RunObservation, namer: &dyn Fn(u16) -> Option<&'static str>) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };

    // Track naming metadata, one per participating node.
    for node in obs.participants() {
        emit(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"node {}\"}}}}",
            node.node.raw(),
            node.node.raw()
        );
    }

    // Phase spans as complete (X) events.
    for node in obs.participants() {
        for span in &node.spans {
            emit(&mut out, &mut first);
            let name = match namer(span.phase) {
                Some(s) => s.to_string(),
                None => format!("phase-{}", span.phase),
            };
            out.push_str("{\"ph\":\"X\",\"pid\":0,\"tid\":");
            let _ = write!(out, "{}", node.node.raw());
            out.push_str(",\"name\":");
            write_str(&mut out, &name);
            let _ = write!(
                out,
                ",\"cat\":\"phase\",\"ts\":{},\"dur\":{}}}",
                span.begin,
                span.duration()
            );
        }
    }

    // Messages as flow start/finish pairs along happens-before edges.
    let contended = obs.link_model == LinkModel::Contended;
    let events = obs.trace.events();
    let pairs = match_messages(&obs.trace);
    for (flow_id, &(send_idx, recv_idx)) in pairs.iter().enumerate() {
        let s = &events[send_idx];
        let f = &events[recv_idx];
        let elements = match s.kind {
            TraceKind::Send { elements, .. } => elements,
            _ => 0,
        };
        emit(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"s\",\"pid\":0,\"tid\":{},\"id\":{},\"name\":\"msg\",\"cat\":\"msg\",\"ts\":{},\"args\":{{\"tag\":\"{}\",\"elements\":{}",
            s.node.raw(),
            flow_id,
            s.time,
            s.tag.0,
            elements
        );
        if contended {
            let wait = match f.kind {
                TraceKind::Recv { wait, .. } => wait,
                _ => 0.0,
            };
            let _ = write!(out, ",\"wait\":{wait}");
        }
        out.push_str("}}");
        emit(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{},\"id\":{},\"name\":\"msg\",\"cat\":\"msg\",\"ts\":{}}}",
            f.node.raw(),
            flow_id,
            f.time
        );
    }

    // Inbox-depth counters, one track per destination node: +1 at each
    // matched send, -1 at its receive. All deltas sharing a timestamp
    // collapse into one sample, with enqueues ordered before dequeues at
    // ties, so the running depth never dips negative.
    let mut inbox: Vec<Vec<(f64, i64)>> = vec![Vec::new(); obs.nodes.len()];
    for &(s, r) in &pairs {
        let dst = events[r].node.index();
        inbox[dst].push((events[s].time, 1));
        inbox[dst].push((events[r].time, -1));
    }
    for (node, deltas) in inbox.iter_mut().enumerate() {
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut depth = 0i64;
        let mut k = 0;
        while k < deltas.len() {
            let t = deltas[k].0;
            while k < deltas.len() && deltas[k].0.to_bits() == t.to_bits() {
                depth += deltas[k].1;
                k += 1;
            }
            emit(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":0,\"name\":\"inbox P{node}\",\"ts\":{t},\"args\":{{\"messages\":{depth}}}}}"
            );
        }
    }

    // Cumulative element·hops counters, one track per sender, sampled at
    // each send. Monotone by construction — `trace-check` verifies it.
    let mut cum_hops: Vec<u64> = vec![0; obs.nodes.len()];
    for e in events {
        if let TraceKind::Send { elements, hops, .. } = e.kind {
            let cum = &mut cum_hops[e.node.index()];
            *cum += elements as u64 * hops as u64;
            emit(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":0,\"name\":\"element-hops P{}\",\"ts\":{},\"args\":{{\"element_hops\":{}}}}}",
                e.node.raw(),
                e.time,
                cum
            );
        }
    }

    // Link occupancy and queue depth, one counter pair per hypercube
    // dimension, recovered by replaying the recorded schedule through
    // the link ledger: a dim-d link is held over [start, end) and a
    // message queues for it over [queued_at, start).
    if contended {
        let ct = super::schedule::contended_times(obs);
        let mut busy: Vec<Vec<(f64, i64)>> = vec![Vec::new(); obs.dim];
        let mut queue: Vec<Vec<(f64, i64)>> = vec![Vec::new(); obs.dim];
        for l in &ct.links {
            busy[l.dim].push((l.start, 1));
            busy[l.dim].push((l.end, -1));
            queue[l.dim].push((l.queued_at, 1));
            queue[l.dim].push((l.start, -1));
        }
        for (d, deltas) in busy.iter_mut().enumerate() {
            counter_track(
                &mut out,
                &mut first,
                0,
                &format!("link dim {d} busy"),
                "links",
                deltas,
            );
        }
        for (d, deltas) in queue.iter_mut().enumerate() {
            counter_track(
                &mut out,
                &mut first,
                0,
                &format!("link dim {d} queue"),
                "messages",
                deltas,
            );
        }
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Emits one counter track from `(timestamp, delta)` pairs: sorts by
/// timestamp, collapses all deltas sharing a timestamp into one sample
/// (so zero-duration acquisitions never dip the series negative), and
/// writes the running sum — per-track timestamps come out non-decreasing
/// by construction. Shared with the scheduler-profiler export
/// ([`super::sched`]), which emits under its own `pid`.
pub(crate) fn counter_track(
    out: &mut String,
    first: &mut bool,
    pid: u32,
    name: &str,
    series: &str,
    deltas: &mut [(f64, i64)],
) {
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
    let (mut depth, mut k) = (0i64, 0);
    while k < deltas.len() {
        let t = deltas[k].0;
        while k < deltas.len() && deltas[k].0.to_bits() == t.to_bits() {
            depth += deltas[k].1;
            k += 1;
        }
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"{name}\",\"ts\":{t},\"args\":{{\"{series}\":{depth}}}}}"
        );
    }
}

/// Summary counts from a validated Chrome-trace document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total `traceEvents` entries.
    pub events: usize,
    /// `X` complete (span) events.
    pub spans: u64,
    /// Completed flow start/finish pairs.
    pub flows: u64,
    /// Counter (`C`) samples.
    pub counters: u64,
}

/// Structurally validates a Chrome-trace export: every flow start carries
/// an integer `id` and a `ts`, every finish pairs with an earlier start
/// and respects happens-before, counter samples carry exactly one
/// non-negative numeric series with per-track non-decreasing timestamps,
/// and cumulative `element-hops` tracks never decrease. Scheduler-profiler
/// extensions (see [`super::sched`]): `X` spans with `cat` `"sched"` must
/// sit on a previously declared `worker <i>` thread track and keep
/// per-track timestamps non-decreasing (node-track phase spans are emitted
/// in close order, so the rule is scoped to worker tracks), and `"steal"`
/// flow endpoints must resolve to declared worker tracks. Malformed input
/// returns an error naming the offending event index — it never panics —
/// so the CLI's `trace-check` can report *which* event is broken.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceCheck, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing 'traceEvents' array")?;
    let mut open: HashMap<u64, f64> = HashMap::new();
    let mut last_sample: HashMap<String, (f64, f64)> = HashMap::new();
    // thread tracks declared so far by "M"/"thread_name" metadata
    let mut track_names: HashMap<(u64, u64), String> = HashMap::new();
    // per worker track: last "sched" span timestamp
    let mut sched_last: HashMap<(u64, u64), f64> = HashMap::new();
    let (mut spans, mut flows, mut counters) = (0u64, 0u64, 0u64);
    for (i, e) in events.iter().enumerate() {
        let ts_of = |what: &str| {
            e.get("ts")
                .and_then(Json::as_f64)
                .ok_or(format!("event {i}: {what} without 'ts'"))
        };
        let track_of = |what: &str| {
            let pid = e.get("pid").and_then(Json::as_u64);
            let tid = e.get("tid").and_then(Json::as_u64);
            match (pid, tid) {
                (Some(pid), Some(tid)) => Ok((pid, tid)),
                _ => Err(format!("event {i}: {what} without 'pid'/'tid'")),
            }
        };
        let cat = e.get("cat").and_then(Json::as_str);
        let worker_track_of = |what: &str, track_names: &HashMap<(u64, u64), String>| {
            let track = track_of(what)?;
            match track_names.get(&track) {
                Some(name) if name.starts_with("worker ") => Ok(track),
                Some(name) => Err(format!(
                    "event {i}: {what} on track '{name}', not a worker track"
                )),
                None => Err(format!(
                    "event {i}: {what} on undeclared track pid {} tid {}",
                    track.0, track.1
                )),
            }
        };
        match e.get("ph").and_then(Json::as_str) {
            Some("M") if e.get("name").and_then(Json::as_str) == Some("thread_name") => {
                let track = track_of("thread_name metadata")?;
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: thread_name metadata without a name"))?;
                track_names.insert(track, name.to_string());
            }
            Some("X") => {
                if cat == Some("sched") {
                    let track = worker_track_of("sched span", &track_names)?;
                    let ts = ts_of("sched span")?;
                    if let Some(&prev) = sched_last.get(&track) {
                        if ts < prev {
                            return Err(format!(
                                "event {i}: sched span timestamps go backward on worker track tid {} ({ts} < {prev})",
                                track.1
                            ));
                        }
                    }
                    sched_last.insert(track, ts);
                }
                spans += 1;
            }
            Some("s") => {
                if cat == Some("steal") {
                    worker_track_of("steal flow start", &track_names)?;
                }
                let id = e
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or(format!("event {i}: flow start without integer 'id'"))?;
                let ts = ts_of("flow start")?;
                if open.insert(id, ts).is_some() {
                    return Err(format!("event {i}: duplicate flow id {id}"));
                }
            }
            Some("f") => {
                if cat == Some("steal") {
                    worker_track_of("steal flow finish", &track_names)?;
                }
                let id = e
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or(format!("event {i}: flow finish without integer 'id'"))?;
                let ts = ts_of("flow finish")?;
                let sent = open
                    .remove(&id)
                    .ok_or(format!("event {i}: flow {id} finishes before it starts"))?;
                if ts < sent {
                    return Err(format!(
                        "event {i}: flow {id} violates happens-before ({ts} < {sent})"
                    ));
                }
                flows += 1;
            }
            Some("C") => {
                let name = e
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: counter without 'name'"))?;
                let ts = ts_of("counter")?;
                let value = match e.get("args") {
                    Some(Json::Obj(fields)) if fields.len() == 1 => fields[0].1.as_f64(),
                    _ => None,
                }
                .ok_or(format!(
                    "event {i}: counter '{name}' needs exactly one numeric series in 'args'"
                ))?;
                if value < 0.0 {
                    return Err(format!(
                        "event {i}: counter '{name}' went negative ({value})"
                    ));
                }
                if let Some(&(prev_ts, prev_val)) = last_sample.get(name) {
                    if ts < prev_ts {
                        return Err(format!(
                            "event {i}: counter '{name}' timestamps go backward ({ts} < {prev_ts})"
                        ));
                    }
                    if name.starts_with("element-hops") && value < prev_val {
                        return Err(format!(
                            "event {i}: cumulative counter '{name}' decreased ({value} < {prev_val})"
                        ));
                    }
                }
                last_sample.insert(name.to_string(), (ts, value));
                counters += 1;
            }
            _ => {}
        }
    }
    if !open.is_empty() {
        let mut ids: Vec<u64> = open.keys().copied().collect();
        ids.sort_unstable();
        return Err(format!(
            "{} flow(s) never finished (ids {ids:?})",
            ids.len()
        ));
    }
    Ok(TraceCheck {
        events: events.len(),
        spans,
        flows,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::NodeId;
    use crate::cost::CostModel;
    use crate::obs::json::Json;
    use crate::sim::{Tag, TraceEvent};

    fn two_node_trace() -> Trace {
        let tag = Tag::phase(7, 0, 0);
        Trace::from_events(vec![
            TraceEvent {
                time: 1.0,
                node: NodeId::new(0),
                tag,
                kind: TraceKind::Send {
                    to: NodeId::new(1),
                    elements: 4,
                    hops: 1,
                },
            },
            TraceEvent {
                time: 2.0,
                node: NodeId::new(1),
                tag,
                kind: TraceKind::Recv {
                    from: NodeId::new(0),
                    elements: 4,
                    wait: 0.0,
                },
            },
            // reply on the same tag
            TraceEvent {
                time: 3.0,
                node: NodeId::new(1),
                tag,
                kind: TraceKind::Send {
                    to: NodeId::new(0),
                    elements: 4,
                    hops: 1,
                },
            },
            TraceEvent {
                time: 4.0,
                node: NodeId::new(0),
                tag,
                kind: TraceKind::Recv {
                    from: NodeId::new(1),
                    elements: 4,
                    wait: 0.0,
                },
            },
        ])
    }

    #[test]
    fn matches_sends_to_recvs_per_channel() {
        let trace = two_node_trace();
        let pairs = match_messages(&trace);
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn matches_equal_time_recv_before_send_in_sort_order() {
        // With a zero-hop transfer the recv can carry the same timestamp
        // as the send; the global sort then orders the *receiver* first if
        // its address is smaller. Matching must still pair them.
        let tag = Tag::new(9);
        let trace = Trace::from_events(vec![
            TraceEvent {
                time: 5.0,
                node: NodeId::new(0),
                tag,
                kind: TraceKind::Recv {
                    from: NodeId::new(1),
                    elements: 2,
                    wait: 0.0,
                },
            },
            TraceEvent {
                time: 5.0,
                node: NodeId::new(1),
                tag,
                kind: TraceKind::Send {
                    to: NodeId::new(0),
                    elements: 2,
                    hops: 0,
                },
            },
        ]);
        // sorted order: recv (node 0) first, send (node 1) second
        assert!(matches!(trace.events()[0].kind, TraceKind::Recv { .. }));
        assert_eq!(match_messages(&trace), vec![(1, 0)]);
    }

    #[test]
    fn export_is_valid_json_with_paired_flows() {
        let obs = RunObservation {
            key_type: None,
            dim: 1,
            cost: CostModel::default(),
            link_model: LinkModel::Uncontended,
            trace: two_node_trace(),
            nodes: vec![
                Some(crate::obs::NodeObservation {
                    node: NodeId::new(0),
                    clock: 4.0,
                    stats: crate::stats::RunStats::new(),
                    spans: vec![crate::obs::SpanRecord {
                        phase: 7,
                        begin: 0.0,
                        end: 4.0,
                    }],
                    metrics: crate::obs::NodeMetrics::new(1),
                }),
                Some(crate::obs::NodeObservation {
                    node: NodeId::new(1),
                    clock: 3.0,
                    stats: crate::stats::RunStats::new(),
                    spans: Vec::new(),
                    metrics: crate::obs::NodeMetrics::new(1),
                }),
            ],
        };
        let text = perfetto_json(&obs, &|p| if p == 7 { Some("exchange") } else { None });
        let doc = Json::parse(&text).expect("valid JSON");
        let check = validate_chrome_trace(&doc).expect("structurally valid");
        // 2 metadata + 1 span + 2 flows × 2 events + 6 counter samples
        // (2 inbox samples per node, 1 element-hops sample per send)
        assert_eq!(check.events, 2 + 1 + 4 + 6);
        assert_eq!(check.spans, 1);
        assert_eq!(check.flows, 2);
        assert_eq!(check.counters, 6);
        // the span got its name from the namer
        assert!(text.contains("\"exchange\""));
    }

    #[test]
    fn counters_track_inbox_depth_and_cumulative_hops() {
        let obs = RunObservation {
            key_type: None,
            dim: 1,
            cost: CostModel::default(),
            link_model: LinkModel::Uncontended,
            trace: two_node_trace(),
            nodes: vec![
                Some(crate::obs::NodeObservation {
                    node: NodeId::new(0),
                    clock: 4.0,
                    stats: crate::stats::RunStats::new(),
                    spans: Vec::new(),
                    metrics: crate::obs::NodeMetrics::new(1),
                }),
                Some(crate::obs::NodeObservation {
                    node: NodeId::new(1),
                    clock: 3.0,
                    stats: crate::stats::RunStats::new(),
                    spans: Vec::new(),
                    metrics: crate::obs::NodeMetrics::new(1),
                }),
            ],
        };
        let text = perfetto_json(&obs, &|_| None);
        // node 1's inbox holds the first message over [1.0, 2.0)
        assert!(text.contains("\"name\":\"inbox P1\",\"ts\":1,\"args\":{\"messages\":1}"));
        assert!(text.contains("\"name\":\"inbox P1\",\"ts\":2,\"args\":{\"messages\":0}"));
        // each node sent 4 elements over 1 hop once
        assert!(
            text.contains("\"name\":\"element-hops P0\",\"ts\":1,\"args\":{\"element_hops\":4}")
        );
        assert!(
            text.contains("\"name\":\"element-hops P1\",\"ts\":3,\"args\":{\"element_hops\":4}")
        );
    }

    #[test]
    fn validator_names_the_offending_event() {
        // flow start without an id at index 1
        let doc = Json::parse(
            r#"{"traceEvents":[{"ph":"X","ts":0,"dur":1},{"ph":"s","ts":0,"id":"nope"}]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc).expect_err("missing id");
        assert!(err.contains("event 1"), "{err}");
        assert!(err.contains("id"), "{err}");

        // finish before start
        let doc = Json::parse(r#"{"traceEvents":[{"ph":"f","ts":0,"id":3}]}"#).unwrap();
        let err = validate_chrome_trace(&doc).expect_err("unmatched finish");
        assert!(err.contains("event 0") && err.contains("flow 3"), "{err}");

        // dangling start
        let doc = Json::parse(r#"{"traceEvents":[{"ph":"s","ts":0,"id":7}]}"#).unwrap();
        let err = validate_chrome_trace(&doc).expect_err("dangling start");
        assert!(err.contains("never finished"), "{err}");

        // negative counter
        let doc = Json::parse(
            r#"{"traceEvents":[{"ph":"C","name":"inbox P0","ts":0,"args":{"messages":-1}}]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc).expect_err("negative counter");
        assert!(err.contains("event 0") && err.contains("negative"), "{err}");

        // cumulative counter decreasing
        let doc = Json::parse(
            r#"{"traceEvents":[{"ph":"C","name":"element-hops P0","ts":0,"args":{"element_hops":5}},{"ph":"C","name":"element-hops P0","ts":1,"args":{"element_hops":4}}]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc).expect_err("non-monotone cumulative");
        assert!(
            err.contains("event 1") && err.contains("decreased"),
            "{err}"
        );
    }

    #[test]
    fn validator_checks_worker_tracks() {
        let worker0 =
            r#"{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"worker 0"}}"#;

        // a well-formed sched track passes
        let doc = Json::parse(&format!(
            r#"{{"traceEvents":[{worker0},{{"ph":"X","pid":1,"tid":0,"name":"poll","cat":"sched","ts":1,"dur":2}},{{"ph":"X","pid":1,"tid":0,"name":"barrier","cat":"sched","ts":3,"dur":1}}]}}"#
        ))
        .unwrap();
        assert_eq!(validate_chrome_trace(&doc).expect("valid").spans, 2);

        // sched span on an undeclared track
        let doc = Json::parse(
            r#"{"traceEvents":[{"ph":"X","pid":1,"tid":9,"name":"poll","cat":"sched","ts":0,"dur":1}]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc).expect_err("undeclared track");
        assert!(err.contains("undeclared track"), "{err}");

        // sched span timestamps must be per-track monotonic
        let doc = Json::parse(&format!(
            r#"{{"traceEvents":[{worker0},{{"ph":"X","pid":1,"tid":0,"name":"poll","cat":"sched","ts":5,"dur":1}},{{"ph":"X","pid":1,"tid":0,"name":"poll","cat":"sched","ts":4,"dur":1}}]}}"#
        ))
        .unwrap();
        let err = validate_chrome_trace(&doc).expect_err("backward sched ts");
        assert!(err.contains("go backward"), "{err}");

        // ...but node-track (cat "phase") spans stay exempt
        let doc = Json::parse(
            r#"{"traceEvents":[{"ph":"X","pid":0,"tid":0,"name":"a","cat":"phase","ts":5,"dur":1},{"ph":"X","pid":0,"tid":0,"name":"b","cat":"phase","ts":4,"dur":1}]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&doc).is_ok());

        // steal flows must resolve to declared worker tracks
        let doc = Json::parse(&format!(
            r#"{{"traceEvents":[{worker0},{{"ph":"s","pid":1,"tid":3,"id":0,"cat":"steal","ts":1}},{{"ph":"f","pid":1,"tid":0,"id":0,"cat":"steal","ts":1}}]}}"#
        ))
        .unwrap();
        let err = validate_chrome_trace(&doc).expect_err("steal from undeclared tid");
        assert!(err.contains("steal flow start"), "{err}");

        // a steal flow endpoint on a non-worker track is rejected
        let node = r#"{"ph":"M","pid":1,"tid":3,"name":"thread_name","args":{"name":"node 3"}}"#;
        let doc = Json::parse(&format!(
            r#"{{"traceEvents":[{worker0},{node},{{"ph":"s","pid":1,"tid":3,"id":0,"cat":"steal","ts":1}},{{"ph":"f","pid":1,"tid":0,"id":0,"cat":"steal","ts":1}}]}}"#
        ))
        .unwrap();
        let err = validate_chrome_trace(&doc).expect_err("steal from non-worker track");
        assert!(err.contains("not a worker track"), "{err}");
    }
}
