//! Chrome-trace-event / Perfetto JSON export.
//!
//! Emits the classic `{"traceEvents":[...]}` schema that
//! <https://ui.perfetto.dev> (and `chrome://tracing`) load directly:
//!
//! * one track per node (`pid` 0, `tid` = node address, named via `M`
//!   metadata events),
//! * phase spans as `X` complete events (`ts`/`dur` in µs — the virtual
//!   clock's native unit),
//! * messages as flow events: an `s` (flow start) on the sender at send
//!   time and an `f` (flow finish) on the receiver at receive time,
//!   sharing a numeric `id`, so the UI draws arrows along the
//!   happens-before edges.
//!
//! Send↔receive matching is FIFO per `(src, dst, tag)` channel — exactly
//! the engines' delivery discipline — computed over the whole trace before
//! any pairing, because a global time sort can place a receive *before*
//! its own send when both carry equal timestamps and the receiver has the
//! smaller node address.

use super::json::write_str;
use super::RunObservation;
use crate::sim::{Trace, TraceKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Pairs each receive event with its send. Returns `(send_index,
/// recv_index)` pairs into `trace.events()`, in receive order. Receives
/// with no matching send (malformed traces) are skipped.
pub fn match_messages(trace: &Trace) -> Vec<(usize, usize)> {
    // channel key: (src, dst, tag) -> FIFO of send event indices
    let mut queues: HashMap<(u32, u32, u64), std::collections::VecDeque<usize>> = HashMap::new();
    for (i, e) in trace.events().iter().enumerate() {
        if let TraceKind::Send { to, .. } = e.kind {
            queues
                .entry((e.node.raw(), to.raw(), e.tag.0))
                .or_default()
                .push_back(i);
        }
    }
    let mut pairs = Vec::new();
    for (i, e) in trace.events().iter().enumerate() {
        if let TraceKind::Recv { from, .. } = e.kind {
            if let Some(queue) = queues.get_mut(&(from.raw(), e.node.raw(), e.tag.0)) {
                if let Some(send_idx) = queue.pop_front() {
                    pairs.push((send_idx, i));
                }
            }
        }
    }
    pairs
}

/// Renders a run observation as Chrome-trace-event JSON, naming span
/// phases through `namer` (unknown ids become `phase-<id>`).
pub fn perfetto_json(obs: &RunObservation, namer: &dyn Fn(u16) -> Option<&'static str>) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };

    // Track naming metadata, one per participating node.
    for node in obs.participants() {
        emit(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"node {}\"}}}}",
            node.node.raw(),
            node.node.raw()
        );
    }

    // Phase spans as complete (X) events.
    for node in obs.participants() {
        for span in &node.spans {
            emit(&mut out, &mut first);
            let name = match namer(span.phase) {
                Some(s) => s.to_string(),
                None => format!("phase-{}", span.phase),
            };
            out.push_str("{\"ph\":\"X\",\"pid\":0,\"tid\":");
            let _ = write!(out, "{}", node.node.raw());
            out.push_str(",\"name\":");
            write_str(&mut out, &name);
            let _ = write!(
                out,
                ",\"cat\":\"phase\",\"ts\":{},\"dur\":{}}}",
                span.begin,
                span.duration()
            );
        }
    }

    // Messages as flow start/finish pairs along happens-before edges.
    let events = obs.trace.events();
    for (flow_id, (send_idx, recv_idx)) in match_messages(&obs.trace).into_iter().enumerate() {
        let s = &events[send_idx];
        let f = &events[recv_idx];
        let elements = match s.kind {
            TraceKind::Send { elements, .. } => elements,
            _ => 0,
        };
        emit(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"s\",\"pid\":0,\"tid\":{},\"id\":{},\"name\":\"msg\",\"cat\":\"msg\",\"ts\":{},\"args\":{{\"tag\":\"{}\",\"elements\":{}}}}}",
            s.node.raw(),
            flow_id,
            s.time,
            s.tag.0,
            elements
        );
        emit(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{},\"id\":{},\"name\":\"msg\",\"cat\":\"msg\",\"ts\":{}}}",
            f.node.raw(),
            flow_id,
            f.time
        );
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::NodeId;
    use crate::cost::CostModel;
    use crate::obs::json::Json;
    use crate::sim::{Tag, TraceEvent};

    fn two_node_trace() -> Trace {
        let tag = Tag::phase(7, 0, 0);
        Trace::from_events(vec![
            TraceEvent {
                time: 1.0,
                node: NodeId::new(0),
                tag,
                kind: TraceKind::Send {
                    to: NodeId::new(1),
                    elements: 4,
                    hops: 1,
                },
            },
            TraceEvent {
                time: 2.0,
                node: NodeId::new(1),
                tag,
                kind: TraceKind::Recv {
                    from: NodeId::new(0),
                    elements: 4,
                },
            },
            // reply on the same tag
            TraceEvent {
                time: 3.0,
                node: NodeId::new(1),
                tag,
                kind: TraceKind::Send {
                    to: NodeId::new(0),
                    elements: 4,
                    hops: 1,
                },
            },
            TraceEvent {
                time: 4.0,
                node: NodeId::new(0),
                tag,
                kind: TraceKind::Recv {
                    from: NodeId::new(1),
                    elements: 4,
                },
            },
        ])
    }

    #[test]
    fn matches_sends_to_recvs_per_channel() {
        let trace = two_node_trace();
        let pairs = match_messages(&trace);
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn matches_equal_time_recv_before_send_in_sort_order() {
        // With a zero-hop transfer the recv can carry the same timestamp
        // as the send; the global sort then orders the *receiver* first if
        // its address is smaller. Matching must still pair them.
        let tag = Tag::new(9);
        let trace = Trace::from_events(vec![
            TraceEvent {
                time: 5.0,
                node: NodeId::new(0),
                tag,
                kind: TraceKind::Recv {
                    from: NodeId::new(1),
                    elements: 2,
                },
            },
            TraceEvent {
                time: 5.0,
                node: NodeId::new(1),
                tag,
                kind: TraceKind::Send {
                    to: NodeId::new(0),
                    elements: 2,
                    hops: 0,
                },
            },
        ]);
        // sorted order: recv (node 0) first, send (node 1) second
        assert!(matches!(trace.events()[0].kind, TraceKind::Recv { .. }));
        assert_eq!(match_messages(&trace), vec![(1, 0)]);
    }

    #[test]
    fn export_is_valid_json_with_paired_flows() {
        let obs = RunObservation {
            dim: 1,
            cost: CostModel::default(),
            trace: two_node_trace(),
            nodes: vec![
                Some(crate::obs::NodeObservation {
                    node: NodeId::new(0),
                    clock: 4.0,
                    stats: crate::stats::RunStats::new(),
                    spans: vec![crate::obs::SpanRecord {
                        phase: 7,
                        begin: 0.0,
                        end: 4.0,
                    }],
                    metrics: crate::obs::NodeMetrics::new(1),
                }),
                Some(crate::obs::NodeObservation {
                    node: NodeId::new(1),
                    clock: 3.0,
                    stats: crate::stats::RunStats::new(),
                    spans: Vec::new(),
                    metrics: crate::obs::NodeMetrics::new(1),
                }),
            ],
        };
        let text = perfetto_json(&obs, &|p| if p == 7 { Some("exchange") } else { None });
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        // 2 metadata + 1 span + 2 flows × 2 events
        assert_eq!(events.len(), 2 + 1 + 4);
        // every f has a matching earlier s with the same id
        let mut starts = Vec::new();
        for e in events {
            match e.get("ph").and_then(Json::as_str) {
                Some("s") => starts.push(e.get("id").and_then(Json::as_u64).unwrap()),
                Some("f") => {
                    let id = e.get("id").and_then(Json::as_u64).unwrap();
                    assert!(starts.contains(&id), "flow finish {id} before its start");
                }
                _ => {}
            }
        }
        // the span got its name from the namer
        assert!(text.contains("\"exchange\""));
    }
}
