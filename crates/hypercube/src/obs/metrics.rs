//! Live metrics: a process-wide registry of monotonic counters, gauges and
//! log-bucket histograms with Prometheus-text exposition.
//!
//! Everything observability built so far (spans, run files, the scheduler
//! profiler) is post-hoc — nothing reports state *while* a run is in
//! flight, and a long-running server (`ftsortd`, ROADMAP item 2) cannot be
//! observed by run files alone. This module is the live substrate:
//!
//! * **Instruments** — [`Counter`] (monotonic `u64`), [`Gauge`] (`i64`)
//!   and [`Histogram`] (the [`super::hist`] log₂-bucket layout with an
//!   atomic bucket array). All are cheap `Arc` handles over atomics:
//!   recording is lock-free, allocation-free and wait-free — pinned by the
//!   counting-allocator test in `crates/hypercube/tests/alloc_free.rs`.
//! * **[`Registry`]** — owns the instrument families. Registration (names,
//!   help text, the family vector) happens at startup under a mutex;
//!   after that the registry is only locked again to render, so warm
//!   recording never contends.
//! * **Exposition** — [`Registry::render_prom`] writes the Prometheus text
//!   format (hand-rolled per the vendored-deps constraint): `# HELP` /
//!   `# TYPE` lines, counter/gauge samples, and cumulative histogram
//!   `_bucket{le="..."}` / `_sum` / `_count` series. [`validate_prom`]
//!   parses the format back and rejects malformed families, duplicate
//!   series and non-monotone bucket counts — `ftsort-cli trace-check
//!   --prom` runs it in CI.
//! * **The global registry** — [`install_global`] installs one registry +
//!   [`RunMetrics`] bundle per process; engines, the work-stealing
//!   scheduler, `BufferPool` and the sink pipeline consult
//!   [`global`] at *construction* time and hold `Option<...>` instrument
//!   handles, so the disabled path (nothing installed — the default) is a
//!   single `None` check, exactly like the sched profiler's gating.
//!
//! House rule, test-pinned: metrics observe the simulation, they never
//! steer it. Sorted output, `RunReport` JSON and streamed run files are
//! byte-identical with metrics enabled or disabled.

use super::hist::{LogHistogram, BUCKETS};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic — handles are cheap and `Send + Sync`.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Subtracts `v`.
    #[inline]
    pub fn sub(&self, v: i64) {
        self.0.fetch_sub(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (a high-water mark).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistCore {
    /// One atomic per [`LogHistogram`] bucket — same layout, same
    /// `bucket_of` indexing, shareable across threads.
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

/// A log₂-bucketed histogram sharing [`super::hist::LogHistogram`]'s
/// bucket layout (bucket 0 = zero, bucket `i ≥ 1` = values with bit
/// length `i`), recorded through atomics so handles can be shared across
/// worker threads.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A histogram not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Histogram(Arc::new(HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one sample: two relaxed atomic adds, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[LogHistogram::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of the raw (non-cumulative) bucket counts.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    name: String,
    help: String,
    instrument: Instrument,
}

/// The instrument registry: families are registered once at startup (the
/// only mutex acquisitions besides rendering); the returned handles record
/// through shared atomics thereafter.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// Whether `name` is a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, make: impl FnOnce() -> Instrument) -> Instrument {
        assert!(valid_name(name), "invalid metric name '{name}'");
        let mut families = self.families.lock().expect("metrics registry poisoned");
        if let Some(f) = families.iter().find(|f| f.name == name) {
            // Re-registration returns the existing handle — registration is
            // idempotent so component bundles can be rebuilt per run — but
            // a kind clash is a programming error.
            let made = make();
            assert_eq!(
                f.instrument.kind(),
                made.kind(),
                "metric '{name}' re-registered as a different kind"
            );
            return match &f.instrument {
                Instrument::Counter(c) => Instrument::Counter(c.clone()),
                Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
                Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
            };
        }
        let instrument = make();
        let handle = match &instrument {
            Instrument::Counter(c) => Instrument::Counter(c.clone()),
            Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
            Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
        };
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            instrument,
        });
        handle
    }

    /// Registers (or re-fetches) a monotonic counter. Counter names must
    /// carry the Prometheus `_total` suffix.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        assert!(
            name.ends_with("_total"),
            "counter '{name}' must end in _total"
        );
        match self.register(name, help, || Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or re-fetches) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, || Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or re-fetches) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.register(name, help, || Instrument::Histogram(Histogram::new())) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Renders every family in registration order as Prometheus text:
    /// `# HELP`/`# TYPE` headers, then the samples — histograms as
    /// cumulative `_bucket{le="..."}` series (upper bounds are the
    /// inclusive tops of the log₂ buckets) plus `_sum`/`_count`.
    pub fn render_prom(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::with_capacity(256 * families.len());
        for f in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.instrument.kind());
            match &f.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{} {}", f.name, c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", f.name, g.get());
                }
                Instrument::Histogram(h) => {
                    let counts = h.snapshot();
                    let used = counts.iter().rposition(|&c| c > 0).map_or(1, |i| i + 1);
                    let mut cumulative = 0u64;
                    for (i, &c) in counts[..used].iter().enumerate() {
                        cumulative += c;
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {cumulative}",
                            f.name,
                            bucket_upper(i)
                        );
                    }
                    let total: u64 = counts.iter().sum();
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {total}", f.name);
                    let _ = writeln!(out, "{}_sum {}", f.name, h.sum());
                    let _ = writeln!(out, "{}_count {total}", f.name);
                }
            }
        }
        out
    }
}

/// The inclusive upper bound of log₂ bucket `i` (bucket 0 holds only 0;
/// bucket `i ≥ 1` holds `[2^(i-1), 2^i)`, so its top is `2^i - 1`).
fn bucket_upper(i: usize) -> u64 {
    let (_, hi) = LogHistogram::bucket_range(i);
    if i == 64 {
        u64::MAX
    } else {
        hi - 1
    }
}

/// Escapes a help string per the exposition format (`\` and newlines).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

// ---------------------------------------------------------------------------
// Exposition-format validation (the `trace-check --prom` sub-validator).
// ---------------------------------------------------------------------------

/// What [`validate_prom`] counted in a healthy snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PromCheck {
    /// `# TYPE`-declared metric families.
    pub families: usize,
    /// Distinct sample series (unique name + label set).
    pub series: usize,
    /// Total sample lines.
    pub samples: usize,
}

/// Parses a Prometheus text snapshot and validates its structure: every
/// sample must belong to a `# TYPE`-declared family (histogram samples by
/// their `_bucket`/`_sum`/`_count` suffix), families must not be declared
/// twice, series must not repeat, counter values must be finite and
/// non-negative, histogram bucket counts must be cumulative
/// (non-decreasing over strictly increasing `le` bounds) and end in a
/// `+Inf` bucket that equals `_count`.
pub fn validate_prom(text: &str) -> Result<PromCheck, String> {
    struct HistState {
        last_le: Option<f64>,
        last_count: u64,
        inf: Option<u64>,
        count: Option<u64>,
        has_sum: bool,
    }
    let mut types: Vec<(String, String)> = Vec::new(); // (name, kind)
    let mut seen_series: Vec<String> = Vec::new();
    let mut hists: Vec<(String, HistState)> = Vec::new();
    let mut samples = 0usize;

    let kind_of = |types: &[(String, String)], name: &str| -> Option<String> {
        types
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, k)| k.clone())
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end_matches('\r');
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default();
            let kind = parts
                .next()
                .ok_or_else(|| err("# TYPE without kind".into()))?;
            if !valid_name(name) {
                return Err(err(format!("invalid family name '{name}'")));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(err(format!("unknown family kind '{kind}'")));
            }
            if types.iter().any(|(n, _)| n == name) {
                return Err(err(format!("family '{name}' declared twice")));
            }
            if kind == "histogram" {
                hists.push((
                    name.to_string(),
                    HistState {
                        last_le: None,
                        last_count: 0,
                        inf: None,
                        count: None,
                        has_sum: false,
                    },
                ));
            }
            types.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and comments
        }

        // A sample: name[{labels}] value
        let (name, labels, value) = parse_sample(line).map_err(&err)?;
        if !valid_name(&name) {
            return Err(err(format!("invalid metric name '{name}'")));
        }
        let series_key = format!("{name}{{{labels}}}");
        if seen_series.contains(&series_key) {
            return Err(err(format!("duplicate series '{series_key}'")));
        }
        seen_series.push(series_key);
        samples += 1;

        if let Some(kind) = kind_of(&types, &name) {
            match kind.as_str() {
                "counter" => {
                    if !(value.is_finite() && value >= 0.0) {
                        return Err(err(format!("counter '{name}' has value {value}")));
                    }
                }
                "gauge" | "untyped" => {
                    if !value.is_finite() {
                        return Err(err(format!("gauge '{name}' has non-finite value")));
                    }
                }
                other => {
                    return Err(err(format!("bare sample for '{name}' declared as {other}")));
                }
            }
            continue;
        }
        // Histogram component?
        let (base, part) = if let Some(b) = name.strip_suffix("_bucket") {
            (b, "bucket")
        } else if let Some(b) = name.strip_suffix("_sum") {
            (b, "sum")
        } else if let Some(b) = name.strip_suffix("_count") {
            (b, "count")
        } else {
            return Err(err(format!("sample for undeclared family '{name}'")));
        };
        if kind_of(&types, base).as_deref() != Some("histogram") {
            return Err(err(format!("sample for undeclared family '{name}'")));
        }
        let state = &mut hists
            .iter_mut()
            .find(|(n, _)| n == base)
            .expect("histogram state registered with its TYPE")
            .1;
        match part {
            "bucket" => {
                let le = parse_labels(&labels)
                    .map_err(&err)?
                    .into_iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v)
                    .ok_or_else(|| err(format!("'{name}' bucket without le label")))?;
                let count = value as u64;
                if value < 0.0 || value.fract() != 0.0 {
                    return Err(err(format!("bucket count {value} is not a whole number")));
                }
                if le == "+Inf" {
                    if state.inf.is_some() {
                        return Err(err(format!("'{base}' has two +Inf buckets")));
                    }
                    if count < state.last_count {
                        return Err(err(format!(
                            "'{base}' +Inf bucket {count} below previous bucket {}",
                            state.last_count
                        )));
                    }
                    state.inf = Some(count);
                } else {
                    let bound: f64 = le
                        .parse()
                        .map_err(|_| err(format!("bad le bound '{le}'")))?;
                    if state.inf.is_some() {
                        return Err(err(format!("'{base}' bucket after +Inf")));
                    }
                    if let Some(prev) = state.last_le {
                        if bound <= prev {
                            return Err(err(format!(
                                "'{base}' le bounds not increasing ({prev} then {bound})"
                            )));
                        }
                    }
                    if count < state.last_count {
                        return Err(err(format!(
                            "'{base}' bucket counts not monotone ({} then {count})",
                            state.last_count
                        )));
                    }
                    state.last_le = Some(bound);
                    state.last_count = count;
                }
            }
            "sum" => state.has_sum = true,
            "count" => {
                if value < 0.0 || value.fract() != 0.0 {
                    return Err(err(format!("histogram count {value} is not whole")));
                }
                state.count = Some(value as u64);
            }
            _ => unreachable!(),
        }
    }

    for (name, state) in &hists {
        let inf = state
            .inf
            .ok_or_else(|| format!("histogram '{name}' has no +Inf bucket"))?;
        let count = state
            .count
            .ok_or_else(|| format!("histogram '{name}' has no _count"))?;
        if inf != count {
            return Err(format!(
                "histogram '{name}': +Inf bucket {inf} != _count {count}"
            ));
        }
        if !state.has_sum {
            return Err(format!("histogram '{name}' has no _sum"));
        }
    }

    Ok(PromCheck {
        families: types.len(),
        series: seen_series.len(),
        samples,
    })
}

/// Splits a sample line into `(name, raw label body, value)`.
fn parse_sample(line: &str) -> Result<(String, String, f64), String> {
    if let Some(open) = line.find('{') {
        let close = line
            .rfind('}')
            .filter(|&c| c > open)
            .ok_or_else(|| format!("unterminated label set in '{line}'"))?;
        let value = line[close + 1..].trim();
        if value.is_empty() {
            return Err(format!("sample '{line}' has no value"));
        }
        return Ok((
            line[..open].to_string(),
            line[open + 1..close].to_string(),
            parse_value(value)?,
        ));
    }
    let mut parts = line.splitn(2, ' ');
    let name = parts.next().unwrap_or_default();
    let value = parts
        .next()
        .ok_or_else(|| format!("sample '{line}' has no value"))?;
    Ok((name.to_string(), String::new(), parse_value(value.trim())?))
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .trim()
            .parse()
            .map_err(|_| format!("bad sample value '{s}'")),
    }
}

/// Parses a label body (`k="v",k2="v2"`) into pairs, handling `\"`, `\\`
/// and `\n` escapes in values.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err(format!("empty label name in '{body}'"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label '{key}' value is not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    Some('n') => value.push('\n'),
                    _ => return Err(format!("bad escape in label '{key}'")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value for '{key}'")),
            }
        }
        pairs.push((key, value));
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(c) => return Err(format!("unexpected '{c}' after label value")),
        }
    }
    Ok(pairs)
}

// ---------------------------------------------------------------------------
// The component bundles and the process-global registry.
// ---------------------------------------------------------------------------

/// Engine instruments, recorded by the frontier core and both executors.
#[derive(Clone)]
pub struct EngineMetrics {
    /// Frontier rounds committed (`ftsort_rounds_total`).
    pub rounds: Counter,
    /// Messages delivered into inboxes (`ftsort_messages_delivered_total`).
    pub messages_delivered: Counter,
    /// Elements priced through the cost model on sends
    /// (`ftsort_elements_priced_total`).
    pub elements_priced: Counter,
    /// Whole virtual µs messages spent queued behind busy links
    /// (`ftsort_link_wait_us_total`); zero under uncontended pricing.
    pub link_wait_us: Counter,
    /// Elements per message (`ftsort_msg_elements`).
    pub msg_elements: Histogram,
}

/// Work-stealing scheduler instruments ([`crate::sim`]'s parallel engine).
#[derive(Clone)]
pub struct WsMetrics {
    /// Successful shard steals (`ftsort_ws_steals_total`).
    pub steals: Counter,
    /// Barrier phase crossings (`ftsort_ws_barrier_epochs_total`).
    pub barrier_epochs: Counter,
    /// Workers currently parked on the barrier condvar
    /// (`ftsort_ws_parked_workers`).
    pub parked_workers: Gauge,
}

/// [`crate::sim::pool::BufferPool`] instruments.
#[derive(Clone)]
pub struct PoolMetrics {
    /// Slabs taken (`ftsort_pool_takes_total`).
    pub takes: Counter,
    /// Slabs returned (`ftsort_pool_puts_total`).
    pub puts: Counter,
    /// Slabs currently parked in the shared store
    /// (`ftsort_pool_shared_slabs`).
    pub shared_slabs: Gauge,
    /// High-water mark of parked slabs in any single store — the shared
    /// store or one handle's local free list
    /// (`ftsort_pool_slab_high_water`).
    pub slab_high_water: Gauge,
}

/// Sink/compression pipeline instruments.
#[derive(Clone)]
pub struct SinkMetrics {
    /// Trace records (events + spans) written through a sink
    /// (`ftsort_sink_events_total`).
    pub events: Counter,
    /// Bytes fed into the gzip encoder (`ftsort_gz_bytes_in_total`).
    pub gz_bytes_in: Counter,
    /// Compressed bytes out of the gzip encoder
    /// (`ftsort_gz_bytes_out_total`).
    pub gz_bytes_out: Counter,
}

/// Scheduler-profiler instruments ([`super::sched`]).
#[derive(Clone)]
pub struct SchedMetrics {
    /// Events held in worker rings at the end of the last profiled run
    /// (`ftsort_sched_ring_events`).
    pub ring_events: Gauge,
    /// Profiler ring overflows (`ftsort_sched_events_dropped_total`).
    pub events_dropped: Counter,
}

/// Every instrument bundle of one process, registered together.
#[derive(Clone)]
pub struct RunMetrics {
    /// Engine instruments.
    pub engine: EngineMetrics,
    /// Work-stealing scheduler instruments.
    pub ws: WsMetrics,
    /// Buffer-pool instruments.
    pub pool: PoolMetrics,
    /// Sink/compression instruments.
    pub sink: SinkMetrics,
    /// Scheduler-profiler instruments.
    pub sched: SchedMetrics,
}

impl RunMetrics {
    /// Registers the full instrument set on `registry` (idempotent — the
    /// same names return the same handles).
    pub fn register(registry: &Registry) -> RunMetrics {
        RunMetrics {
            engine: EngineMetrics {
                rounds: registry.counter(
                    "ftsort_rounds_total",
                    "Frontier rounds committed across all runs.",
                ),
                messages_delivered: registry.counter(
                    "ftsort_messages_delivered_total",
                    "Simulated messages delivered into node inboxes.",
                ),
                elements_priced: registry.counter(
                    "ftsort_elements_priced_total",
                    "Elements priced through the cost model on sends.",
                ),
                link_wait_us: registry.counter(
                    "ftsort_link_wait_us_total",
                    "Whole virtual microseconds messages spent queued behind busy links.",
                ),
                msg_elements: registry
                    .histogram("ftsort_msg_elements", "Elements per simulated message."),
            },
            ws: WsMetrics {
                steals: registry.counter(
                    "ftsort_ws_steals_total",
                    "Successful shard steals in the work-stealing scheduler.",
                ),
                barrier_epochs: registry.counter(
                    "ftsort_ws_barrier_epochs_total",
                    "Sense-reversing barrier phase crossings.",
                ),
                parked_workers: registry.gauge(
                    "ftsort_ws_parked_workers",
                    "Workers currently parked on the barrier condvar.",
                ),
            },
            pool: PoolMetrics {
                takes: registry.counter(
                    "ftsort_pool_takes_total",
                    "Slabs taken from the buffer pool.",
                ),
                puts: registry.counter(
                    "ftsort_pool_puts_total",
                    "Slabs returned to the buffer pool.",
                ),
                shared_slabs: registry.gauge(
                    "ftsort_pool_shared_slabs",
                    "Slabs currently parked in the pool's shared store.",
                ),
                slab_high_water: registry.gauge(
                    "ftsort_pool_slab_high_water",
                    "High-water mark of parked slabs in any single pool store.",
                ),
            },
            sink: SinkMetrics {
                events: registry.counter(
                    "ftsort_sink_events_total",
                    "Trace records (events and spans) written through a sink.",
                ),
                gz_bytes_in: registry.counter(
                    "ftsort_gz_bytes_in_total",
                    "Uncompressed bytes fed into the gzip encoder.",
                ),
                gz_bytes_out: registry.counter(
                    "ftsort_gz_bytes_out_total",
                    "Compressed bytes written by the gzip encoder.",
                ),
            },
            sched: SchedMetrics {
                ring_events: registry.gauge(
                    "ftsort_sched_ring_events",
                    "Events held in scheduler-profiler rings after the last profiled run.",
                ),
                events_dropped: registry.counter(
                    "ftsort_sched_events_dropped_total",
                    "Scheduler-profiler ring overflows (events dropped).",
                ),
            },
        }
    }
}

/// The process-global registry + instrument bundle.
pub struct GlobalMetrics {
    /// The registry (render with [`Registry::render_prom`]).
    pub registry: Registry,
    /// The shared instrument bundle components record into.
    pub run: RunMetrics,
}

static GLOBAL: OnceLock<GlobalMetrics> = OnceLock::new();

/// Installs (or returns the already-installed) process-global metrics.
/// After this, engines, the scheduler, pools and sinks constructed
/// anywhere in the process wire themselves to the returned instruments.
pub fn install_global() -> &'static GlobalMetrics {
    GLOBAL.get_or_init(|| {
        let registry = Registry::new();
        let run = RunMetrics::register(&registry);
        GlobalMetrics { registry, run }
    })
}

/// The process-global metrics, if [`install_global`] has run — `None` is
/// the default, and the whole cost of disabled metrics (components hold
/// `Option` handles resolved through this at construction time).
pub fn global() -> Option<&'static GlobalMetrics> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_record() {
        let r = Registry::new();
        let c = r.counter("t_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g", "a gauge");
        g.set(3);
        g.add(2);
        g.sub(1);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
        let h = r.histogram("h", "a histogram");
        for v in [0, 1, 5, 5, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 311);
        let counts = h.snapshot();
        assert_eq!(counts[0], 1); // 0
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[3], 2); // 5, 5
        assert_eq!(counts[9], 1); // 300
    }

    #[test]
    fn registration_is_idempotent_but_kind_clashes_panic() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        assert_eq!(b.get(), 1, "same name shares the same atomic");
        let clash =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.gauge("x_total", "x")));
        assert!(clash.is_err(), "kind clash must panic");
        let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.counter("9bad_total", "x")
        }));
        assert!(bad.is_err(), "invalid names are rejected");
        let suffix =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.counter("no_suffix", "x")));
        assert!(suffix.is_err(), "counters must end in _total");
    }

    #[test]
    fn render_prom_roundtrips_through_the_validator() {
        let r = Registry::new();
        let c = r.counter("ft_rounds_total", "Rounds.");
        c.add(42);
        let g = r.gauge("ft_workers", "Workers with a\nnewline help.");
        g.set(-3);
        let h = r.histogram("ft_sizes", "Sizes.");
        for v in [0, 1, 2, 3, 700] {
            h.record(v);
        }
        let text = r.render_prom();
        assert!(text.contains("# TYPE ft_rounds_total counter"));
        assert!(text.contains("ft_rounds_total 42"));
        assert!(text.contains("ft_workers -3"));
        assert!(text.contains("newline help"), "help is escaped, not split");
        assert!(text.contains("ft_sizes_bucket{le=\"0\"} 1"));
        assert!(text.contains("ft_sizes_bucket{le=\"1\"} 2"));
        assert!(text.contains("ft_sizes_bucket{le=\"3\"} 4"));
        assert!(text.contains("ft_sizes_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("ft_sizes_sum 706"));
        assert!(text.contains("ft_sizes_count 5"));
        let check = validate_prom(&text).expect("self-rendered snapshot validates");
        assert_eq!(check.families, 3);
        assert!(check.samples >= 5);
    }

    #[test]
    fn empty_histogram_renders_validly() {
        let r = Registry::new();
        r.histogram("empty_h", "Empty.");
        let text = r.render_prom();
        assert!(text.contains("empty_h_bucket{le=\"+Inf\"} 0"));
        validate_prom(&text).expect("empty histogram validates");
    }

    #[test]
    fn validator_rejects_malformed_snapshots() {
        // sample for an undeclared family
        assert!(validate_prom("nope 1\n").is_err());
        // duplicate family declaration
        assert!(validate_prom("# TYPE a counter\n# TYPE a counter\na_total 1\n").is_err());
        // duplicate series
        let dup = "# TYPE a_total counter\na_total 1\na_total 2\n";
        assert!(validate_prom(dup).unwrap_err().contains("duplicate series"));
        // negative counter
        assert!(validate_prom("# TYPE a_total counter\na_total -1\n").is_err());
        // missing value
        assert!(validate_prom("# TYPE a_total counter\na_total\n").is_err());
        // non-monotone histogram buckets
        let bad_hist = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n\
             h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prom(bad_hist).unwrap_err().contains("monotone"));
        // le bounds must increase
        let bad_le = "# TYPE h histogram\n\
             h_bucket{le=\"3\"} 1\nh_bucket{le=\"1\"} 2\n\
             h_bucket{le=\"+Inf\"} 2\nh_sum 4\nh_count 2\n";
        assert!(validate_prom(bad_le).unwrap_err().contains("increasing"));
        // +Inf bucket must equal _count
        let bad_inf = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 3\n";
        assert!(validate_prom(bad_inf).unwrap_err().contains("+Inf"));
        // histogram without +Inf
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_prom(no_inf).unwrap_err().contains("+Inf"));
        // unterminated label set
        assert!(validate_prom("# TYPE h histogram\nh_bucket{le=\"1\" 1\n").is_err());
    }

    #[test]
    fn run_metrics_register_everything_and_rerender() {
        let r = Registry::new();
        let m = RunMetrics::register(&r);
        m.engine.rounds.inc();
        m.ws.steals.add(3);
        m.pool.shared_slabs.set(2);
        m.sched.events_dropped.add(1);
        m.engine.msg_elements.record(100);
        let text = r.render_prom();
        let check = validate_prom(&text).expect("full bundle validates");
        assert!(check.families >= 14);
        assert!(text.contains("ftsort_rounds_total 1"));
        assert!(text.contains("ftsort_ws_steals_total 3"));
        // registering again returns the same handles
        let again = RunMetrics::register(&r);
        again.engine.rounds.inc();
        assert_eq!(m.engine.rounds.get(), 2);
    }

    #[test]
    fn global_install_is_idempotent() {
        let a = install_global() as *const GlobalMetrics;
        let b = install_global() as *const GlobalMetrics;
        assert_eq!(a, b);
        assert!(global().is_some());
    }
}
