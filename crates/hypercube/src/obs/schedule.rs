//! Deterministic link-schedule replay — the pricing core behind
//! [`LinkModel::Contended`].
//!
//! Under the contended model every *directed link* (one per `(node,
//! dimension)` pair) carries one message at a time: a message walks its
//! e-cube route in ascending dimension order, waiting for each link's
//! `busy_until` clock before its transfer starts. Arbitration happens at
//! the round barrier, in (round, node-id, program-order) order — exactly
//! the order [`RoundCommitter`] already delivers sends in — so contended
//! virtual time is as deterministic as uncontended time: a pure function
//! of the input, identical on every engine.
//!
//! The same property makes the schedule *replayable*. The algorithms in
//! this workspace are data-oblivious, so the round structure (who runs
//! when, which receive blocks on which send) is a function of the program
//! alone, reconstructible from a run file: [`plan_rounds`] re-derives each
//! event's round from the per-node record order plus FIFO message
//! matching, mirroring the frontier scheduler's wake rule. On top of that,
//! [`reprice`] re-prices a traced run under any `(CostModel, LinkModel)`
//! pair and [`contended_times`] recovers per-message arrival/wait splits
//! and per-link busy intervals for the analyzers.
//!
//! Float arithmetic is not associative, so there is no closed-form
//! "arrival = sent_at + wait + transfer" identity to lean on. Bit-exact
//! agreement between live runs and replays instead comes from sharing
//! *code*: [`LinkLedger::acquire`] is the one routine that advances link
//! clocks, and every consumer — the live commit barrier, the repricer,
//! the critical-path analyzer, the Perfetto exporter — executes its float
//! operations in the same order on the same inputs.
//!
//! [`LinkModel::Contended`]: crate::sim::LinkModel::Contended
//! [`RoundCommitter`]: crate::sim

use super::perfetto::match_messages;
use super::{NodeObservation, RunObservation, SpanRecord};
use crate::address::NodeId;
use crate::cost::CostModel;
use crate::sim::{LinkModel, Trace, TraceEvent, TraceKind};

/// Busy-until clocks for every directed link of the cube.
///
/// Links are acquired in the deterministic commit order; bit-exact
/// live/replay agreement relies on both sides calling this exact routine
/// with the same inputs in the same order.
pub(crate) struct LinkLedger {
    dim: usize,
    busy: Vec<f64>,
}

impl LinkLedger {
    /// All links idle at time zero for a `dim`-cube of `nodes` addresses.
    pub(crate) fn new(dim: usize, nodes: usize) -> Self {
        LinkLedger {
            dim,
            busy: vec![0.0; dim * nodes],
        }
    }

    /// Routes one message along its e-cube links (ascending set bits of
    /// `src ^ dst`), serializing on each link's busy clock. Detour hops
    /// beyond the Hamming distance are charged as an uncontended serial
    /// tail — fault detours take per-route links the dimension walk cannot
    /// name. Returns `(arrival, wait)` where `wait` is the total time the
    /// message spent queued behind busy links.
    pub(crate) fn acquire(
        &mut self,
        src: NodeId,
        dst: NodeId,
        elements: usize,
        hops: u32,
        sent_at: f64,
        cost: &CostModel,
    ) -> (f64, f64) {
        self.acquire_with(src, dst, elements, hops, sent_at, cost, |_, _, _, _, _| ())
    }

    /// [`acquire`](Self::acquire), reporting each link hop to `visit` as
    /// `(hop source node index, dimension, queued_at, start, end)` — the
    /// Perfetto exporter builds its occupancy and queue-depth counter
    /// tracks from these.
    #[allow(clippy::too_many_arguments)] // one message's full addressing + pricing context
    pub(crate) fn acquire_with(
        &mut self,
        src: NodeId,
        dst: NodeId,
        elements: usize,
        hops: u32,
        sent_at: f64,
        cost: &CostModel,
        mut visit: impl FnMut(usize, usize, f64, f64, f64),
    ) -> (f64, f64) {
        let mut t = sent_at;
        let mut wait = 0.0;
        let mut cur = src.raw();
        let direct = src.raw() ^ dst.raw();
        let mut crossed = 0u32;
        for d in 0..self.dim {
            if direct >> d & 1 == 1 {
                let link = cur as usize * self.dim + d;
                let start = if self.busy[link] > t {
                    wait += self.busy[link] - t;
                    self.busy[link]
                } else {
                    t
                };
                let end = start + cost.transfer(elements, 1);
                visit(cur as usize, d, t, start, end);
                self.busy[link] = end;
                t = end;
                cur ^= 1 << d;
                crossed += 1;
            }
        }
        if hops > crossed {
            t += cost.transfer(elements, hops - crossed);
        }
        (t, wait)
    }
}

/// Re-derives each item's frontier round from per-node program order.
///
/// `per_node[n]` lists node `n`'s items in program order as `(id,
/// awaits)`: `awaits = Some(s)` marks a receive that blocks until item
/// `s` (its matched send) has been *delivered* — assigned to a strictly
/// earlier round. This mirrors the engines' scheduler exactly: every
/// participant starts in round 0, runs until a receive whose message has
/// not been delivered, and wakes in the round after the barrier that
/// delivers it. Returns the round of every id.
fn plan_rounds(per_node: &[Vec<(usize, Option<usize>)>], total: usize) -> Vec<u32> {
    let mut rounds = vec![0u32; total];
    let mut assigned = vec![false; total];
    let mut p = vec![0usize; per_node.len()];
    let mut forced = vec![false; per_node.len()];
    let mut parked: Vec<(usize, usize)> = Vec::new();
    let mut frontier: Vec<usize> = (0..per_node.len())
        .filter(|&n| !per_node[n].is_empty())
        .collect();
    let mut r: u32 = 0;
    while !frontier.is_empty() {
        for &n in &frontier {
            while let Some(&(id, awaits)) = per_node[n].get(p[n]) {
                if let Some(s) = awaits {
                    let delivered = assigned[s] && rounds[s] < r;
                    if !delivered && !forced[n] {
                        parked.push((n, s));
                        break;
                    }
                    forced[n] = false;
                }
                rounds[id] = r;
                assigned[id] = true;
                p[n] += 1;
            }
        }
        frontier.clear();
        parked.retain(|&(n, s)| {
            if assigned[s] && rounds[s] <= r {
                frontier.push(n);
                false
            } else {
                true
            }
        });
        if frontier.is_empty() && !parked.is_empty() {
            // A truncated or hand-edited file can await a send that never
            // runs; force the blocked receives through deterministically
            // rather than spinning.
            for &(n, _) in &parked {
                forced[n] = true;
                frontier.push(n);
            }
            parked.clear();
        }
        frontier.sort_unstable();
        r += 1;
    }
    rounds
}

/// Rounds plus FIFO send matching for an observation's trace: for each
/// event its round, and for each receive the index of its matched send
/// (`usize::MAX` when the file holds no matching send).
fn plan_event_rounds(obs: &RunObservation) -> (Vec<u32>, Vec<usize>) {
    let events = obs.trace.events();
    let mut send_of = vec![usize::MAX; events.len()];
    for (s, r) in match_messages(&obs.trace) {
        send_of[r] = s;
    }
    let node_count = obs.nodes.len();
    let mut per_node: Vec<Vec<(usize, Option<usize>)>> = vec![Vec::new(); node_count];
    for (i, e) in events.iter().enumerate() {
        let awaits = match e.kind {
            TraceKind::Recv { .. } if send_of[i] != usize::MAX => Some(send_of[i]),
            _ => None,
        };
        per_node[e.node.index().min(node_count - 1)].push((i, awaits));
    }
    (plan_rounds(&per_node, events.len()), send_of)
}

/// Event indices in canonical commit order: (round, node id, per-node
/// program order) — the order the barrier flushes records and acquires
/// links in. The sort is stable, so within one `(round, node)` group the
/// trace's per-node program order is preserved.
fn canonical_order(events: &[TraceEvent], rounds: &[u32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| (rounds[i], events[i].node.raw()));
    order
}

/// Reconstructs the deterministic receive-queue high-water marks from the
/// round schedule: per round, first the round's receives drain their
/// inboxes (they consumed during the polls), then the round's sends
/// enqueue at the barrier in commit order, updating each destination's
/// peak after every enqueue — the same bookkeeping the live committer
/// does.
pub(crate) fn reconstruct_inbox_peaks(
    events: &[TraceEvent],
    rounds: &[u32],
    node_count: usize,
) -> Vec<u64> {
    let order = canonical_order(events, rounds);
    let mut len = vec![0i64; node_count];
    let mut peak = vec![0u64; node_count];
    let mut i = 0;
    while i < order.len() {
        let r = rounds[order[i]];
        let mut j = i;
        while j < order.len() && rounds[order[j]] == r {
            j += 1;
        }
        for &k in &order[i..j] {
            if matches!(events[k].kind, TraceKind::Recv { .. }) {
                len[events[k].node.index()] -= 1;
            }
        }
        for &k in &order[i..j] {
            if let TraceKind::Send { to, .. } = events[k].kind {
                let d = to.index();
                len[d] += 1;
                peak[d] = peak[d].max(len[d].max(0) as u64);
            }
        }
        i = j;
    }
    peak
}

/// One link acquisition: the message reached the link's queue at
/// `queued_at`, held it from `start` to `end`.
pub(crate) struct LinkSpan {
    pub(crate) dim: usize,
    pub(crate) queued_at: f64,
    pub(crate) start: f64,
    pub(crate) end: f64,
}

/// Per-message arrival/wait splits and the full link-busy timeline of a
/// contended run, recovered by replaying the recorded schedule through
/// [`LinkLedger`] in commit order. For an observation produced live under
/// [`LinkModel::Contended`] the recovered values are bit-identical to the
/// ones the engine computed.
pub(crate) struct ContendedTimes {
    /// Per event index: a receive's message arrival (its send carries the
    /// same value); `NaN` for computes and unmatched receives.
    pub(crate) arrival: Vec<f64>,
    /// Per event index: the message's total link wait (send and receive
    /// sides carry the same value); `0.0` elsewhere.
    pub(crate) wait: Vec<f64>,
    /// Every link acquisition, in commit order.
    pub(crate) links: Vec<LinkSpan>,
}

/// Replays `obs`'s schedule under its own cost model and the contended
/// link model. See [`ContendedTimes`].
pub(crate) fn contended_times(obs: &RunObservation) -> ContendedTimes {
    let events = obs.trace.events();
    let (rounds, send_of) = if events.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        plan_event_rounds(obs)
    };
    let mut arrival = vec![f64::NAN; events.len()];
    let mut wait = vec![0.0f64; events.len()];
    let mut links = Vec::new();
    let mut ledger = LinkLedger::new(obs.dim, obs.nodes.len());
    for &i in &canonical_order(events, &rounds) {
        if let TraceKind::Send { to, elements, hops } = events[i].kind {
            let (a, w) = ledger.acquire_with(
                events[i].node,
                to,
                elements,
                hops,
                events[i].time,
                &obs.cost,
                |_, d, queued_at, start, end| {
                    links.push(LinkSpan {
                        dim: d,
                        queued_at,
                        start,
                        end,
                    });
                },
            );
            arrival[i] = a;
            wait[i] = w;
        }
    }
    for (i, e) in events.iter().enumerate() {
        if matches!(e.kind, TraceKind::Recv { .. }) && send_of[i] != usize::MAX {
            arrival[i] = arrival[send_of[i]];
            wait[i] = wait[send_of[i]];
        }
    }
    ContendedTimes {
        arrival,
        wait,
        links,
    }
}

/// A completed re-pricing: the new observation plus the schedule
/// annotations the threaded engine's contended post-pass needs to emit
/// sink records in canonical order.
pub(crate) struct Reprice {
    /// The re-priced observation.
    pub(crate) obs: RunObservation,
    /// Round of each event, indexed like the *source* trace.
    pub(crate) rounds: Vec<u32>,
    /// Re-priced events in source-trace index order (before re-sorting).
    pub(crate) new_events: Vec<TraceEvent>,
    /// Per-node `(old time, new time)` checkpoints, program order.
    checkpoints: Vec<Vec<(f64, f64)>>,
}

impl Reprice {
    /// Translates an old-timeline instant on node `n` into the new
    /// timeline (piecewise through the event checkpoints, carrying
    /// un-evented residuals verbatim — same map `replay::recost` uses).
    pub(crate) fn map_time(&self, n: usize, t: f64) -> f64 {
        map_checkpoint(&self.checkpoints[n], t)
    }
}

fn map_checkpoint(cps: &[(f64, f64)], t: f64) -> f64 {
    match cps.partition_point(|&(old, _)| old <= t) {
        0 => t,
        p => {
            let (old, new) = cps[p - 1];
            new + (t - old)
        }
    }
}

/// Re-prices a traced run under a new `(CostModel, LinkModel)` pair.
///
/// The recorded schedule — rounds, message matching, per-node program
/// order — is cost- and contention-independent (round scheduling blocks
/// on *delivery rounds*, never on clock values), so it is replayed as-is
/// with every charge recomputed: sends advance the port by
/// `transfer(elements, min(hops,1))`, barriers price each round's sends
/// through [`LinkLedger`] (or the uncontended closed form), and receives
/// jump to `max(local, arrival)`. Un-evented advances (`charge_compute`)
/// are carried into the new timeline verbatim as residuals, exactly like
/// [`super::replay::recost`]. The result is bit-identical to a live run
/// under the target model (pinned by `tests/obs_invariants.rs`).
///
/// Errors if the observation carries no trace events — without the event
/// stream there is no schedule to re-price.
pub fn reprice(
    obs: &RunObservation,
    new_cost: CostModel,
    new_model: LinkModel,
) -> Result<RunObservation, String> {
    Ok(reprice_full(obs, new_cost, new_model)?.obs)
}

pub(crate) fn reprice_full(
    obs: &RunObservation,
    new_cost: CostModel,
    new_model: LinkModel,
) -> Result<Reprice, String> {
    if obs.trace.is_empty() {
        return Err("run has no trace events — was the sort traced?".into());
    }
    let events = obs.trace.events();
    let len = obs.nodes.len();
    let (rounds, send_of) = plan_event_rounds(obs);
    let order = canonical_order(events, &rounds);

    let mut old_clock = vec![0.0f64; len];
    let mut new_clock = vec![0.0f64; len];
    let mut blocked = vec![0.0f64; len];
    let mut link_wait = vec![0.0f64; len];
    let mut dim_busy: Vec<Vec<f64>> = vec![vec![0.0; obs.dim]; len];
    let mut new_time = vec![0.0f64; events.len()];
    // Per *send* index: the message's arrival and wait under the new
    // model, filled at its round's barrier.
    let mut arrival = vec![f64::NAN; events.len()];
    let mut waits = vec![0.0f64; events.len()];
    let mut checkpoints: Vec<Vec<(f64, f64)>> = vec![Vec::new(); len];
    let mut ledger = LinkLedger::new(obs.dim, len);
    let mut pending_sends: Vec<usize> = Vec::new();
    let mut cur_round = 0u32;

    let mut idx = 0;
    loop {
        let boundary = idx == order.len() || rounds[order[idx]] != cur_round;
        if boundary {
            // The round's barrier: price its sends in commit order.
            for &s in &pending_sends {
                let (to, elements, hops) = match events[s].kind {
                    TraceKind::Send { to, elements, hops } => (to, elements, hops),
                    _ => unreachable!("pending_sends holds sends"),
                };
                let sent_at = new_time[s];
                let (a, w) = match new_model {
                    LinkModel::Contended => {
                        ledger.acquire(events[s].node, to, elements, hops, sent_at, &new_cost)
                    }
                    LinkModel::Uncontended => (sent_at + new_cost.transfer(elements, hops), 0.0),
                };
                arrival[s] = a;
                waits[s] = w;
            }
            pending_sends.clear();
            if idx == order.len() {
                break;
            }
            cur_round = rounds[order[idx]];
            continue;
        }
        let i = order[idx];
        idx += 1;
        let e = &events[i];
        let n = e.node.index();
        match e.kind {
            TraceKind::Send { to, elements, hops } => {
                let predicted = old_clock[n] + obs.cost.transfer(elements, hops.min(1));
                if e.time != predicted {
                    new_clock[n] += e.time - predicted;
                }
                new_clock[n] += new_cost.transfer(elements, hops.min(1));
                let direct = e.node.raw() ^ to.raw();
                for (d, busy) in dim_busy[n].iter_mut().enumerate() {
                    if direct >> d & 1 == 1 {
                        *busy += new_cost.transfer(elements, 1);
                    }
                }
                pending_sends.push(i);
            }
            TraceKind::Recv { .. } => {
                let before = new_clock[n];
                let s = send_of[i];
                if s == usize::MAX {
                    // No matching send in the file (truncated run):
                    // preserve the recorded forward jump.
                    new_clock[n] += (e.time - old_clock[n]).max(0.0);
                } else {
                    new_clock[n] = new_clock[n].max(arrival[s]);
                    link_wait[n] += waits[s];
                }
                blocked[n] += new_clock[n] - before;
            }
            TraceKind::Compute { comparisons } => {
                let predicted = old_clock[n] + obs.cost.compare(comparisons);
                if e.time != predicted {
                    new_clock[n] += e.time - predicted;
                }
                new_clock[n] += new_cost.compare(comparisons);
            }
        }
        old_clock[n] = e.time;
        new_time[i] = new_clock[n];
        checkpoints[n].push((e.time, new_clock[n]));
    }

    let new_events: Vec<TraceEvent> = events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mut e = *e;
            e.time = new_time[i];
            if let TraceKind::Recv { ref mut wait, .. } = e.kind {
                let s = send_of[i];
                *wait = if s == usize::MAX { 0.0 } else { waits[s] };
            }
            e
        })
        .collect();

    let nodes = obs
        .nodes
        .iter()
        .enumerate()
        .map(|(n, slot)| {
            slot.as_ref().map(|node| {
                let mut metrics = node.metrics.clone();
                metrics.blocked_us = blocked[n];
                metrics.link_wait_us = link_wait[n];
                metrics.dim_busy_us = dim_busy[n].clone();
                NodeObservation {
                    node: node.node,
                    clock: map_checkpoint(&checkpoints[n], node.clock),
                    stats: node.stats,
                    spans: node
                        .spans
                        .iter()
                        .map(|s| SpanRecord {
                            phase: s.phase,
                            begin: map_checkpoint(&checkpoints[n], s.begin),
                            end: map_checkpoint(&checkpoints[n], s.end),
                        })
                        .collect(),
                    metrics,
                }
            })
        })
        .collect();

    Ok(Reprice {
        obs: RunObservation {
            dim: obs.dim,
            cost: new_cost,
            link_model: new_model,
            trace: Trace::from_events(new_events.clone()),
            nodes,
            key_type: obs.key_type.clone(),
        },
        rounds,
        new_events,
        checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Tag;

    #[test]
    fn ledger_serializes_a_shared_link() {
        let cost = CostModel {
            t_sr: 1.0,
            t_c: 1.0,
            t_startup: 0.0,
        };
        let mut ledger = LinkLedger::new(2, 4);
        // Two messages from node 0 across dimension 0, back to back.
        let (a1, w1) = ledger.acquire(NodeId::new(0), NodeId::new(1), 10, 1, 0.0, &cost);
        assert_eq!((a1, w1), (10.0, 0.0));
        let (a2, w2) = ledger.acquire(NodeId::new(0), NodeId::new(1), 10, 1, 2.0, &cost);
        assert_eq!(a2, 20.0, "second transfer starts when the link frees");
        assert_eq!(w2, 8.0);
        // The reverse direction is a different directed link.
        let (a3, w3) = ledger.acquire(NodeId::new(1), NodeId::new(0), 10, 1, 0.0, &cost);
        assert_eq!((a3, w3), (10.0, 0.0));
    }

    #[test]
    fn ledger_charges_detours_as_serial_tail() {
        let cost = CostModel {
            t_sr: 1.0,
            t_c: 1.0,
            t_startup: 5.0,
        };
        let mut ledger = LinkLedger::new(3, 8);
        // Hamming distance 1, but 3 hops charged (fault detour).
        let (a, w) = ledger.acquire(NodeId::new(0), NodeId::new(1), 4, 3, 0.0, &cost);
        assert_eq!(w, 0.0);
        assert_eq!(a, cost.transfer(4, 1) + cost.transfer(4, 2));
        // Self-send crosses no link.
        let (a, w) = ledger.acquire(NodeId::new(2), NodeId::new(2), 4, 0, 7.0, &cost);
        assert_eq!((a, w), (7.0, 0.0));
    }

    #[test]
    fn plan_rounds_mirrors_the_frontier_wake_rule() {
        // Node 0: send(id 0), recv awaiting id 3 (id 1).
        // Node 1: recv awaiting id 0 (id 2), send (id 3).
        let per_node = vec![vec![(0, None), (1, Some(3))], vec![(2, Some(0)), (3, None)]];
        let rounds = plan_rounds(&per_node, 4);
        // Round 0: node 0 sends then parks; node 1 parks immediately.
        // Round 1: node 1 wakes (send 0 delivered at barrier 0), recvs and
        // sends. Round 2: node 0 wakes (send 3 delivered at barrier 1).
        assert_eq!(rounds, vec![0, 2, 1, 1]);
    }

    #[test]
    fn inbox_peaks_follow_barrier_order() {
        let ev = |node: u32, kind| TraceEvent {
            time: 0.0,
            node: NodeId::new(node),
            tag: Tag::new(1),
            kind,
        };
        // Round 0: nodes 0 and 1 each send one message to node 2;
        // round 1: node 2 consumes both. Peak at node 2 is 2.
        let events = vec![
            ev(
                0,
                TraceKind::Send {
                    to: NodeId::new(2),
                    elements: 1,
                    hops: 1,
                },
            ),
            ev(
                1,
                TraceKind::Send {
                    to: NodeId::new(2),
                    elements: 1,
                    hops: 2,
                },
            ),
            ev(
                2,
                TraceKind::Recv {
                    from: NodeId::new(0),
                    elements: 1,
                    wait: 0.0,
                },
            ),
            ev(
                2,
                TraceKind::Recv {
                    from: NodeId::new(1),
                    elements: 1,
                    wait: 0.0,
                },
            ),
        ];
        let rounds = vec![0, 0, 1, 1];
        let peaks = reconstruct_inbox_peaks(&events, &rounds, 4);
        assert_eq!(peaks, vec![0, 0, 2, 0]);
    }
}
