//! Critical-path extraction over a completed run's happens-before graph.
//!
//! The graph has one edge class per node (program order: each traced
//! event happens after the previous one on the same node) plus one per
//! message (a receive happens after its send, delayed by the transfer
//! cost). The *critical path* is the chain of edges that produced the
//! run's makespan: walking it tells you which phases actually gated the
//! finish time, which is exactly the attribution question behind the
//! paper's Table 1/2 overhead columns.
//!
//! The walk runs **backward** from the node with the largest final clock.
//! At each receive we recompute the message's arrival time
//! `send_event.time + cost.transfer(elements, hops)` — reproducible
//! exactly because the engines stamp `sent_at` with the sender's clock
//! *after* the send (the send event's own timestamp) and
//! `VirtualClock::receive` takes `max(local, arrival)` with no further
//! arithmetic. If the receive's timestamp equals the arrival, the message
//! edge was binding (ties prefer the transfer edge — a wait of zero still
//! means the node had nothing else to do) and the walk jumps to the
//! sender; otherwise local work was binding and the walk continues on the
//! same node. Segments are contiguous over `[0, makespan]` by
//! construction, so per-phase attribution sums to the makespan (up to
//! float dust from telescoping differences).
//!
//! Requires tracing: the walk is over trace events, so run the engine
//! `with_tracing(true)`.

use super::{RunObservation, SpanRecord};
use crate::address::NodeId;
use crate::sim::{LinkModel, TraceKind};
use std::fmt::Write as _;

/// Why a stretch of the critical path took the time it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// The node itself was computing (or locally bound across a receive).
    Local,
    /// A message transfer gated progress: the receiver sat waiting.
    Transfer,
    /// The binding message sat queued behind busy links before its
    /// transfer began — only produced under [`LinkModel::Contended`].
    Wait,
}

/// One contiguous stretch of the critical path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathSegment {
    /// The node whose clock this stretch ran on (the *receiver* for
    /// transfer segments).
    pub node: NodeId,
    /// The sending node, for transfer segments.
    pub from: Option<NodeId>,
    /// Virtual start, µs.
    pub begin: f64,
    /// Virtual end, µs (`>= begin`).
    pub end: f64,
    /// Local work or message transfer.
    pub kind: SegmentKind,
}

impl PathSegment {
    /// Segment length in µs.
    pub fn duration(&self) -> f64 {
        self.end - self.begin
    }
}

/// The extracted critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// The run's makespan (the path's total extent), µs.
    pub makespan: f64,
    /// The node that finished last — where the backward walk started.
    pub end_node: NodeId,
    /// Contiguous segments in forward time order, covering
    /// `[0, makespan]`.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Extracts the critical path from a traced run. Returns `None` when
    /// the observation has no trace (tracing was off) or no participants.
    pub fn compute(obs: &RunObservation) -> Option<CriticalPath> {
        let end = obs.participants().max_by(|a, b| {
            a.clock
                .total_cmp(&b.clock)
                .then(b.node.raw().cmp(&a.node.raw()))
        })?;
        if obs.trace.is_empty() {
            return None;
        }
        let events = obs.trace.events();

        // Per-node ascending lists of global event indices.
        let nodes_len = obs.nodes.len();
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); nodes_len];
        for (i, e) in events.iter().enumerate() {
            per_node[e.node.index()].push(i);
        }
        // recv event index -> send event index
        let mut send_of = vec![usize::MAX; events.len()];
        for (s, r) in super::perfetto::match_messages(&obs.trace) {
            send_of[r] = s;
        }
        // Under contention, arrivals come from replaying the schedule
        // through the shared link ledger — bit-identical to the live
        // engine's values. The uncontended closed form stays inline so
        // that path's floats are untouched.
        let contended =
            (obs.link_model == LinkModel::Contended).then(|| super::schedule::contended_times(obs));

        let mut segments: Vec<PathSegment> = Vec::new();
        let mut node = end.node;
        let mut cursor = end.clock;
        // iterate this node's events at local positions < bound
        let mut bound = per_node[node.index()].len();
        loop {
            let list = &per_node[node.index()];
            let mut jumped = false;
            while bound > 0 {
                bound -= 1;
                let idx = list[bound];
                let e = &events[idx];
                if let TraceKind::Recv { .. } = e.kind {
                    let s_idx = send_of[idx];
                    if s_idx != usize::MAX {
                        let s = &events[s_idx];
                        let (elements, hops) = match s.kind {
                            TraceKind::Send { elements, hops, .. } => (elements, hops),
                            _ => unreachable!("matched send is a Send event"),
                        };
                        let (arrival, wait) = match &contended {
                            Some(ct) => (ct.arrival[idx], ct.wait[idx]),
                            None => (s.time + obs.cost.transfer(elements, hops), 0.0),
                        };
                        if arrival == e.time {
                            // The transfer edge was binding: close the
                            // local stretch after the receive, record the
                            // transfer (split off the link-queue wait,
                            // front-aligned, if any), jump to the sender.
                            if cursor > e.time {
                                segments.push(PathSegment {
                                    node,
                                    from: None,
                                    begin: e.time,
                                    end: cursor,
                                    kind: SegmentKind::Local,
                                });
                            }
                            segments.push(PathSegment {
                                node,
                                from: Some(s.node),
                                begin: if wait > 0.0 { s.time + wait } else { s.time },
                                end: e.time,
                                kind: SegmentKind::Transfer,
                            });
                            if wait > 0.0 {
                                segments.push(PathSegment {
                                    node,
                                    from: Some(s.node),
                                    begin: s.time,
                                    end: s.time + wait,
                                    kind: SegmentKind::Wait,
                                });
                            }
                            cursor = s.time;
                            node = s.node;
                            // resume on the sender strictly before its send
                            let s_list = &per_node[node.index()];
                            bound = s_list.iter().position(|&g| g == s_idx).unwrap();
                            jumped = true;
                            break;
                        }
                    }
                }
            }
            if !jumped {
                // Program start reached: everything left is local.
                if cursor > 0.0 {
                    segments.push(PathSegment {
                        node,
                        from: None,
                        begin: 0.0,
                        end: cursor,
                        kind: SegmentKind::Local,
                    });
                }
                break;
            }
        }
        segments.reverse();
        Some(CriticalPath {
            makespan: end.clock,
            end_node: end.node,
            segments,
        })
    }

    /// Attributes the path's time to phases: each segment is charged to
    /// the innermost span (smallest duration, ties to the latest begin)
    /// covering its midpoint on its node; time outside any span is
    /// charged to `(unattributed)`. Rows come back in first-occurrence
    /// order along the path and sum to the makespan (up to float dust).
    pub fn attribute(
        &self,
        obs: &RunObservation,
        namer: &dyn Fn(u16) -> Option<&'static str>,
    ) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = Vec::new();
        for seg in &self.segments {
            let name = match covering_span(obs, seg.node, (seg.begin + seg.end) / 2.0) {
                Some(span) => match namer(span.phase) {
                    Some(s) => s.to_string(),
                    None => format!("phase-{}", span.phase),
                },
                None => "(unattributed)".to_string(),
            };
            match rows.iter_mut().find(|(n, _)| *n == name) {
                Some((_, us)) => *us += seg.duration(),
                None => rows.push((name, seg.duration())),
            }
        }
        rows
    }
}

/// The innermost span on `node` covering virtual time `t`.
pub(crate) fn covering_span(obs: &RunObservation, node: NodeId, t: f64) -> Option<SpanRecord> {
    let spans = &obs.nodes.get(node.index())?.as_ref()?.spans;
    spans
        .iter()
        .filter(|s| s.contains(t))
        .min_by(|a, b| {
            a.duration()
                .total_cmp(&b.duration())
                .then(b.begin.total_cmp(&a.begin))
        })
        .copied()
}

/// Renders the standard critical-path report body: makespan and transfer
/// share, the per-phase on-path attribution table, and the gantt chart.
/// This is the shared renderer behind the `critical_path` bench binary
/// and `ftsort-cli replay --critical-path`, so a live run and its replay
/// can be compared byte for byte.
pub fn render_report(
    obs: &RunObservation,
    path: &CriticalPath,
    namer: &dyn Fn(u16) -> Option<&'static str>,
    width: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "makespan {:.1} us, path of {} segments ending at node {}",
        path.makespan,
        path.segments.len(),
        path.end_node.raw()
    );
    let transfer_us: f64 = path
        .segments
        .iter()
        .filter(|s| s.kind == SegmentKind::Transfer)
        .map(|s| s.duration())
        .sum();
    let wait_us: f64 = path
        .segments
        .iter()
        .filter(|s| s.kind == SegmentKind::Wait)
        .map(|s| s.duration())
        .sum();
    if wait_us > 0.0 {
        let _ = writeln!(
            out,
            "gated by message transfers for {:.1} us ({:.1}% of the path)",
            transfer_us,
            100.0 * transfer_us / path.makespan
        );
        let _ = writeln!(
            out,
            "queued behind busy links for {:.1} us ({:.1}% of the path)\n",
            wait_us,
            100.0 * wait_us / path.makespan
        );
    } else {
        let _ = writeln!(
            out,
            "gated by message transfers for {:.1} us ({:.1}% of the path)\n",
            transfer_us,
            100.0 * transfer_us / path.makespan
        );
    }
    let _ = writeln!(out, "{:<16} {:>12} {:>7}", "phase", "on-path us", "share");
    let _ = writeln!(out, "{}", "-".repeat(37));
    let rows = path.attribute(obs, namer);
    let mut sum = 0.0;
    for (name, us) in &rows {
        sum += us;
        let _ = writeln!(
            out,
            "{name:<16} {us:>12.1} {:>6.1}%",
            100.0 * us / path.makespan
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(37));
    let _ = writeln!(
        out,
        "{:<16} {sum:>12.1} {:>6.1}%\n",
        "total",
        100.0 * sum / path.makespan
    );
    debug_assert!((sum - path.makespan).abs() <= 1e-6 * path.makespan.max(1.0));
    out.push_str(&gantt(obs, path, namer, width));
    out
}

/// Renders an ASCII gantt chart of the run: one row per node, one column
/// per time slice, letters keyed to phase names (legend below), with the
/// critical path capitalized (`*` where it crosses uninstrumented time).
/// `·` is instrumentation-free time, space is time after the node's final
/// clock.
pub fn gantt(
    obs: &RunObservation,
    path: &CriticalPath,
    namer: &dyn Fn(u16) -> Option<&'static str>,
    width: usize,
) -> String {
    let width = width.max(10);
    let makespan = path.makespan.max(f64::MIN_POSITIVE);
    let mut legend: Vec<String> = Vec::new();
    let letter = |i: usize| (b'a' + (i % 26) as u8) as char;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "gantt: {} cols x {:.1} us/col, makespan {:.1} us, critical path ends at node {}",
        width,
        makespan / width as f64,
        makespan,
        path.end_node.raw()
    );
    for n in obs.participants() {
        let mut row = String::with_capacity(width);
        for col in 0..width {
            let t = (col as f64 + 0.5) * makespan / width as f64;
            let on_path = path
                .segments
                .iter()
                .any(|s| s.node == n.node && s.begin <= t && t <= s.end);
            let ch = if t > n.clock {
                ' '
            } else {
                match covering_span(obs, n.node, t) {
                    Some(span) => {
                        let name = match namer(span.phase) {
                            Some(s) => s.to_string(),
                            None => format!("phase-{}", span.phase),
                        };
                        let idx = match legend.iter().position(|l| *l == name) {
                            Some(i) => i,
                            None => {
                                legend.push(name);
                                legend.len() - 1
                            }
                        };
                        let c = letter(idx);
                        if on_path {
                            c.to_ascii_uppercase()
                        } else {
                            c
                        }
                    }
                    None if on_path => '*',
                    None => '·',
                }
            };
            row.push(ch);
        }
        let mut spans_us: Vec<(f64, f64)> = n.spans.iter().map(|s| (s.begin, s.end)).collect();
        let busy = super::union_us(&mut spans_us);
        let _ = writeln!(
            out,
            "P{:<3} |{row}| busy {:>5.1}% blocked {:>5.1}% idle {:>5.1}%",
            n.node.raw(),
            100.0 * busy / makespan,
            100.0 * n.metrics.blocked_us / makespan,
            100.0 * (n.clock - busy).max(0.0) / makespan,
        );
    }
    if !legend.is_empty() {
        out.push_str("legend:");
        for (i, name) in legend.iter().enumerate() {
            let _ = write!(out, " {}={}", letter(i), name);
        }
        out.push('\n');
    }
    out.push_str("(uppercase/'*' = on the critical path, '·' = outside any span)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::obs::{NodeMetrics, NodeObservation};
    use crate::sim::{Tag, Trace, TraceEvent};
    use crate::stats::RunStats;

    /// Hand-built two-node run: node 1 computes 10us, sends 4 elements
    /// 1 hop to node 0, which was waiting since t=2. Transfer cost under
    /// `paper_form` (startup-free): 3.2 * 4 * 1 = 12.8us on the wire, and
    /// the sender charges itself the same for the port. Send event time =
    /// 22.8, arrival at node 0 = 22.8 + 12.8 = 35.6 (binding: node 0's
    /// local clock was 2).
    fn two_node_obs() -> RunObservation {
        let cost = CostModel::paper_form();
        let tag = Tag::phase(3, 0, 0);
        let send_time = 10.0 + cost.transfer(4, 1);
        let arrival = send_time + cost.transfer(4, 1);
        let trace = Trace::from_events(vec![
            TraceEvent {
                time: 2.0,
                node: NodeId::new(0),
                tag: Tag::new(0),
                kind: TraceKind::Compute { comparisons: 1 },
            },
            TraceEvent {
                time: 10.0,
                node: NodeId::new(1),
                tag: Tag::new(0),
                kind: TraceKind::Compute { comparisons: 5 },
            },
            TraceEvent {
                time: send_time,
                node: NodeId::new(1),
                tag,
                kind: TraceKind::Send {
                    to: NodeId::new(0),
                    elements: 4,
                    hops: 1,
                },
            },
            TraceEvent {
                time: arrival,
                node: NodeId::new(0),
                tag,
                kind: TraceKind::Recv {
                    from: NodeId::new(1),
                    elements: 4,
                    wait: 0.0,
                },
            },
        ]);
        let node = |id: u32, clock: f64, spans: Vec<SpanRecord>| {
            Some(NodeObservation {
                node: NodeId::new(id),
                clock,
                stats: RunStats::new(),
                spans,
                metrics: NodeMetrics::new(1),
            })
        };
        RunObservation {
            key_type: None,
            dim: 1,
            cost,
            link_model: LinkModel::Uncontended,
            trace,
            nodes: vec![
                node(
                    0,
                    arrival + 1.0,
                    vec![SpanRecord {
                        phase: 3,
                        begin: 0.0,
                        end: arrival + 1.0,
                    }],
                ),
                node(
                    1,
                    send_time,
                    vec![SpanRecord {
                        phase: 9,
                        begin: 0.0,
                        end: send_time,
                    }],
                ),
            ],
        }
    }

    #[test]
    fn walks_across_the_binding_transfer() {
        let obs = two_node_obs();
        let cp = CriticalPath::compute(&obs).expect("path");
        assert_eq!(cp.end_node, NodeId::new(0));
        let makespan = obs.makespan();
        assert_eq!(cp.makespan, makespan);
        // forward order: node 1 local, transfer 1->0, node 0 local tail
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.segments[0].node, NodeId::new(1));
        assert_eq!(cp.segments[0].kind, SegmentKind::Local);
        assert_eq!(cp.segments[0].begin, 0.0);
        assert_eq!(cp.segments[1].kind, SegmentKind::Transfer);
        assert_eq!(cp.segments[1].from, Some(NodeId::new(1)));
        assert_eq!(cp.segments[1].node, NodeId::new(0));
        assert_eq!(cp.segments[2].kind, SegmentKind::Local);
        assert_eq!(cp.segments[2].end, makespan);
        // contiguous
        assert_eq!(cp.segments[0].end, cp.segments[1].begin);
        assert_eq!(cp.segments[1].end, cp.segments[2].begin);
        // attribution sums to the makespan
        let namer = |p: u16| match p {
            3 => Some("recv-side"),
            9 => Some("send-side"),
            _ => None,
        };
        let rows = cp.attribute(&obs, &namer);
        let total: f64 = rows.iter().map(|(_, us)| us).sum();
        assert!((total - makespan).abs() < 1e-9 * makespan.max(1.0));
        assert_eq!(rows[0].0, "send-side");
        // transfer + tail both land on node 0's span
        assert_eq!(rows[1].0, "recv-side");
    }

    #[test]
    fn local_bound_receive_stays_on_the_node() {
        // Same trace, but pretend the receiver's clock was already past
        // the arrival: bump the recv event time so arrival != recv time.
        let mut obs = two_node_obs();
        let mut events = obs.trace.events().to_vec();
        for e in &mut events {
            if matches!(e.kind, TraceKind::Recv { .. }) {
                e.time += 5.0; // now local-bound (arrival < recv time)
            }
        }
        let clock = events.iter().map(|e| e.time).fold(0.0, f64::max) + 1.0;
        obs.trace = Trace::from_events(events);
        if let Some(n0) = &mut obs.nodes[0] {
            n0.clock = clock;
        }
        let cp = CriticalPath::compute(&obs).expect("path");
        // the walk never leaves node 0
        assert!(cp.segments.iter().all(|s| s.node == NodeId::new(0)));
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.segments[0].kind, SegmentKind::Local);
        assert_eq!(cp.segments[0].begin, 0.0);
        assert_eq!(cp.segments[0].end, clock);
    }

    #[test]
    fn no_trace_means_no_path() {
        let mut obs = two_node_obs();
        obs.trace = Trace::default();
        assert!(CriticalPath::compute(&obs).is_none());
    }

    #[test]
    fn gantt_renders_all_nodes_and_legend() {
        let obs = two_node_obs();
        let cp = CriticalPath::compute(&obs).expect("path");
        let namer = |p: u16| match p {
            3 => Some("recv-side"),
            9 => Some("send-side"),
            _ => None,
        };
        let chart = gantt(&obs, &cp, &namer, 40);
        assert!(chart.contains("P0"));
        assert!(chart.contains("P1"));
        assert!(chart.contains("legend:"));
        assert!(chart.contains("recv-side"));
        assert!(chart.contains("send-side"));
        // node 1's span is on the critical path -> uppercase letters
        assert!(chart.contains('B') || chart.contains('A'));
    }
}
