//! Run observability: phase-scoped spans, per-node/per-link metrics, and
//! aggregate reports.
//!
//! The paper's whole evaluation (§4, Tables 1–2, Fig. 7) is an attribution
//! exercise — how much virtual time each *step* of the fault-tolerant sort
//! costs — so the simulator records structured observations rather than a
//! single scalar per run:
//!
//! * **Spans** ([`SpanLog`]) — virtual-time intervals a node spends inside
//!   a named algorithm phase, entered/exited through
//!   [`Comm::span_enter`](crate::sim::Comm::span_enter). Phases are keyed
//!   by the same `u16` id the [`Tag::phase`](crate::sim::Tag::phase)
//!   encoding carries in bits 32..48, so message tags and spans attribute
//!   to the same phase for free.
//! * **Node metrics** ([`NodeMetrics`]) — blocked-on-recv time,
//!   per-dimension link traffic, message-size/hop histograms, and the
//!   receive-queue high-water mark.
//! * **[`RunObservation`]** — everything the engines captured for one run
//!   (per-node clocks, stats, spans, metrics, plus the optional event
//!   [`Trace`]); the input to the Perfetto exporter ([`perfetto`]) and the
//!   critical-path analyzer ([`critical_path`]).
//! * **[`RunReport`]** — the human/JSON-facing aggregate: per-phase busy
//!   time (interval-union per node, then max/total over nodes), per-node
//!   utilization, and per-dimension link load.
//!
//! * **Streaming & replay** ([`sink`], [`replay`]) — a [`sink::TraceSink`]
//!   receives the run's record stream as the engines emit it (optionally
//!   straight to disk, so large runs trace in O(1) memory), and
//!   [`replay::observation_from_json`] rebuilds a full [`RunObservation`]
//!   from the saved file so every analyzer also runs offline; [`diff`]
//!   aligns two runs' critical paths segment by segment.
//!
//! Span aggregation unions intervals *by phase name* per node before
//! summing, so nested or re-entrant spans of the same phase never
//! double-count wall time.

pub mod campaign;
pub mod critical_path;
pub mod diff;
pub mod gz;
pub mod hist;
pub mod json;
pub mod log;
pub mod metrics;
pub mod perfetto;
pub mod replay;
pub mod sched;
pub mod schedule;
pub mod sink;

use crate::address::NodeId;
use crate::cost::CostModel;
use crate::sim::{LinkModel, Trace};
use crate::stats::RunStats;
use std::fmt::Write as _;

/// One closed span: a node was inside `phase` from `begin` to `end`
/// (virtual µs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanRecord {
    /// Phase id (the `Tag::phase` `u16` namespace).
    pub phase: u16,
    /// Virtual time the node entered the phase.
    pub begin: f64,
    /// Virtual time the node left it (`>= begin`).
    pub end: f64,
}

impl SpanRecord {
    /// Span length in virtual µs.
    pub fn duration(&self) -> f64 {
        self.end - self.begin
    }

    /// Whether `t` lies inside the span (half-open on neither side — the
    /// critical-path attribution probes midpoints, so boundaries are
    /// inclusive).
    pub fn contains(&self, t: f64) -> bool {
        self.begin <= t && t <= self.end
    }
}

/// Per-node span recorder. Spans nest like a stack: `enter` pushes,
/// `exit` closes the innermost open span at the current virtual time.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    open: Vec<(u16, f64)>,
    closed: Vec<SpanRecord>,
}

impl SpanLog {
    /// An empty log with room for a typical run (a handful of phases,
    /// re-entered per substage).
    pub fn new() -> Self {
        SpanLog {
            open: Vec::with_capacity(4),
            closed: Vec::with_capacity(32),
        }
    }

    /// Opens a span for `phase` at virtual time `now`.
    pub fn enter(&mut self, phase: u16, now: f64) {
        self.open.push((phase, now));
    }

    /// Closes the innermost open span at virtual time `now`. A stray exit
    /// with nothing open is ignored (robustness over panics inside node
    /// programs).
    pub fn exit(&mut self, now: f64) {
        if let Some((phase, begin)) = self.open.pop() {
            self.closed.push(SpanRecord {
                phase,
                begin,
                end: now,
            });
        }
    }

    /// Finishes the log at the node's final clock, force-closing any spans
    /// a node program left open, and returns the records in close order.
    pub fn finish(mut self, now: f64) -> Vec<SpanRecord> {
        while !self.open.is_empty() {
            self.exit(now);
        }
        self.closed
    }
}

/// Per-node communication/utilization metrics beyond the flat
/// [`RunStats`] counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeMetrics {
    /// Virtual time spent blocked inside `recv` waiting for a message that
    /// had not yet arrived (clock jumps across a receive).
    pub blocked_us: f64,
    /// Virtual time this node's *incoming* messages spent queued behind
    /// busy links, summed at the receives that consumed them — always zero
    /// under [`LinkModel::Uncontended`]. A subset of [`blocked_us`]
    /// whenever the wait was on the receive's critical path.
    ///
    /// [`blocked_us`]: NodeMetrics::blocked_us
    pub link_wait_us: f64,
    /// Messages consumed by this node.
    pub msgs_received: u64,
    /// Element·hops this node *sent* across each hypercube dimension
    /// (index = dimension). Routes are charged along the set bits of
    /// `src ^ dst`, matching the e-cube route length.
    pub dim_elements: Vec<u64>,
    /// Virtual transfer time this node's sends occupied links of each
    /// dimension (index = dimension), µs: `transfer(elements, 1)` per
    /// crossed dimension. Link-model-independent — under contention the
    /// same transfers happen, only later.
    pub dim_busy_us: Vec<f64>,
    /// Element·hops charged beyond the `src ^ dst` Hamming distance —
    /// fault-detour traffic the per-dimension split cannot localize.
    pub detour_element_hops: u64,
    /// Message-size histogram: bucket 0 counts empty messages, bucket
    /// `i >= 1` counts sizes in `[2^(i-1), 2^i)`.
    pub msg_size_hist: Vec<u64>,
    /// Message-hop histogram: index = links crossed.
    pub msg_hops_hist: Vec<u64>,
    /// High-water mark of this node's receive queue, in messages. Exact
    /// and deterministic on the sequential engine; on the threaded engine
    /// it is sampled from live channel gauges and may vary with OS
    /// scheduling, so it is excluded from engine-differential comparisons.
    pub inbox_peak: u64,
}

impl NodeMetrics {
    /// Zeroed metrics for a `dim`-cube node.
    pub fn new(dim: usize) -> Self {
        NodeMetrics {
            blocked_us: 0.0,
            link_wait_us: 0.0,
            msgs_received: 0,
            dim_elements: vec![0; dim],
            dim_busy_us: vec![0.0; dim],
            detour_element_hops: 0,
            msg_size_hist: Vec::new(),
            msg_hops_hist: Vec::new(),
            inbox_peak: 0,
        }
    }

    /// Records a send of `elements` keys from `src` to `dst` over `hops`
    /// links, attributing traffic (element counts and `cost`-priced
    /// transfer time) to dimensions and histograms.
    pub fn on_send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        elements: usize,
        hops: u32,
        cost: &CostModel,
    ) {
        let direct = src.raw() ^ dst.raw();
        let mut crossed = 0u32;
        for d in 0..self.dim_elements.len() {
            if direct >> d & 1 == 1 {
                self.dim_elements[d] += elements as u64;
                self.dim_busy_us[d] += cost.transfer(elements, 1);
                crossed += 1;
            }
        }
        if hops > crossed {
            self.detour_element_hops += elements as u64 * (hops - crossed) as u64;
        }
        let size_bucket = if elements == 0 {
            0
        } else {
            (usize::BITS - elements.leading_zeros()) as usize
        };
        bump(&mut self.msg_size_hist, size_bucket);
        bump(&mut self.msg_hops_hist, hops as usize);
    }
}

fn bump(hist: &mut Vec<u64>, index: usize) {
    if hist.len() <= index {
        hist.resize(index + 1, 0);
    }
    hist[index] += 1;
}

/// Everything observed about one node in a completed run.
#[derive(Clone, Debug)]
pub struct NodeObservation {
    /// The node.
    pub node: NodeId,
    /// Final virtual clock, µs.
    pub clock: f64,
    /// Flat operation counters.
    pub stats: RunStats,
    /// Closed phase spans, in close order.
    pub spans: Vec<SpanRecord>,
    /// Utilization/communication metrics.
    pub metrics: NodeMetrics,
}

/// Everything observed about a completed run — the input to reporting,
/// Perfetto export, and critical-path analysis.
#[derive(Clone, Debug)]
pub struct RunObservation {
    /// Hypercube dimension.
    pub dim: usize,
    /// The cost model the run was charged under.
    pub cost: CostModel,
    /// The link model the run was priced under.
    pub link_model: LinkModel,
    /// The event trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// Per-node observations, indexed by node address (`None` for nodes
    /// that did not participate, e.g. faulty ones).
    pub nodes: Vec<Option<NodeObservation>>,
    /// The element key type the run sorted (e.g. `"i64"`, `"pair"`), when
    /// known. Live engines leave it `None` (they are generic over the
    /// element); CLIs record it in the run file via the sinks, and replay
    /// carries it back so [`RunObservation::report`] reproduces a keyed
    /// report byte-for-byte.
    pub key_type: Option<String>,
}

impl RunObservation {
    /// The run's virtual makespan: the maximum final clock over nodes.
    pub fn makespan(&self) -> f64 {
        self.nodes
            .iter()
            .flatten()
            .map(|n| n.clock)
            .fold(0.0, f64::max)
    }

    /// Participating nodes, in address order.
    pub fn participants(&self) -> impl Iterator<Item = &NodeObservation> {
        self.nodes.iter().flatten()
    }

    /// Aggregates into a [`RunReport`], naming phases through `namer`
    /// (unknown ids fall back to `phase-<id>`).
    pub fn report(&self, namer: &dyn Fn(u16) -> Option<&'static str>) -> RunReport {
        RunReport::build(self, namer)
    }
}

/// Total length of the union of a set of intervals, in µs. Overlapping or
/// nested intervals count once — this is what makes re-entrant spans safe
/// to sum.
pub fn union_us(intervals: &mut [(f64, f64)]) -> f64 {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for &(begin, end) in intervals.iter() {
        match current {
            Some((_, ce)) if begin <= ce => {
                let (cb, ce) = current.unwrap();
                current = Some((cb, ce.max(end)));
            }
            Some((cb, ce)) => {
                total += ce - cb;
                current = Some((begin, end));
            }
            None => current = Some((begin, end)),
        }
    }
    if let Some((cb, ce)) = current {
        total += ce - cb;
    }
    total
}

/// Aggregate attribution for one named phase across all nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseReport {
    /// Phase name (from the namer, or `phase-<id>`).
    pub name: String,
    /// Maximum per-node unioned span time, µs — the phase's contribution
    /// to the makespan under a barrier-per-phase reading (what the paper's
    /// tables report).
    pub max_node_us: f64,
    /// Sum of per-node unioned span time, µs — total work inside the
    /// phase.
    pub total_node_us: f64,
    /// Raw span records attributed to the phase.
    pub spans: u64,
}

/// Aggregate utilization for one node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// Node address.
    pub node: u32,
    /// Final virtual clock, µs.
    pub clock_us: f64,
    /// Time inside any span (unioned), µs.
    pub busy_us: f64,
    /// Time blocked in `recv`, µs.
    pub blocked_us: f64,
    /// Link-queueing wait absorbed by this node's receives, µs (see
    /// [`NodeMetrics::link_wait_us`]).
    pub link_wait_us: f64,
    /// `clock - busy` (time outside any instrumented phase), µs; clamped
    /// at zero against float dust.
    pub idle_us: f64,
    /// Messages sent.
    pub messages: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Elements sent.
    pub elements_sent: u64,
    /// Comparisons charged.
    pub comparisons: u64,
    /// Receive-queue high-water mark (see [`NodeMetrics::inbox_peak`]).
    pub inbox_peak: u64,
}

/// Traffic across one hypercube dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkReport {
    /// Dimension index.
    pub dim: usize,
    /// Element·hops sent across this dimension, summed over nodes.
    pub elements: u64,
    /// Total transfer time occupying this dimension's links, µs, summed
    /// over nodes (see [`NodeMetrics::dim_busy_us`]).
    pub busy_us: f64,
}

/// The aggregate report for a run: embeds the summed [`RunStats`] and
/// adds phase, node and link attribution. Serialized with
/// [`RunReport::to_json`]; parsed back with [`RunReport::from_json`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Hypercube dimension.
    pub dim: usize,
    /// The link model the run was priced under.
    pub link_model: LinkModel,
    /// The worker count the run's executor was configured with, when the
    /// caller chose to record it ([`RunReport::with_threads`], e.g. from a
    /// CLI `--threads` flag). `None` — the default, and what the library
    /// sort functions always produce — serializes to nothing, keeping
    /// reports byte-identical across worker counts.
    pub threads: Option<usize>,
    /// The worker count that *actually ran* after the parallel engine's
    /// shard-count clamp (`schedule_for`), when the caller chose to record
    /// it ([`RunReport::with_schedule`]). On small cubes this is less than
    /// [`threads`](RunReport::threads) — reports must not claim more
    /// workers than ever ran. `None` serializes to nothing.
    pub workers_effective: Option<usize>,
    /// The effective shard size (after `auto_shard_size`), recorded
    /// together with [`workers_effective`](RunReport::workers_effective).
    pub shard_size: Option<usize>,
    /// Slabs taken from the run's [`crate::sim::pool::BufferPool`], when
    /// the caller ran with pool statistics enabled and chose to record
    /// them ([`RunReport::with_pool_stats`]). Presentation-layer metadata
    /// like [`threads`](RunReport::threads): `None` serializes to nothing.
    pub pool_takes: Option<u64>,
    /// Slabs returned to the pool (see
    /// [`pool_takes`](RunReport::pool_takes)).
    pub pool_puts: Option<u64>,
    /// High-water mark of parked slabs in any single store (the shared
    /// store or one handle's local free list, whichever ran fullest); see
    /// [`pool_takes`](RunReport::pool_takes).
    pub pool_slab_high_water: Option<u64>,
    /// The key type the run sorted (`"u32"`/`"u64"`/`"i64"`/`"pair"`), when
    /// the caller chose to record it ([`RunReport::with_key_type`], e.g.
    /// from a CLI `--key-type` flag). Presentation-layer metadata like
    /// [`threads`](RunReport::threads): `None` serializes to nothing.
    pub key_type: Option<String>,
    /// Virtual makespan, µs.
    pub makespan_us: f64,
    /// Operation counters summed over nodes.
    pub stats: RunStats,
    /// Per-phase attribution, ordered by earliest span begin.
    pub phases: Vec<PhaseReport>,
    /// Per-node utilization, address order.
    pub nodes: Vec<NodeReport>,
    /// Per-dimension link traffic.
    pub links: Vec<LinkReport>,
    /// Element·hops not attributable to a single dimension (fault
    /// detours), summed over nodes.
    pub detour_element_hops: u64,
}

impl RunReport {
    fn build(obs: &RunObservation, namer: &dyn Fn(u16) -> Option<&'static str>) -> RunReport {
        let name_of = |phase: u16| -> String {
            match namer(phase) {
                Some(s) => s.to_string(),
                None => format!("phase-{phase}"),
            }
        };

        // Phase attribution: per (name, node) interval union, then reduce.
        // `order` remembers each name's earliest span begin for stable,
        // execution-ordered rows.
        let mut names: Vec<String> = Vec::new();
        let mut order: Vec<f64> = Vec::new();
        let mut span_counts: Vec<u64> = Vec::new();
        // per name: per-node unioned time
        let mut per_node_us: Vec<Vec<f64>> = Vec::new();
        for node in obs.participants() {
            // group this node's spans by name
            let mut by_name: Vec<(usize, Vec<(f64, f64)>)> = Vec::new();
            for s in &node.spans {
                let name = name_of(s.phase);
                let idx = match names.iter().position(|n| *n == name) {
                    Some(i) => i,
                    None => {
                        names.push(name);
                        order.push(s.begin);
                        span_counts.push(0);
                        per_node_us.push(Vec::new());
                        names.len() - 1
                    }
                };
                order[idx] = order[idx].min(s.begin);
                span_counts[idx] += 1;
                match by_name.iter_mut().find(|(i, _)| *i == idx) {
                    Some((_, v)) => v.push((s.begin, s.end)),
                    None => by_name.push((idx, vec![(s.begin, s.end)])),
                }
            }
            for (idx, mut intervals) in by_name {
                per_node_us[idx].push(union_us(&mut intervals));
            }
        }
        let mut phase_rows: Vec<(f64, PhaseReport)> = names
            .into_iter()
            .zip(order)
            .zip(span_counts)
            .zip(per_node_us)
            .map(|(((name, first), spans), per_node)| {
                let max_node_us = per_node.iter().copied().fold(0.0, f64::max);
                let total_node_us = per_node.iter().sum();
                (
                    first,
                    PhaseReport {
                        name,
                        max_node_us,
                        total_node_us,
                        spans,
                    },
                )
            })
            .collect();
        phase_rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        let phases = phase_rows.into_iter().map(|(_, p)| p).collect();

        // Node utilization rows.
        let nodes: Vec<NodeReport> = obs
            .participants()
            .map(|n| {
                let mut intervals: Vec<(f64, f64)> =
                    n.spans.iter().map(|s| (s.begin, s.end)).collect();
                let busy_us = union_us(&mut intervals);
                NodeReport {
                    node: n.node.raw(),
                    clock_us: n.clock,
                    busy_us,
                    blocked_us: n.metrics.blocked_us,
                    link_wait_us: n.metrics.link_wait_us,
                    idle_us: (n.clock - busy_us).max(0.0),
                    messages: n.stats.messages,
                    msgs_received: n.metrics.msgs_received,
                    elements_sent: n.stats.elements_sent,
                    comparisons: n.stats.comparisons,
                    inbox_peak: n.metrics.inbox_peak,
                }
            })
            .collect();

        // Link traffic per dimension.
        let mut links: Vec<LinkReport> = (0..obs.dim)
            .map(|dim| LinkReport {
                dim,
                elements: 0,
                busy_us: 0.0,
            })
            .collect();
        let mut detour_element_hops = 0;
        for n in obs.participants() {
            for (d, link) in links.iter_mut().enumerate() {
                link.elements += n.metrics.dim_elements.get(d).copied().unwrap_or(0);
                link.busy_us += n.metrics.dim_busy_us.get(d).copied().unwrap_or(0.0);
            }
            detour_element_hops += n.metrics.detour_element_hops;
        }

        let stats: RunStats = obs.participants().map(|n| n.stats).sum();

        RunReport {
            dim: obs.dim,
            link_model: obs.link_model,
            threads: None,
            workers_effective: None,
            shard_size: None,
            pool_takes: None,
            pool_puts: None,
            pool_slab_high_water: None,
            key_type: obs.key_type.clone(),
            makespan_us: obs.makespan(),
            stats,
            phases,
            nodes,
            links,
            detour_element_hops,
        }
    }

    /// Records the executor's worker count in the report (builder style) —
    /// presentation-layer metadata, set by CLIs that took a `--threads`
    /// flag, never by the library sort functions.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Records the parallel engine's *effective* schedule — the worker
    /// count that actually ran and the shard size after clamping (builder
    /// style). Presentation-layer metadata like
    /// [`with_threads`](Self::with_threads): set by CLIs from
    /// `hypercube::sim::par::schedule_for`, never by the library sort
    /// functions.
    pub fn with_schedule(mut self, workers_effective: usize, shard_size: usize) -> Self {
        self.workers_effective = Some(workers_effective);
        self.shard_size = Some(shard_size);
        self
    }

    /// Records the run's buffer-pool statistics (builder style):
    /// take/put counts and the parked-slab high-water mark, from
    /// `hypercube::sim::pool::PoolStats::counters`. Presentation-layer
    /// metadata like [`with_threads`](Self::with_threads): set by CLIs
    /// that ran with a stats-enabled pool, never by the library sort
    /// functions.
    pub fn with_pool_stats(mut self, takes: u64, puts: u64, slab_high_water: u64) -> Self {
        self.pool_takes = Some(takes);
        self.pool_puts = Some(puts);
        self.pool_slab_high_water = Some(slab_high_water);
        self
    }

    /// Records the key type the run sorted (builder style) —
    /// presentation-layer metadata like [`with_threads`](Self::with_threads),
    /// set by CLIs that took a `--key-type` flag.
    pub fn with_key_type(mut self, key_type: impl Into<String>) -> Self {
        self.key_type = Some(key_type.into());
        self
    }

    /// Serializes to the report's JSON schema (documented in DESIGN.md §6).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"dim\":{},\"link_model\":\"{}\",",
            self.dim, self.link_model
        );
        if let Some(threads) = self.threads {
            let _ = write!(out, "\"threads\":{threads},");
        }
        if let Some(workers) = self.workers_effective {
            let _ = write!(out, "\"workers_effective\":{workers},");
        }
        if let Some(shard) = self.shard_size {
            let _ = write!(out, "\"shard_size\":{shard},");
        }
        if let Some(takes) = self.pool_takes {
            let _ = write!(out, "\"pool_takes\":{takes},");
        }
        if let Some(puts) = self.pool_puts {
            let _ = write!(out, "\"pool_puts\":{puts},");
        }
        if let Some(hw) = self.pool_slab_high_water {
            let _ = write!(out, "\"pool_slab_high_water\":{hw},");
        }
        if let Some(key_type) = &self.key_type {
            out.push_str("\"key_type\":");
            json::write_str(&mut out, key_type);
            out.push(',');
        }
        let _ = write!(
            out,
            "\"makespan_us\":{},\"stats\":{{\"messages\":{},\"elements_sent\":{},\"element_hops\":{},\"message_hops\":{},\"comparisons\":{},\"max_hops\":{},\"max_message_elements\":{}}},\"phases\":[",
            self.makespan_us,
            self.stats.messages,
            self.stats.elements_sent,
            self.stats.element_hops,
            self.stats.message_hops,
            self.stats.comparisons,
            self.stats.max_hops,
            self.stats.max_message_elements,
        );
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_str(&mut out, &p.name);
            let _ = write!(
                out,
                ",\"max_node_us\":{},\"total_node_us\":{},\"spans\":{}}}",
                p.max_node_us, p.total_node_us, p.spans
            );
        }
        out.push_str("],\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":{},\"clock_us\":{},\"busy_us\":{},\"blocked_us\":{},\"link_wait_us\":{},\"idle_us\":{},\"messages\":{},\"msgs_received\":{},\"elements_sent\":{},\"comparisons\":{},\"inbox_peak\":{}}}",
                n.node,
                n.clock_us,
                n.busy_us,
                n.blocked_us,
                n.link_wait_us,
                n.idle_us,
                n.messages,
                n.msgs_received,
                n.elements_sent,
                n.comparisons,
                n.inbox_peak
            );
        }
        out.push_str("],\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"dim\":{},\"elements\":{},\"busy_us\":{}}}",
                l.dim, l.elements, l.busy_us
            );
        }
        let _ = write!(
            out,
            "],\"detour_element_hops\":{}}}",
            self.detour_element_hops
        );
        out
    }

    /// Parses a report serialized by [`to_json`](Self::to_json); the
    /// round-trip is exact (`PartialEq` on all fields, float bits
    /// included).
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = json::Json::parse(text)?;
        let num = |o: &json::Json, k: &str| {
            o.get(k)
                .and_then(json::Json::as_f64)
                .ok_or_else(|| format!("missing number '{k}'"))
        };
        let int = |o: &json::Json, k: &str| {
            o.get(k)
                .and_then(json::Json::as_u64)
                .ok_or_else(|| format!("missing integer '{k}'"))
        };
        let s = doc.get("stats").ok_or("missing 'stats'")?;
        let stats = RunStats {
            messages: int(s, "messages")?,
            elements_sent: int(s, "elements_sent")?,
            element_hops: int(s, "element_hops")?,
            message_hops: int(s, "message_hops")?,
            comparisons: int(s, "comparisons")?,
            max_hops: int(s, "max_hops")? as u32,
            max_message_elements: int(s, "max_message_elements")?,
        };
        let mut phases = Vec::new();
        for p in doc
            .get("phases")
            .and_then(json::Json::as_arr)
            .ok_or("missing 'phases'")?
        {
            phases.push(PhaseReport {
                name: p
                    .get("name")
                    .and_then(json::Json::as_str)
                    .ok_or("phase missing 'name'")?
                    .to_string(),
                max_node_us: num(p, "max_node_us")?,
                total_node_us: num(p, "total_node_us")?,
                spans: int(p, "spans")?,
            });
        }
        let mut nodes = Vec::new();
        for n in doc
            .get("nodes")
            .and_then(json::Json::as_arr)
            .ok_or("missing 'nodes'")?
        {
            nodes.push(NodeReport {
                node: int(n, "node")? as u32,
                clock_us: num(n, "clock_us")?,
                busy_us: num(n, "busy_us")?,
                blocked_us: num(n, "blocked_us")?,
                link_wait_us: num(n, "link_wait_us")?,
                idle_us: num(n, "idle_us")?,
                messages: int(n, "messages")?,
                msgs_received: int(n, "msgs_received")?,
                elements_sent: int(n, "elements_sent")?,
                comparisons: int(n, "comparisons")?,
                inbox_peak: int(n, "inbox_peak")?,
            });
        }
        let mut links = Vec::new();
        for l in doc
            .get("links")
            .and_then(json::Json::as_arr)
            .ok_or("missing 'links'")?
        {
            links.push(LinkReport {
                dim: int(l, "dim")? as usize,
                elements: int(l, "elements")?,
                busy_us: num(l, "busy_us")?,
            });
        }
        let link_model = doc
            .get("link_model")
            .and_then(json::Json::as_str)
            .and_then(LinkModel::parse)
            .ok_or("missing or invalid 'link_model'")?;
        Ok(RunReport {
            dim: int(&doc, "dim")? as usize,
            link_model,
            threads: doc
                .get("threads")
                .and_then(json::Json::as_u64)
                .map(|t| t as usize),
            workers_effective: doc
                .get("workers_effective")
                .and_then(json::Json::as_u64)
                .map(|w| w as usize),
            shard_size: doc
                .get("shard_size")
                .and_then(json::Json::as_u64)
                .map(|s| s as usize),
            pool_takes: doc.get("pool_takes").and_then(json::Json::as_u64),
            pool_puts: doc.get("pool_puts").and_then(json::Json::as_u64),
            pool_slab_high_water: doc.get("pool_slab_high_water").and_then(json::Json::as_u64),
            key_type: doc
                .get("key_type")
                .and_then(json::Json::as_str)
                .map(str::to_string),
            makespan_us: num(&doc, "makespan_us")?,
            stats,
            phases,
            nodes,
            links,
            detour_element_hops: int(&doc, "detour_element_hops")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_log_nests_and_force_closes() {
        let mut log = SpanLog::new();
        log.enter(1, 0.0);
        log.enter(2, 5.0);
        log.exit(7.0); // closes phase 2
        log.enter(3, 8.0); // left open
        let spans = log.finish(10.0);
        assert_eq!(
            spans,
            vec![
                SpanRecord {
                    phase: 2,
                    begin: 5.0,
                    end: 7.0
                },
                SpanRecord {
                    phase: 3,
                    begin: 8.0,
                    end: 10.0
                },
                SpanRecord {
                    phase: 1,
                    begin: 0.0,
                    end: 10.0
                },
            ]
        );
    }

    #[test]
    fn stray_exit_is_ignored() {
        let mut log = SpanLog::new();
        log.exit(1.0);
        assert!(log.finish(2.0).is_empty());
    }

    #[test]
    fn union_merges_overlaps_and_nesting() {
        // disjoint
        assert_eq!(union_us(&mut [(0.0, 1.0), (2.0, 3.0)]), 2.0);
        // overlapping
        assert_eq!(union_us(&mut [(0.0, 2.0), (1.0, 3.0)]), 3.0);
        // nested (the re-entrant span case)
        assert_eq!(union_us(&mut [(0.0, 10.0), (2.0, 4.0)]), 10.0);
        // touching endpoints merge
        assert_eq!(union_us(&mut [(0.0, 1.0), (1.0, 2.0)]), 2.0);
        assert_eq!(union_us(&mut Vec::new()), 0.0);
    }

    #[test]
    fn metrics_attribute_dimensions_and_detours() {
        let cost = CostModel::default();
        let mut m = NodeMetrics::new(3);
        // direct route across dims 0 and 2
        m.on_send(NodeId::new(0b000), NodeId::new(0b101), 10, 2, &cost);
        assert_eq!(m.dim_elements, vec![10, 0, 10]);
        assert_eq!(
            m.dim_busy_us,
            vec![cost.transfer(10, 1), 0.0, cost.transfer(10, 1)]
        );
        assert_eq!(m.detour_element_hops, 0);
        // fault detour: hamming distance 1 but 3 hops charged
        m.on_send(NodeId::new(0b000), NodeId::new(0b010), 4, 3, &cost);
        assert_eq!(m.dim_elements, vec![10, 4, 10]);
        assert_eq!(m.dim_busy_us[1], cost.transfer(4, 1));
        assert_eq!(m.detour_element_hops, 8);
        // histograms: sizes 10 -> bucket 4 ([8,16)), 4 -> bucket 3 ([4,8))
        assert_eq!(m.msg_size_hist[4], 1);
        assert_eq!(m.msg_size_hist[3], 1);
        assert_eq!(m.msg_hops_hist[2], 1);
        assert_eq!(m.msg_hops_hist[3], 1);
        // empty message lands in bucket 0
        m.on_send(NodeId::new(0), NodeId::new(1), 0, 1, &cost);
        assert_eq!(m.msg_size_hist[0], 1);
    }

    fn tiny_observation() -> RunObservation {
        let mut m0 = NodeMetrics::new(2);
        m0.on_send(NodeId::new(0), NodeId::new(1), 8, 1, &CostModel::default());
        m0.blocked_us = 3.5;
        m0.link_wait_us = 1.25;
        m0.msgs_received = 1;
        let mut s0 = RunStats::new();
        s0.record_message(8, 1);
        s0.record_comparisons(12);
        let n0 = NodeObservation {
            node: NodeId::new(0),
            clock: 100.0,
            stats: s0,
            spans: vec![
                SpanRecord {
                    phase: 1,
                    begin: 0.0,
                    end: 40.0,
                },
                // re-entrant: nested span of the same phase must not
                // double-count
                SpanRecord {
                    phase: 1,
                    begin: 10.0,
                    end: 30.0,
                },
                SpanRecord {
                    phase: 2,
                    begin: 50.0,
                    end: 90.0,
                },
            ],
            metrics: m0,
        };
        let n1 = NodeObservation {
            node: NodeId::new(1),
            clock: 80.0,
            stats: RunStats::new(),
            spans: vec![SpanRecord {
                phase: 1,
                begin: 0.0,
                end: 60.0,
            }],
            metrics: NodeMetrics::new(2),
        };
        RunObservation {
            key_type: None,
            dim: 2,
            cost: CostModel::default(),
            link_model: LinkModel::Contended,
            trace: Trace::default(),
            nodes: vec![Some(n0), Some(n1), None, None],
        }
    }

    #[test]
    fn report_unions_spans_and_orders_phases() {
        let obs = tiny_observation();
        let namer = |p: u16| match p {
            1 => Some("alpha"),
            _ => None,
        };
        let report = obs.report(&namer);
        assert_eq!(report.dim, 2);
        assert_eq!(report.makespan_us, 100.0);
        assert_eq!(report.phases.len(), 2);
        // ordered by earliest begin: alpha (0.0) before phase-2 (50.0)
        assert_eq!(report.phases[0].name, "alpha");
        assert_eq!(report.phases[0].max_node_us, 60.0); // node 1's union
        assert_eq!(report.phases[0].total_node_us, 100.0); // 40 + 60, not 60+60
        assert_eq!(report.phases[0].spans, 3);
        assert_eq!(report.phases[1].name, "phase-2");
        assert_eq!(report.phases[1].max_node_us, 40.0);
        // node rows
        assert_eq!(report.nodes.len(), 2);
        assert_eq!(report.nodes[0].busy_us, 80.0); // union(0..40, 50..90)
        assert_eq!(report.nodes[0].idle_us, 20.0);
        assert_eq!(report.nodes[0].blocked_us, 3.5);
        assert_eq!(report.nodes[0].link_wait_us, 1.25);
        // links
        assert_eq!(report.link_model, LinkModel::Contended);
        assert_eq!(report.links.len(), 2);
        assert_eq!(report.links[0].elements, 8);
        assert_eq!(report.links[0].busy_us, CostModel::default().transfer(8, 1));
        assert_eq!(report.links[1].elements, 0);
        assert_eq!(report.links[1].busy_us, 0.0);
        // embedded stats are the node sum
        assert_eq!(report.stats.messages, 1);
        assert_eq!(report.stats.comparisons, 12);
    }

    #[test]
    fn report_json_roundtrip_is_exact() {
        let obs = tiny_observation();
        let report = obs.report(&|p| if p == 1 { Some("alpha") } else { None });
        assert_eq!(report.threads, None, "library reports carry no threads");
        assert_eq!(report.workers_effective, None);
        assert_eq!(report.shard_size, None);
        let text = report.to_json();
        assert!(
            !text.contains("threads"),
            "absent threads serializes to nothing"
        );
        assert!(
            !text.contains("workers_effective") && !text.contains("shard_size"),
            "absent schedule serializes to nothing"
        );
        let back = RunReport::from_json(&text).expect("parse");
        assert_eq!(back, report);
        // and it is valid generic JSON
        assert!(json::Json::parse(&text).is_ok());

        // with_threads round-trips too (presentation-layer metadata)
        let threaded = report.with_threads(4);
        let text = threaded.to_json();
        assert!(text.contains("\"threads\":4"));
        let back = RunReport::from_json(&text).expect("parse");
        assert_eq!(back, threaded);
        assert!(json::Json::parse(&text).is_ok());

        // the effective schedule rides along the same way
        let scheduled = threaded.with_schedule(2, 16);
        let text = scheduled.to_json();
        assert!(text.contains("\"workers_effective\":2"));
        assert!(text.contains("\"shard_size\":16"));
        let back = RunReport::from_json(&text).expect("parse");
        assert_eq!(back, scheduled);
        assert!(json::Json::parse(&text).is_ok());

        // and so do the pool statistics
        assert!(
            !text.contains("pool_takes"),
            "absent pool stats serialize to nothing"
        );
        let pooled = scheduled.with_pool_stats(120, 118, 9);
        let text = pooled.to_json();
        assert!(text.contains("\"pool_takes\":120"));
        assert!(text.contains("\"pool_puts\":118"));
        assert!(text.contains("\"pool_slab_high_water\":9"));
        let back = RunReport::from_json(&text).expect("parse");
        assert_eq!(back, pooled);

        // and the key type
        assert!(
            !text.contains("key_type"),
            "absent key type serializes to nothing"
        );
        let keyed = pooled.with_key_type("pair");
        let text = keyed.to_json();
        assert!(text.contains("\"key_type\":\"pair\""));
        let back = RunReport::from_json(&text).expect("parse");
        assert_eq!(back, keyed);
        assert!(json::Json::parse(&text).is_ok());
        assert!(json::Json::parse(&text).is_ok());
    }
}
