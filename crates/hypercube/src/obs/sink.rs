//! Streaming trace sinks: incremental capture of a run's record stream.
//!
//! The buffered observability pipeline holds every trace event in memory
//! until the run completes, which caps tracing at small cubes and
//! moderate message counts. A [`TraceSink`] instead receives the run's
//! records *as the engines emit them*: a header with the geometry and
//! cost model, the trace events (send/recv/compute), span boundaries,
//! and a per-node footer carrying the two quantities no event stream can
//! reconstruct — final blocked time (`charge_compute` advances the clock
//! without emitting an event) and the receive-queue high-water mark
//! (enqueue-time state). Two implementations ship:
//!
//! * [`BufferedSink`] accumulates records in memory and serializes on
//!   demand — the pre-existing buffered behavior, now behind the trait;
//! * [`StreamingSink`] serializes each record straight into any
//!   `io::Write` (a buffered file via [`StreamingSink::create`]), so
//!   heap usage stays O(1) in the trace length.
//!
//! Both funnel through the same record serializer, so for one record
//! stream their outputs are byte-identical — the equivalence pinned by
//! `tests/obs_invariants.rs`. The run file is a single JSON document
//! (schema in DESIGN.md §6) parsed back by [`super::replay`]. Records
//! appear in emission order: on the sequential engine that order is
//! deterministic; on the threaded engine nodes interleave arbitrarily,
//! but each node's own records stay in program order (the sink lock
//! serializes writers), which is all replay needs.

use super::gz::GzEncoder;
use super::json::write_trace_event;
use super::metrics::{self, Counter};
use crate::address::NodeId;
use crate::cost::CostModel;
use crate::sim::{LinkModel, TraceEvent};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Per-node closing record of a run file: the state a replay cannot
/// rebuild from the event stream alone. One entry per participating
/// node, in ascending address order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSummary {
    /// The node's address.
    pub node: NodeId,
    /// Final virtual clock, µs.
    pub clock: f64,
    /// Virtual µs spent waiting in `recv` (see `NodeMetrics::blocked_us`).
    pub blocked_us: f64,
    /// Receive-queue high-water mark (see `NodeMetrics::inbox_peak`).
    pub inbox_peak: u64,
}

/// Receiver of a run's record stream. Engines call the methods in strict
/// order — `begin`, then any number of `event`/`span`, then `finish`
/// exactly once — holding a lock, so implementations see records in
/// emission order. A sink instance captures one run; reuse is an error.
pub trait TraceSink: Send {
    /// Starts a run over a `dim`-cube under `cost` and `link_model`.
    fn begin(&mut self, dim: usize, cost: &CostModel, link_model: LinkModel);
    /// One trace event (send/recv/compute), as the engine stamps it.
    fn event(&mut self, event: &TraceEvent);
    /// A span boundary on `node` at virtual time `time`: `Some(phase)`
    /// enters a span, `None` exits the innermost open one.
    fn span(&mut self, node: NodeId, phase: Option<u16>, time: f64);
    /// Ends the run with the per-node summaries.
    fn finish(&mut self, nodes: &[NodeSummary]);
}

fn render_header(
    out: &mut String,
    dim: usize,
    cost: &CostModel,
    link_model: LinkModel,
    key_type: Option<&str>,
) {
    let _ = write!(
        out,
        "{{\"version\":2,\"dim\":{dim},\"cost\":{{\"t_sr\":{},\"t_c\":{},\"t_startup\":{}}},\"link_model\":\"{link_model}\",",
        cost.t_sr, cost.t_c, cost.t_startup
    );
    if let Some(kt) = key_type {
        let _ = write!(out, "\"key_type\":\"{kt}\",");
    }
    out.push_str("\"events\":[");
}

fn render_span(out: &mut String, node: NodeId, phase: Option<u16>, time: f64) {
    match phase {
        Some(p) => {
            let _ = write!(
                out,
                "{{\"t\":{time},\"node\":{},\"kind\":\"enter\",\"phase\":{p}}}",
                node.raw()
            );
        }
        None => {
            let _ = write!(
                out,
                "{{\"t\":{time},\"node\":{},\"kind\":\"exit\"}}",
                node.raw()
            );
        }
    }
}

/// Separator before a record: records live one per line, comma-joined.
fn render_separator(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
}

fn render_footer(out: &mut String, nodes: &[NodeSummary]) {
    out.push_str("\n],\"nodes\":[");
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"node\":{},\"clock\":{},\"blocked_us\":{},\"inbox_peak\":{}}}",
            n.node.raw(),
            n.clock,
            n.blocked_us,
            n.inbox_peak
        );
    }
    out.push_str("\n]}\n");
}

enum Record {
    Event(TraceEvent),
    Span {
        node: NodeId,
        phase: Option<u16>,
        time: f64,
    },
}

/// In-memory sink: keeps the record stream and serializes it whole on
/// [`BufferedSink::to_json`]. Memory grows with the trace — use
/// [`StreamingSink`] for large runs.
#[derive(Default)]
pub struct BufferedSink {
    header: Option<(usize, CostModel, LinkModel)>,
    key_type: Option<String>,
    records: Vec<Record>,
    nodes: Vec<NodeSummary>,
    finished: bool,
    events_metric: Option<Counter>,
}

impl BufferedSink {
    /// An empty sink, ready to capture one run. Resolves the
    /// `ftsort_sink_events_total` counter if the process-global metrics
    /// registry is installed.
    pub fn new() -> Self {
        BufferedSink {
            events_metric: metrics::global().map(|g| g.run.sink.events.clone()),
            ..Self::default()
        }
    }

    /// Records the run's element key type in the file header (e.g.
    /// `"pair"`), so offline replay can reproduce a keyed
    /// [`RunReport`](super::RunReport) byte-for-byte. Call before
    /// [`TraceSink::begin`]; presentation metadata only — the simulation
    /// never reads it.
    pub fn set_key_type(&mut self, key_type: impl Into<String>) {
        self.key_type = Some(key_type.into());
    }

    /// Serializes the captured run; byte-identical to what a
    /// [`StreamingSink`] fed the same record stream writes out.
    pub fn to_json(&self) -> String {
        let (dim, cost, link_model) = self.header.expect("BufferedSink::to_json before begin");
        let mut out = String::with_capacity(96 * self.records.len() + 256);
        render_header(&mut out, dim, &cost, link_model, self.key_type.as_deref());
        let mut first = true;
        for rec in &self.records {
            render_separator(&mut out, &mut first);
            match rec {
                Record::Event(e) => write_trace_event(&mut out, e),
                Record::Span { node, phase, time } => render_span(&mut out, *node, *phase, *time),
            }
        }
        render_footer(&mut out, &self.nodes);
        out
    }
}

impl TraceSink for BufferedSink {
    fn begin(&mut self, dim: usize, cost: &CostModel, link_model: LinkModel) {
        assert!(self.header.is_none(), "TraceSink reused across runs");
        self.header = Some((dim, *cost, link_model));
    }

    fn event(&mut self, event: &TraceEvent) {
        if let Some(c) = &self.events_metric {
            c.inc();
        }
        self.records.push(Record::Event(*event));
    }

    fn span(&mut self, node: NodeId, phase: Option<u16>, time: f64) {
        if let Some(c) = &self.events_metric {
            c.inc();
        }
        self.records.push(Record::Span { node, phase, time });
    }

    fn finish(&mut self, nodes: &[NodeSummary]) {
        assert!(!self.finished, "TraceSink finished twice");
        self.finished = true;
        self.nodes = nodes.to_vec();
    }
}

/// Incremental sink: each record is serialized and handed to the writer
/// immediately, so memory stays O(1) in the trace length. I/O errors
/// panic (engines have no error channel mid-run); the writer is flushed
/// on `finish`.
pub struct StreamingSink<W: Write + Send> {
    writer: W,
    buf: String,
    first: bool,
    began: bool,
    key_type: Option<String>,
    events_metric: Option<Counter>,
}

impl<W: Write + Send> StreamingSink<W> {
    /// Wraps a writer. Callers streaming to disk should hand in a
    /// buffered writer (or use [`StreamingSink::create`]). Resolves the
    /// `ftsort_sink_events_total` counter if the process-global metrics
    /// registry is installed.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            buf: String::with_capacity(256),
            first: true,
            began: false,
            key_type: None,
            events_metric: metrics::global().map(|g| g.run.sink.events.clone()),
        }
    }

    /// Records the run's element key type in the file header; must be
    /// called before [`TraceSink::begin`] (the header is streamed out
    /// immediately). Presentation metadata only.
    pub fn set_key_type(&mut self, key_type: impl Into<String>) {
        assert!(
            !self.began,
            "set_key_type after begin: header already written"
        );
        self.key_type = Some(key_type.into());
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }

    fn emit(&mut self) {
        self.writer
            .write_all(self.buf.as_bytes())
            .expect("trace sink write failed");
        self.buf.clear();
    }
}

impl StreamingSink<Box<dyn Write + Send>> {
    /// Streams to a freshly created file at `path`. A path ending in
    /// `.gz` is gzip-compressed on the fly (the [`super::gz`] encoder
    /// finalizes its stream when the sink is dropped); replay sniffs the
    /// magic bytes, so compressed and plain run files are interchangeable.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let gz = path
            .as_ref()
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("gz"));
        let file = BufWriter::new(File::create(path)?);
        let writer: Box<dyn Write + Send> = if gz {
            Box::new(GzEncoder::new(file)?)
        } else {
            Box::new(file)
        };
        Ok(Self::new(writer))
    }
}

impl<W: Write + Send> TraceSink for StreamingSink<W> {
    fn begin(&mut self, dim: usize, cost: &CostModel, link_model: LinkModel) {
        assert!(!self.began, "TraceSink reused across runs");
        self.began = true;
        render_header(
            &mut self.buf,
            dim,
            cost,
            link_model,
            self.key_type.as_deref(),
        );
        self.emit();
    }

    fn event(&mut self, event: &TraceEvent) {
        if let Some(c) = &self.events_metric {
            c.inc();
        }
        render_separator(&mut self.buf, &mut self.first);
        write_trace_event(&mut self.buf, event);
        self.emit();
    }

    fn span(&mut self, node: NodeId, phase: Option<u16>, time: f64) {
        if let Some(c) = &self.events_metric {
            c.inc();
        }
        render_separator(&mut self.buf, &mut self.first);
        render_span(&mut self.buf, node, phase, time);
        self.emit();
    }

    fn finish(&mut self, nodes: &[NodeSummary]) {
        assert!(self.began, "TraceSink finished before begin");
        render_footer(&mut self.buf, nodes);
        self.emit();
        self.writer.flush().expect("trace sink flush failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Tag, TraceKind};

    fn sample_stream(sink: &mut dyn TraceSink) {
        sink.begin(2, &CostModel::default(), LinkModel::Contended);
        sink.span(NodeId::new(0), Some(1), 0.0);
        sink.event(&TraceEvent {
            time: 1.5,
            node: NodeId::new(0),
            tag: Tag::new(u64::MAX),
            kind: TraceKind::Send {
                to: NodeId::new(1),
                elements: 4,
                hops: 1,
            },
        });
        sink.event(&TraceEvent {
            time: 2.5,
            node: NodeId::new(1),
            tag: Tag::new(u64::MAX),
            kind: TraceKind::Recv {
                from: NodeId::new(0),
                elements: 4,
                wait: 0.75,
            },
        });
        sink.span(NodeId::new(0), None, 3.0);
        sink.finish(&[
            NodeSummary {
                node: NodeId::new(0),
                clock: 3.0,
                blocked_us: 0.0,
                inbox_peak: 0,
            },
            NodeSummary {
                node: NodeId::new(1),
                clock: 2.5,
                blocked_us: 1.0,
                inbox_peak: 1,
            },
        ]);
    }

    #[test]
    fn buffered_and_streaming_agree_bytewise() {
        let mut buffered = BufferedSink::new();
        sample_stream(&mut buffered);
        let mut streaming = StreamingSink::new(Vec::new());
        sample_stream(&mut streaming);
        let streamed = String::from_utf8(streaming.into_inner().unwrap()).unwrap();
        assert_eq!(buffered.to_json(), streamed);
        // and the result is one well-formed JSON document
        super::super::json::Json::parse(&streamed).expect("valid JSON");
    }

    #[test]
    fn empty_run_serializes_cleanly() {
        let mut sink = BufferedSink::new();
        sink.begin(0, &CostModel::paper_form(), LinkModel::Uncontended);
        sink.finish(&[]);
        let doc = super::super::json::Json::parse(&sink.to_json()).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(
            doc.get("link_model").and_then(|v| v.as_str()),
            Some("uncontended")
        );
        assert_eq!(
            doc.get("events").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn gz_run_files_decompress_to_the_plain_bytes() {
        let dir = std::env::temp_dir().join(format!("sink_gz_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.json.gz");
        {
            let mut sink = StreamingSink::create(&path).expect("create");
            sample_stream(&mut sink);
        }
        let mut plain = StreamingSink::new(Vec::new());
        sample_stream(&mut plain);
        let expect = plain.into_inner().unwrap();
        let packed = std::fs::read(&path).expect("read");
        assert!(super::super::gz::is_gzip(&packed));
        assert!(packed.len() < expect.len());
        assert_eq!(super::super::gz::gunzip(&packed).expect("gunzip"), expect);
        std::fs::remove_dir_all(&dir).ok();
    }
}
