//! Wall-clock scheduler profiler for the work-stealing parallel engine.
//!
//! Everything else in `obs` measures *virtual* time — the simulated
//! hypercube. This module measures the *host*: where each worker of
//! [`ParEngine`] actually spends wall-clock time (polling shards,
//! delivering commits, stealing, spinning or parked at the barrier, the
//! coordinator's serial pricing pass), so "why par loses to seq" is a
//! pinned artifact instead of a guess.
//!
//! ## Recording model
//!
//! Each worker owns a [`WorkerProf`]: a category state machine plus a
//! preallocated, lock-free local event ring. The engine calls
//! [`WorkerProf::switch`] at every category transition; the delta since
//! the previous transition is added to the outgoing category's running
//! total, so the seven categories **tile the worker's wall time exactly**
//! (busy = poll + deliver + serial; the acceptance bar is that
//! busy + steal + barrier + park covers ≥ 95%, i.e. uncategorized
//! bookkeeping stays under 5%). Instant events (stage/pop/steal/poll
//! slice) feed the steal matrix, the shard-size histogram
//! ([`super::hist::LogHistogram`]) and the Perfetto runnable-queue
//! counters. The hot path is an array index, a few adds and a
//! capacity-checked push into a preallocated `Vec` — no locks, no
//! allocation (pinned by `crates/hypercube/tests/alloc_free.rs`); when
//! the ring fills, events are dropped and counted, while the totals stay
//! exact. With no profiler attached the engine passes `None` and every
//! hook inlines to a null check.
//!
//! Timestamps are nanoseconds on one shared monotonic epoch
//! ([`std::time::Instant`]), taken at the run start, so worker rings are
//! mutually comparable and every value fits a JSON number (`< 2^53` for
//! runs shorter than ~104 days).
//!
//! ## Outputs
//!
//! A finished run deposits a [`SchedProfile`] (the raw rings) into the
//! [`SchedProfiler`] handle the caller attached. From it:
//! [`SchedProfile::report`] aggregates a [`SchedReport`] (per-worker time
//! split, steal matrix, poll-size histogram, utilization) with an exact
//! hand-written JSON round-trip; [`SchedProfile::perfetto_json`] renders
//! one Chrome-trace track per worker (`X` category spans, steal flows
//! from victim to thief, per-worker runnable-queue counters) that
//! `trace-check` validates; [`SchedProfile::timeline`] and
//! [`SchedReport::summary`] render ASCII for terminals.
//!
//! [`ParEngine`]: crate::sim::par::ParEngine

use super::hist::LogHistogram;
use super::json::Json;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Number of scheduler categories.
pub const CATEGORIES: usize = 7;

/// What a worker is doing, at every instant, exactly one of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum SchedCat {
    /// Polling a claimed shard's runnable nodes (phase 1 work).
    Poll = 0,
    /// Draining a claimed shard's bin column + waking (phase 3 work).
    Deliver = 1,
    /// The coordinator's serial flush/pricing pass (phase 2 work).
    Serial = 2,
    /// Acquiring work: own-deque pops and steal probes between slices.
    Steal = 3,
    /// At the barrier: arrival, spin window, post-unpark wakeup.
    Barrier = 4,
    /// Parked on the barrier condvar.
    Park = 5,
    /// Uncategorized scheduler bookkeeping (staging, loop control).
    Other = 6,
}

impl SchedCat {
    /// All categories, in `repr` order.
    pub const ALL: [SchedCat; CATEGORIES] = [
        SchedCat::Poll,
        SchedCat::Deliver,
        SchedCat::Serial,
        SchedCat::Steal,
        SchedCat::Barrier,
        SchedCat::Park,
        SchedCat::Other,
    ];

    /// Stable lowercase name (used in JSON and Perfetto span names).
    pub fn name(self) -> &'static str {
        match self {
            SchedCat::Poll => "poll",
            SchedCat::Deliver => "deliver",
            SchedCat::Serial => "serial",
            SchedCat::Steal => "steal",
            SchedCat::Barrier => "barrier",
            SchedCat::Park => "park",
            SchedCat::Other => "other",
        }
    }

    /// One-character glyph for ASCII timelines.
    pub fn glyph(self) -> char {
        match self {
            SchedCat::Poll => '#',
            SchedCat::Deliver => 'd',
            SchedCat::Serial => '$',
            SchedCat::Steal => 's',
            SchedCat::Barrier => '=',
            SchedCat::Park => '.',
            SchedCat::Other => '-',
        }
    }
}

/// One ring entry's payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedEventKind {
    /// Entered `0` at the event's timestamp; the `u32` is the shard id for
    /// [`Poll`](SchedCat::Poll)/[`Deliver`](SchedCat::Deliver), 0 otherwise.
    Switch(SchedCat, u32),
    /// About to push one shard onto the worker's own deque (recorded
    /// *before* the push so the runnable counter never dips negative).
    Stage,
    /// Claimed one shard from the worker's own deque.
    Pop,
    /// Stole one shard from the given victim worker's deque.
    StealOk(u32),
    /// A steal probe of the given victim came back empty (or lost a race).
    StealFail(u32),
    /// Finished a poll slice that ran this many nodes.
    Polled(u32),
}

/// One timestamped scheduler event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedEvent {
    /// Nanoseconds since the run's shared epoch.
    pub t_ns: u64,
    /// The payload.
    pub kind: SchedEventKind,
}

/// Default per-worker event-ring capacity (entries). 64Ki × 16 bytes =
/// 1 MiB per worker — enough for every workload in this repo's test and
/// bench matrix without a drop.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Per-worker recorder: category totals, instant counters and the event
/// ring. Owned exclusively by one worker thread during the run; the
/// engine moves it back for aggregation afterwards.
#[derive(Clone, Debug)]
pub struct WorkerProf {
    worker: usize,
    epoch: Instant,
    start_ns: u64,
    end_ns: u64,
    last_ns: u64,
    cat: SchedCat,
    totals: [u64; CATEGORIES],
    polls: u64,
    nodes_polled: u64,
    shards_popped: u64,
    shards_stolen: u64,
    steal_attempts: u64,
    parks: u64,
    barriers: u64,
    /// Successful steals by victim worker index.
    steal_row: Vec<u64>,
    poll_hist: LogHistogram,
    ring: Vec<SchedEvent>,
    dropped: u64,
}

impl WorkerProf {
    /// A recorder for `worker` in a pool of `workers`, on the run's shared
    /// `epoch`. All storage is allocated here, up front — recording never
    /// allocates.
    pub fn new(worker: usize, workers: usize, epoch: Instant, ring_capacity: usize) -> Self {
        WorkerProf {
            worker,
            epoch,
            start_ns: 0,
            end_ns: 0,
            last_ns: 0,
            cat: SchedCat::Other,
            totals: [0; CATEGORIES],
            polls: 0,
            nodes_polled: 0,
            shards_popped: 0,
            shards_stolen: 0,
            steal_attempts: 0,
            parks: 0,
            barriers: 0,
            steal_row: vec![0; workers],
            poll_hist: LogHistogram::new(),
            ring: Vec::with_capacity(ring_capacity.max(1)),
            dropped: 0,
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn push(&mut self, t_ns: u64, kind: SchedEventKind) {
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(SchedEvent { t_ns, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// Marks the start of the worker's run, on the worker's own thread —
    /// wall time starts here, so thread-spawn latency is not charged.
    #[inline]
    pub fn begin(&mut self) {
        let t = self.now_ns();
        self.start_ns = t;
        self.last_ns = t;
        self.cat = SchedCat::Other;
        self.push(t, SchedEventKind::Switch(SchedCat::Other, 0));
    }

    /// Enters `cat`, charging the elapsed interval to the previous
    /// category. `arg` is the shard id for poll/deliver slices.
    #[inline]
    pub fn switch(&mut self, cat: SchedCat, arg: u32) {
        let t = self.now_ns();
        self.totals[self.cat as usize] += t.saturating_sub(self.last_ns);
        self.last_ns = t;
        self.cat = cat;
        self.push(t, SchedEventKind::Switch(cat, arg));
    }

    /// Records that one shard is about to be pushed onto the own deque.
    #[inline]
    pub fn staged(&mut self) {
        let t = self.now_ns();
        self.push(t, SchedEventKind::Stage);
    }

    /// Records a successful own-deque pop.
    #[inline]
    pub fn popped(&mut self) {
        self.shards_popped += 1;
        let t = self.now_ns();
        self.push(t, SchedEventKind::Pop);
    }

    /// Records a successful steal from `victim`.
    #[inline]
    pub fn stole(&mut self, victim: usize) {
        self.steal_attempts += 1;
        self.shards_stolen += 1;
        self.steal_row[victim] += 1;
        let t = self.now_ns();
        self.push(t, SchedEventKind::StealOk(victim as u32));
    }

    /// Records an empty/lost steal probe of `victim`.
    #[inline]
    pub fn steal_missed(&mut self, victim: usize) {
        self.steal_attempts += 1;
        let t = self.now_ns();
        self.push(t, SchedEventKind::StealFail(victim as u32));
    }

    /// Records a finished poll slice that ran `nodes` nodes.
    #[inline]
    pub fn polled(&mut self, nodes: u32) {
        self.polls += 1;
        self.nodes_polled += nodes as u64;
        self.poll_hist.record(nodes as u64);
        let t = self.now_ns();
        self.push(t, SchedEventKind::Polled(nodes));
    }

    /// Barrier arrival: switch to [`SchedCat::Barrier`] and count it.
    #[inline]
    pub fn barrier_arrived(&mut self) {
        self.barriers += 1;
        self.switch(SchedCat::Barrier, 0);
    }

    /// The spin window expired and the worker is about to park.
    #[inline]
    pub fn parked(&mut self) {
        self.parks += 1;
        self.switch(SchedCat::Park, 0);
    }

    /// Woke from the condvar park, back inside the barrier.
    #[inline]
    pub fn unparked(&mut self) {
        self.switch(SchedCat::Barrier, 0);
    }

    /// Closes the recorder at the worker's last instant (on the worker's
    /// own thread), charging the tail interval to the current category —
    /// after this, the category totals tile `[start, end]` exactly.
    pub fn finish(&mut self) {
        let t = self.now_ns();
        self.totals[self.cat as usize] += t.saturating_sub(self.last_ns);
        self.last_ns = t;
        self.end_ns = t;
    }

    /// The worker's pool index.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Wall nanoseconds from [`begin`](Self::begin) to
    /// [`finish`](Self::finish).
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Nanoseconds charged to `cat`.
    pub fn total_ns(&self, cat: SchedCat) -> u64 {
        self.totals[cat as usize]
    }

    /// Events dropped because the ring filled (totals stay exact).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorded events, in time order.
    pub fn events(&self) -> &[SchedEvent] {
        &self.ring
    }
}

/// The raw result of one profiled run: the effective schedule plus every
/// worker's recorder. Produced by the engine, consumed through
/// [`report`](Self::report) / [`perfetto_json`](Self::perfetto_json) /
/// [`timeline`](Self::timeline).
#[derive(Clone, Debug)]
pub struct SchedProfile {
    /// Worker count the caller asked for.
    pub workers_requested: usize,
    /// Worker count that actually ran (after the shard-count clamp).
    pub workers: usize,
    /// Effective shard size (after `auto_shard_size`).
    pub shard_size: usize,
    /// Number of shards.
    pub shard_count: usize,
    /// Participating (live) nodes.
    pub live_nodes: usize,
    /// Whether the serial flush phase ran (sink attached or contended
    /// links).
    pub serial: bool,
    /// Per-worker recorders, indexed by worker.
    pub workers_prof: Vec<WorkerProf>,
}

impl SchedProfile {
    /// Wall nanoseconds from the first worker's start to the last
    /// worker's end.
    pub fn makespan_ns(&self) -> u64 {
        let start = self
            .workers_prof
            .iter()
            .map(|p| p.start_ns)
            .min()
            .unwrap_or(0);
        let end = self
            .workers_prof
            .iter()
            .map(|p| p.end_ns)
            .max()
            .unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Aggregates the rings into a serializable [`SchedReport`].
    pub fn report(&self) -> SchedReport {
        let mut poll_hist = LogHistogram::new();
        let mut per_worker = Vec::with_capacity(self.workers_prof.len());
        let mut steal_matrix = Vec::with_capacity(self.workers_prof.len());
        let mut events_dropped = 0;
        for p in &self.workers_prof {
            poll_hist.merge(&p.poll_hist);
            events_dropped += p.dropped;
            steal_matrix.push(p.steal_row.clone());
            per_worker.push(SchedWorkerReport {
                worker: p.worker,
                poll_ns: p.total_ns(SchedCat::Poll),
                deliver_ns: p.total_ns(SchedCat::Deliver),
                serial_ns: p.total_ns(SchedCat::Serial),
                steal_ns: p.total_ns(SchedCat::Steal),
                barrier_ns: p.total_ns(SchedCat::Barrier),
                park_ns: p.total_ns(SchedCat::Park),
                other_ns: p.total_ns(SchedCat::Other),
                wall_ns: p.wall_ns(),
                polls: p.polls,
                nodes_polled: p.nodes_polled,
                shards_popped: p.shards_popped,
                shards_stolen: p.shards_stolen,
                steal_attempts: p.steal_attempts,
                parks: p.parks,
                barriers: p.barriers,
            });
        }
        SchedReport {
            workers_requested: self.workers_requested,
            workers: self.workers,
            shard_size: self.shard_size,
            shard_count: self.shard_count,
            live_nodes: self.live_nodes,
            serial: self.serial,
            makespan_ns: self.makespan_ns(),
            events_dropped,
            per_worker,
            steal_matrix,
            poll_hist,
        }
    }

    /// Renders the rings as Chrome-trace-event JSON: one track per worker
    /// under a synthetic `pid` 1 "scheduler" process, with `X` category
    /// spans (cat `"sched"`), steal flows from victim to thief (cat
    /// `"steal"`), and one runnable-queue counter track per worker
    /// (`runnable W<i>`; skipped — with a metadata note — when any ring
    /// dropped events, because a truncated ring's deltas no longer
    /// balance). Validated by `validate_chrome_trace`.
    pub fn perfetto_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let emit = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
        };

        emit(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{{\"name\":\"scheduler\"}}}}"
        );
        for p in &self.workers_prof {
            emit(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"worker {}\"}}}}",
                p.worker, p.worker
            );
        }

        // Category spans: each worker's ring is a time-ordered sequence of
        // switches, so per-track timestamps come out non-decreasing —
        // `trace-check` verifies that for cat "sched" tracks. `Other`
        // slices (sub-microsecond bookkeeping) are left as gaps.
        for p in &self.workers_prof {
            let mut open: Option<(SchedCat, u64, u32)> = None;
            let close = |out: &mut String,
                         first: &mut bool,
                         open: &mut Option<(SchedCat, u64, u32)>,
                         end: u64| {
                if let Some((cat, begin, arg)) = open.take() {
                    if cat != SchedCat::Other {
                        emit(out, first);
                        let _ = write!(
                            out,
                            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"sched\",\"ts\":{},\"dur\":{}",
                            p.worker,
                            cat.name(),
                            begin as f64 / 1000.0,
                            end.saturating_sub(begin) as f64 / 1000.0
                        );
                        if matches!(cat, SchedCat::Poll | SchedCat::Deliver) {
                            let _ = write!(out, ",\"args\":{{\"shard\":{arg}}}");
                        }
                        out.push('}');
                    }
                }
            };
            for e in p.events() {
                if let SchedEventKind::Switch(cat, arg) = e.kind {
                    close(&mut out, &mut first, &mut open, e.t_ns);
                    open = Some((cat, e.t_ns, arg));
                }
            }
            close(&mut out, &mut first, &mut open, p.end_ns);
        }

        // Steal flows: start on the victim's track, finish on the thief's,
        // both at the steal instant — the UI draws the migration arrow.
        let mut flow_id = 0u64;
        for p in &self.workers_prof {
            for e in p.events() {
                if let SchedEventKind::StealOk(victim) = e.kind {
                    let ts = e.t_ns as f64 / 1000.0;
                    emit(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"s\",\"pid\":1,\"tid\":{victim},\"id\":{flow_id},\"name\":\"steal\",\"cat\":\"steal\",\"ts\":{ts}}}"
                    );
                    emit(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{},\"id\":{flow_id},\"name\":\"steal\",\"cat\":\"steal\",\"ts\":{ts}}}",
                        p.worker
                    );
                    flow_id += 1;
                }
            }
        }

        // Runnable-queue depth per worker deque: +1 when the owner stages
        // a shard (recorded before the push), -1 when the owner pops it,
        // -1 against the *victim's* track when a thief steals it. Only
        // sound when every ring is complete — a truncated ring would
        // unbalance the deltas — so drops disable the tracks.
        let dropped: u64 = self.workers_prof.iter().map(|p| p.dropped).sum();
        if dropped == 0 {
            let mut deltas: Vec<Vec<(f64, i64)>> = vec![Vec::new(); self.workers_prof.len()];
            for p in &self.workers_prof {
                for e in p.events() {
                    let ts = e.t_ns as f64 / 1000.0;
                    match e.kind {
                        SchedEventKind::Stage => deltas[p.worker].push((ts, 1)),
                        SchedEventKind::Pop => deltas[p.worker].push((ts, -1)),
                        SchedEventKind::StealOk(victim) => {
                            deltas[victim as usize].push((ts, -1));
                        }
                        _ => {}
                    }
                }
            }
            for (w, series) in deltas.iter_mut().enumerate() {
                super::perfetto::counter_track(
                    &mut out,
                    &mut first,
                    1,
                    &format!("runnable W{w}"),
                    "shards",
                    series,
                );
            }
        } else {
            emit(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"name\":\"sched_events_dropped\",\"args\":{{\"dropped\":{dropped}}}}}"
            );
        }

        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders an ASCII timeline: one row of `width` buckets per worker,
    /// each bucket showing the glyph of the category that dominated it
    /// (`#` poll, `d` deliver, `$` serial, `s` steal, `=` barrier,
    /// `.` park, `-` other, space = outside the worker's lifetime).
    pub fn timeline(&self, width: usize) -> String {
        let width = width.max(8);
        let start = self
            .workers_prof
            .iter()
            .map(|p| p.start_ns)
            .min()
            .unwrap_or(0);
        let span = self.makespan_ns().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "worker timeline ({} buckets × {}): # poll  d deliver  $ serial  s steal  = barrier  . park  - other",
            width,
            fmt_ns(span / width as u64)
        );
        for p in &self.workers_prof {
            // per-bucket nanoseconds per category
            let mut buckets = vec![[0u64; CATEGORIES]; width];
            let mut fill = |cat: SchedCat, begin: u64, end: u64| {
                let (mut b, e) = (begin.max(start) - start, end.max(begin) - start);
                while b < e {
                    let idx = ((b as u128 * width as u128) / span as u128) as usize;
                    let idx = idx.min(width - 1);
                    // end of this bucket in run-relative ns
                    let edge = ((idx as u128 + 1) * span as u128).div_ceil(width as u128) as u64;
                    let stop = e.min(edge.max(b + 1));
                    buckets[idx][cat as usize] += stop - b;
                    b = stop;
                }
            };
            let mut open: Option<(SchedCat, u64)> = None;
            for e in p.events() {
                if let SchedEventKind::Switch(cat, _) = e.kind {
                    if let Some((prev, begin)) = open.take() {
                        fill(prev, begin, e.t_ns);
                    }
                    open = Some((cat, e.t_ns));
                }
            }
            if let Some((prev, begin)) = open.take() {
                fill(prev, begin, p.end_ns);
            }
            let _ = write!(out, "  W{} |", p.worker);
            for b in &buckets {
                let total: u64 = b.iter().sum();
                if total == 0 {
                    out.push(' ');
                } else {
                    let best = SchedCat::ALL
                        .iter()
                        .copied()
                        .max_by_key(|&c| b[c as usize])
                        .expect("categories are non-empty");
                    out.push(best.glyph());
                }
            }
            out.push_str("|\n");
        }
        out
    }
}

/// Per-worker aggregated row of a [`SchedReport`]. All `_ns` fields are
/// wall nanoseconds; the seven category fields tile `wall_ns` exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedWorkerReport {
    /// Pool index.
    pub worker: usize,
    /// Time polling shards.
    pub poll_ns: u64,
    /// Time delivering commits.
    pub deliver_ns: u64,
    /// Time in the coordinator's serial flush (0 for workers ≥ 1).
    pub serial_ns: u64,
    /// Time acquiring work (own pops + steal probes).
    pub steal_ns: u64,
    /// Time at the barrier (arrival, spin, post-unpark).
    pub barrier_ns: u64,
    /// Time parked on the barrier condvar.
    pub park_ns: u64,
    /// Uncategorized scheduler bookkeeping.
    pub other_ns: u64,
    /// Wall time from the worker's begin to its finish.
    pub wall_ns: u64,
    /// Poll slices run.
    pub polls: u64,
    /// Nodes polled, summed over slices.
    pub nodes_polled: u64,
    /// Shards claimed from the own deque.
    pub shards_popped: u64,
    /// Shards stolen from peers.
    pub shards_stolen: u64,
    /// Steal probes issued (hits + misses).
    pub steal_attempts: u64,
    /// Times the worker parked at the barrier.
    pub parks: u64,
    /// Barrier arrivals.
    pub barriers: u64,
}

impl SchedWorkerReport {
    /// Productive time: poll + deliver + serial.
    pub fn busy_ns(&self) -> u64 {
        self.poll_ns + self.deliver_ns + self.serial_ns
    }

    /// Sum of all seven category buckets — equals `wall_ns` up to clock
    /// granularity.
    pub fn accounted_ns(&self) -> u64 {
        self.busy_ns() + self.steal_ns + self.barrier_ns + self.park_ns + self.other_ns
    }
}

/// The aggregated, serializable scheduler profile of one run. Raw fields
/// round-trip exactly through [`to_json`](Self::to_json) /
/// [`from_json`](Self::from_json); utilization, steal rate and barrier
/// share are derived ([`utilization`](Self::utilization) etc.) and
/// re-derived on parse.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedReport {
    /// Worker count the caller asked for.
    pub workers_requested: usize,
    /// Worker count that actually ran.
    pub workers: usize,
    /// Effective shard size.
    pub shard_size: usize,
    /// Number of shards.
    pub shard_count: usize,
    /// Participating nodes.
    pub live_nodes: usize,
    /// Whether the serial flush phase ran.
    pub serial: bool,
    /// Wall nanoseconds from first worker start to last worker end.
    pub makespan_ns: u64,
    /// Ring entries dropped across all workers (totals stay exact).
    pub events_dropped: u64,
    /// Per-worker rows, indexed by worker.
    pub per_worker: Vec<SchedWorkerReport>,
    /// `steal_matrix[thief][victim]` = successful steals.
    pub steal_matrix: Vec<Vec<u64>>,
    /// Histogram of nodes-per-poll-slice (log₂ buckets).
    pub poll_hist: LogHistogram,
}

impl SchedReport {
    /// Mean worker utilization: Σ busy / (workers × makespan), in `[0,1]`.
    pub fn utilization(&self) -> f64 {
        let denom = self.per_worker.len() as u64 * self.makespan_ns;
        if denom == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_worker.iter().map(SchedWorkerReport::busy_ns).sum();
        busy as f64 / denom as f64
    }

    /// Fraction of claimed shard slices that were stolen rather than
    /// popped from the owner's deque.
    pub fn steal_rate(&self) -> f64 {
        let (stolen, popped) = self.per_worker.iter().fold((0u64, 0u64), |(s, p), w| {
            (s + w.shards_stolen, p + w.shards_popped)
        });
        if stolen + popped == 0 {
            return 0.0;
        }
        stolen as f64 / (stolen + popped) as f64
    }

    /// Fraction of total worker wall time spent at the barrier (including
    /// parked).
    pub fn barrier_share(&self) -> f64 {
        let wall: u64 = self.per_worker.iter().map(|w| w.wall_ns).sum();
        if wall == 0 {
            return 0.0;
        }
        let barrier: u64 = self
            .per_worker
            .iter()
            .map(|w| w.barrier_ns + w.park_ns)
            .sum();
        barrier as f64 / wall as f64
    }

    /// Serializes to the sched-report JSON schema (DESIGN.md §6). Derived
    /// metrics are included for consumers (`sched_json`, `bench_diff`) but
    /// ignored on parse.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"workers_requested\":{},\"workers\":{},\"shard_size\":{},\"shard_count\":{},\"live_nodes\":{},\"serial\":{},\"makespan_ns\":{},\"events_dropped\":{},\"utilization\":{},\"steal_rate\":{},\"barrier_share\":{},\"workers_detail\":[",
            self.workers_requested,
            self.workers,
            self.shard_size,
            self.shard_count,
            self.live_nodes,
            self.serial,
            self.makespan_ns,
            self.events_dropped,
            self.utilization(),
            self.steal_rate(),
            self.barrier_share(),
        );
        for (i, w) in self.per_worker.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"poll_ns\":{},\"deliver_ns\":{},\"serial_ns\":{},\"steal_ns\":{},\"barrier_ns\":{},\"park_ns\":{},\"other_ns\":{},\"wall_ns\":{},\"polls\":{},\"nodes_polled\":{},\"shards_popped\":{},\"shards_stolen\":{},\"steal_attempts\":{},\"parks\":{},\"barriers\":{}}}",
                w.worker,
                w.poll_ns,
                w.deliver_ns,
                w.serial_ns,
                w.steal_ns,
                w.barrier_ns,
                w.park_ns,
                w.other_ns,
                w.wall_ns,
                w.polls,
                w.nodes_polled,
                w.shards_popped,
                w.shards_stolen,
                w.steal_attempts,
                w.parks,
                w.barriers,
            );
        }
        out.push_str("],\"steal_matrix\":[");
        for (i, row) in self.steal_matrix.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        let _ = write!(out, "],\"poll_hist\":{}}}", self.poll_hist.to_json());
        out
    }

    /// Parses a report serialized by [`to_json`](Self::to_json); the
    /// round-trip is exact on every raw field.
    pub fn from_json(text: &str) -> Result<SchedReport, String> {
        let doc = Json::parse(text)?;
        let int = |o: &Json, k: &str| {
            o.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer '{k}'"))
        };
        let mut per_worker = Vec::new();
        for w in doc
            .get("workers_detail")
            .and_then(Json::as_arr)
            .ok_or("missing 'workers_detail'")?
        {
            per_worker.push(SchedWorkerReport {
                worker: int(w, "worker")? as usize,
                poll_ns: int(w, "poll_ns")?,
                deliver_ns: int(w, "deliver_ns")?,
                serial_ns: int(w, "serial_ns")?,
                steal_ns: int(w, "steal_ns")?,
                barrier_ns: int(w, "barrier_ns")?,
                park_ns: int(w, "park_ns")?,
                other_ns: int(w, "other_ns")?,
                wall_ns: int(w, "wall_ns")?,
                polls: int(w, "polls")?,
                nodes_polled: int(w, "nodes_polled")?,
                shards_popped: int(w, "shards_popped")?,
                shards_stolen: int(w, "shards_stolen")?,
                steal_attempts: int(w, "steal_attempts")?,
                parks: int(w, "parks")?,
                barriers: int(w, "barriers")?,
            });
        }
        let mut steal_matrix = Vec::new();
        for row in doc
            .get("steal_matrix")
            .and_then(Json::as_arr)
            .ok_or("missing 'steal_matrix'")?
        {
            let row = row.as_arr().ok_or("steal_matrix row is not an array")?;
            let mut out = Vec::with_capacity(row.len());
            for v in row {
                out.push(v.as_u64().ok_or("steal_matrix entry is not an integer")?);
            }
            steal_matrix.push(out);
        }
        let hist_counts: Vec<u64> = doc
            .get("poll_hist")
            .and_then(Json::as_arr)
            .ok_or("missing 'poll_hist'")?
            .iter()
            .map(|v| v.as_u64().ok_or("poll_hist entry is not an integer"))
            .collect::<Result<_, _>>()?;
        Ok(SchedReport {
            workers_requested: int(&doc, "workers_requested")? as usize,
            workers: int(&doc, "workers")? as usize,
            shard_size: int(&doc, "shard_size")? as usize,
            shard_count: int(&doc, "shard_count")? as usize,
            live_nodes: int(&doc, "live_nodes")? as usize,
            serial: doc
                .get("serial")
                .and_then(Json::as_bool)
                .ok_or("missing 'serial'")?,
            makespan_ns: int(&doc, "makespan_ns")?,
            events_dropped: int(&doc, "events_dropped")?,
            per_worker,
            steal_matrix,
            poll_hist: LogHistogram::from_counts(&hist_counts)?,
        })
    }

    /// Renders the human summary: effective schedule, per-worker split
    /// percentages, and the three headline metrics.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scheduler profile: {} worker(s) ({} requested), {} shard(s) × {} node(s), {} live, makespan {}{}",
            self.workers,
            self.workers_requested,
            self.shard_count,
            self.shard_size,
            self.live_nodes,
            fmt_ns(self.makespan_ns),
            if self.serial { ", serial flush on" } else { "" },
        );
        let _ = writeln!(
            out,
            "  worker    busy%   steal% barrier%    park%   other%    polls  claimed(stolen)  parks"
        );
        for w in &self.per_worker {
            let pct = |ns: u64| {
                if w.wall_ns == 0 {
                    0.0
                } else {
                    100.0 * ns as f64 / w.wall_ns as f64
                }
            };
            let _ = writeln!(
                out,
                "  W{:<7} {:>6.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8}  {:>9}({:<4}) {:>6}",
                w.worker,
                pct(w.busy_ns()),
                pct(w.steal_ns),
                pct(w.barrier_ns),
                pct(w.park_ns),
                pct(w.other_ns),
                w.polls,
                w.shards_popped + w.shards_stolen,
                w.shards_stolen,
                w.parks,
            );
        }
        let _ = writeln!(
            out,
            "  utilization {:.3} | steal rate {:.3} | barrier share {:.3}{}",
            self.utilization(),
            self.steal_rate(),
            self.barrier_share(),
            if self.events_dropped > 0 {
                format!(" | {} ring event(s) dropped", self.events_dropped)
            } else {
                String::new()
            },
        );
        out
    }
}

/// Formats nanoseconds human-readably (ns / µs / ms / s).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// The handle a caller attaches to the engine to receive profiles:
/// configuration in, [`SchedProfile`] out (last run wins). The engine
/// only touches it at run setup (ring capacity) and teardown (install) —
/// never on the hot path.
#[derive(Debug, Default)]
pub struct SchedProfiler {
    ring_capacity: usize,
    slot: Mutex<Option<SchedProfile>>,
}

impl SchedProfiler {
    /// A profiler with the default ring capacity.
    pub fn new() -> Self {
        SchedProfiler {
            ring_capacity: 0,
            slot: Mutex::new(None),
        }
    }

    /// Overrides the per-worker event-ring capacity (builder style).
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// The per-worker ring capacity runs will preallocate.
    pub fn ring_capacity(&self) -> usize {
        if self.ring_capacity == 0 {
            DEFAULT_RING_CAPACITY
        } else {
            self.ring_capacity
        }
    }

    /// Deposits a finished run's profile (called by the engine; replaces
    /// any previous run's).
    pub fn install(&self, profile: SchedProfile) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(profile);
    }

    /// Takes the most recent run's profile, if any run was profiled.
    pub fn take(&self) -> Option<SchedProfile> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::perfetto::validate_chrome_trace;

    /// Drives two synthetic workers through a plausible round: W0 polls
    /// its own shard; W1 misses once, then steals shard 0 from W0 and
    /// polls it; both cross a barrier (W1 parks).
    fn synthetic_profile() -> SchedProfile {
        let epoch = Instant::now();
        let mut w0 = WorkerProf::new(0, 2, epoch, 64);
        let mut w1 = WorkerProf::new(1, 2, epoch, 64);
        w0.begin();
        w1.begin();
        w0.staged();
        w0.staged();
        w0.switch(SchedCat::Steal, 0);
        w0.popped();
        w0.switch(SchedCat::Poll, 0);
        w0.polled(3);
        w0.switch(SchedCat::Steal, 0);
        w1.switch(SchedCat::Steal, 0);
        w1.steal_missed(0);
        w1.stole(0);
        w1.switch(SchedCat::Poll, 1);
        w1.polled(2);
        w1.switch(SchedCat::Steal, 0);
        w0.switch(SchedCat::Other, 0);
        w1.switch(SchedCat::Other, 0);
        w1.barrier_arrived();
        w1.parked();
        w1.unparked();
        w1.switch(SchedCat::Other, 0);
        w0.barrier_arrived();
        w0.switch(SchedCat::Serial, 0);
        w0.switch(SchedCat::Other, 0);
        w0.finish();
        w1.finish();
        SchedProfile {
            workers_requested: 4,
            workers: 2,
            shard_size: 1,
            shard_count: 2,
            live_nodes: 2,
            serial: true,
            workers_prof: vec![w0, w1],
        }
    }

    #[test]
    fn categories_tile_wall_time_exactly() {
        let profile = synthetic_profile();
        let report = profile.report();
        for w in &report.per_worker {
            assert_eq!(
                w.accounted_ns(),
                w.wall_ns,
                "worker {} categories must tile its wall time",
                w.worker
            );
        }
        assert!(
            report.makespan_ns
                >= report.per_worker[0]
                    .wall_ns
                    .min(report.per_worker[1].wall_ns)
        );
        // counters
        assert_eq!(report.per_worker[0].shards_popped, 1);
        assert_eq!(report.per_worker[1].shards_stolen, 1);
        assert_eq!(report.per_worker[1].steal_attempts, 2);
        assert_eq!(report.steal_matrix[1][0], 1);
        assert_eq!(report.per_worker[1].parks, 1);
        assert_eq!(report.poll_hist.total(), 2);
        // derived metrics are in range
        assert!(report.utilization() >= 0.0 && report.utilization() <= 1.0);
        assert_eq!(report.steal_rate(), 0.5);
        assert!(report.barrier_share() >= 0.0 && report.barrier_share() <= 1.0);
    }

    #[test]
    fn report_json_roundtrip_is_exact() {
        let report = synthetic_profile().report();
        let text = report.to_json();
        let back = SchedReport::from_json(&text).expect("parse");
        assert_eq!(back, report);
        // derived metrics re-serialize identically
        assert_eq!(back.to_json(), text);
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn perfetto_export_validates_and_names_workers() {
        let profile = synthetic_profile();
        let text = profile.perfetto_json();
        let doc = Json::parse(&text).expect("valid JSON");
        let check = validate_chrome_trace(&doc).expect("structurally valid");
        assert!(check.spans > 0, "category spans present");
        assert_eq!(check.flows, 1, "one steal flow");
        assert!(check.counters > 0, "runnable counters present");
        assert!(text.contains("\"worker 0\""));
        assert!(text.contains("\"worker 1\""));
        assert!(text.contains("\"cat\":\"steal\""));
        assert!(text.contains("runnable W0"));
    }

    #[test]
    fn ring_overflow_drops_events_but_keeps_totals() {
        let epoch = Instant::now();
        let mut w = WorkerProf::new(0, 1, epoch, 4);
        w.begin();
        for _ in 0..10 {
            w.switch(SchedCat::Poll, 0);
            w.switch(SchedCat::Steal, 0);
        }
        w.finish();
        assert_eq!(w.events().len(), 4);
        assert_eq!(w.dropped(), 17);
        assert_eq!(
            w.total_ns(SchedCat::Poll) + w.total_ns(SchedCat::Steal) + w.total_ns(SchedCat::Other),
            w.wall_ns(),
            "totals stay exact past the drop point"
        );
        // dropped rings disable the runnable counter tracks
        let profile = SchedProfile {
            workers_requested: 1,
            workers: 1,
            shard_size: 1,
            shard_count: 1,
            live_nodes: 1,
            serial: false,
            workers_prof: vec![w],
        };
        let text = profile.perfetto_json();
        assert!(!text.contains("runnable W0"));
        assert!(text.contains("sched_events_dropped"));
        assert!(
            validate_chrome_trace(&Json::parse(&text).unwrap()).is_ok(),
            "truncated export still validates"
        );
    }

    #[test]
    fn timeline_has_one_row_per_worker() {
        let profile = synthetic_profile();
        let text = profile.timeline(32);
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 3, "header + one row per worker");
        assert!(rows[1].starts_with("  W0 |"));
        assert!(rows[2].starts_with("  W1 |"));
        // rows are exactly the bucket width between the pipes
        let body = rows[1].split('|').nth(1).expect("bucket body");
        assert_eq!(body.chars().count(), 32);
    }

    #[test]
    fn profiler_mailbox_takes_last_install() {
        let profiler = SchedProfiler::new().with_ring_capacity(8);
        assert_eq!(profiler.ring_capacity(), 8);
        assert!(profiler.take().is_none());
        profiler.install(synthetic_profile());
        let mut second = synthetic_profile();
        second.live_nodes = 99;
        profiler.install(second);
        let got = profiler.take().expect("installed");
        assert_eq!(got.live_nodes, 99, "last run wins");
        assert!(profiler.take().is_none(), "take consumes");
        assert_eq!(SchedProfiler::new().ring_capacity(), DEFAULT_RING_CAPACITY);
    }
}
