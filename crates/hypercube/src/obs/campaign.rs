//! Monte-Carlo fault-campaign observatory: streaming aggregate analytics
//! over thousands of seeded fault placements, plus outlier forensics.
//!
//! Every observability surface below this module — [`RunReport`](super::RunReport),
//! Perfetto export, critical-path diffing, the scheduler profiler — looks
//! at exactly *one* run. The paper's headline results (Tables 1–2) are the
//! opposite: **expectations over random fault placements**. This module
//! holds the fleet-scale half of that question:
//!
//! * [`RunSummary`] — the per-run digest a campaign driver extracts from
//!   one sort (makespan, per-phase virtual times, wait totals, operation
//!   counts, inbox peak, and the faulty-subcube partition shape).
//! * [`CampaignAccumulator`] — *online* aggregation: per-(n, fault-count)
//!   cell, each metric keeps count/sum/min/max plus a log-bucket
//!   [`LogHistogram`] for percentile estimates
//!   ([`LogHistogram::quantile`]). Summaries **must** be fed in ascending
//!   run-index order — the deterministic merge rule that makes campaign
//!   output byte-identical regardless of how many worker threads produced
//!   the summaries (workers fill an index-addressed table; the single
//!   merge pass walks it in order, so float accumulation order is fixed).
//! * [`CampaignReport`] — the versioned aggregate with an exact
//!   hand-written JSON round-trip (the [`RunReport`](super::RunReport)
//!   idiom: `Display`-formatted floats, field-for-field `from_json`) and
//!   Table-1-style ASCII distribution tables ([`CampaignReport::tables`]).
//! * **Outlier policy** — per cell, every run whose makespan is at/above
//!   the interpolated p99 estimate is an outlier (the cell maximum always
//!   qualifies, so small campaigns still capture at least one), and the
//!   run at the p50 order statistic (ties broken by lowest run index) is
//!   the *median exemplar*; a driver re-executes exactly these runs with a
//!   streaming sink to capture gzip v2 run files for `replay`/`trace-diff`
//!   forensics. Selection happens after the deterministic aggregation
//!   pass, so the captured set (and bytes) is `--jobs`-independent.
//! * [`CampaignMetrics`] — live-progress instruments on the
//!   [`metrics`](super::metrics) registry: a `runs_completed` counter and
//!   one makespan histogram per cell, so a Prometheus snapshot taken
//!   mid-campaign shows the distributions filling in.
//!
//! The sort-executing driver itself lives downstream (the `ft-bench`
//! crate's `campaign` module and the `ftsort-campaign` CLI): this crate
//! simulates machines but does not know how to plan a fault-tolerant sort.

use super::hist::LogHistogram;
use super::json::{self, Json};
use super::metrics::{Counter, Histogram, Registry};
use crate::sim::LinkModel;
use std::fmt::Write as _;

/// Campaign report schema version ([`CampaignReport::version`]).
pub const CAMPAIGN_SCHEMA_VERSION: u64 = 1;

/// The digest one campaign run contributes to the aggregates: everything
/// Table-1-style distribution tables need, nothing the engines would have
/// to keep alive afterwards.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Global run index within the campaign (cell-major, see the driver).
    pub run_index: u64,
    /// The per-run RNG seed derived from the campaign seed and
    /// `run_index` (recorded so a single run can be reproduced by hand).
    pub seed: u64,
    /// Cube dimension.
    pub n: usize,
    /// Faults placed.
    pub r: usize,
    /// Simulated turnaround time, µs.
    pub makespan_us: f64,
    /// Step-3 virtual time (local + intra-subcube sort), µs.
    pub step3_us: f64,
    /// Step-7 virtual time (inter-subcube compare-splits), µs.
    pub step7_us: f64,
    /// Step-8 virtual time (re-merge/re-sort), µs.
    pub step8_us: f64,
    /// Link-queueing wait summed over nodes, µs (0 when uncontended).
    pub wait_total_us: f64,
    /// Key comparisons performed.
    pub comparisons: u64,
    /// Elements × links crossed.
    pub element_hops: u64,
    /// Receive-queue high-water mark, max over nodes.
    pub inbox_peak: u64,
    /// Minimum cutting-dimension count `m` of the fault partition.
    pub mincut: usize,
    /// Subcube dimension `s` of the designated single-fault structure.
    pub subcube_dim: usize,
    /// Live (non-faulty) processors.
    pub live: usize,
}

/// Online aggregate of one scalar metric: count, exact running sum (for
/// the mean), min/max, and a log-bucket histogram for quantile estimates.
///
/// `record` is O(1) and allocation-free; the mean is `sum / count`
/// computed at read time, so feeding summaries in a fixed order makes the
/// float result bit-reproducible (the campaign's determinism contract).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricAgg {
    /// Samples recorded.
    pub count: u64,
    /// Running sum (fixed accumulation order ⇒ bit-reproducible).
    pub sum: f64,
    /// Smallest sample (0 until the first record).
    pub min: f64,
    /// Largest sample (0 until the first record).
    pub max: f64,
    /// Log-bucket histogram of the samples truncated to `u64`.
    pub hist: LogHistogram,
}

impl Default for MetricAgg {
    fn default() -> Self {
        MetricAgg::new()
    }
}

impl MetricAgg {
    /// An empty aggregate.
    pub fn new() -> Self {
        MetricAgg {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            hist: LogHistogram::new(),
        }
    }

    /// Streams one sample in.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
        self.hist.record(v as u64);
    }

    /// Arithmetic mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"hist\":{}}}",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.hist.to_json()
        )
    }

    fn from_json(doc: &Json) -> Result<MetricAgg, String> {
        let num = |k: &str| {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric aggregate missing number '{k}'"))
        };
        let counts: Vec<u64> = doc
            .get("hist")
            .and_then(Json::as_arr)
            .ok_or("metric aggregate missing 'hist' array")?
            .iter()
            .map(|c| c.as_u64().ok_or("non-integer histogram count"))
            .collect::<Result<_, _>>()?;
        Ok(MetricAgg {
            count: doc
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("metric aggregate missing 'count'")?,
            sum: num("sum")?,
            min: num("min")?,
            max: num("max")?,
            hist: LogHistogram::from_counts(&counts)?,
        })
    }
}

/// The metric slots every cell aggregates, in serialization/table order.
const METRICS: [&str; 8] = [
    "makespan_us",
    "step3_us",
    "step7_us",
    "step8_us",
    "wait_total_us",
    "comparisons",
    "element_hops",
    "inbox_peak",
];

/// Aggregates for one (n, fault-count) campaign cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// Cube dimension.
    pub n: usize,
    /// Faults per run.
    pub r: usize,
    /// Runs aggregated.
    pub runs: u64,
    /// Runs that failed to plan/execute and were dropped from the
    /// aggregates (surfaces as `events_dropped` in `bench_diff`).
    pub runs_failed: u64,
    /// Per-metric aggregates, indexed like [`METRICS`].
    pub metrics: Vec<MetricAgg>,
    /// Distribution of the partition's minimum cut `m` (index = `m`).
    pub mincut_counts: Vec<u64>,
    /// Distribution of the structure's subcube dimension `s` (index = `s`).
    pub sdim_counts: Vec<u64>,
    /// Interpolated p50 makespan estimate, µs (0 when the cell is empty).
    pub p50_makespan_us: u64,
    /// Interpolated p99 makespan estimate, µs.
    pub p99_makespan_us: u64,
    /// Interpolated p50 wait-total estimate, µs.
    pub p50_wait_total_us: u64,
    /// Interpolated p99 wait-total estimate, µs.
    pub p99_wait_total_us: u64,
    /// Run indices at/above the p99 makespan estimate (the cell maximum
    /// always qualifies), ascending — the forensics capture set.
    pub outlier_runs: Vec<u64>,
    /// Run index of the p50 order statistic (lowest index on ties) — the
    /// median exemplar outliers are diffed against. `None` when empty.
    pub median_run: Option<u64>,
}

impl CellReport {
    /// The aggregate for a named metric slot (see `METRICS`).
    pub fn metric(&self, name: &str) -> Option<&MetricAgg> {
        METRICS
            .iter()
            .position(|&m| m == name)
            .map(|i| &self.metrics[i])
    }
}

/// The versioned whole-campaign aggregate: configuration echo plus one
/// [`CellReport`] per (n, fault-count) cell, in configuration order.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Schema version ([`CAMPAIGN_SCHEMA_VERSION`]).
    pub version: u64,
    /// The campaign seed every per-run seed derives from.
    pub campaign_seed: u64,
    /// Runs attempted per cell.
    pub runs_per_cell: u64,
    /// Total elements sorted per run.
    pub m: u64,
    /// Link pricing model of every run.
    pub link_model: LinkModel,
    /// Key type of every run (`u32|u64|i64|pair`).
    pub key_type: String,
    /// Per-cell aggregates.
    pub cells: Vec<CellReport>,
}

/// One cell's online state inside [`CampaignAccumulator`].
#[derive(Clone, Debug)]
struct CellAccumulator {
    n: usize,
    r: usize,
    runs_failed: u64,
    metrics: Vec<MetricAgg>,
    mincut_counts: Vec<u64>,
    sdim_counts: Vec<u64>,
    /// `(run_index, makespan_us)` per run — kept so outlier/median
    /// selection can name run indices once the final quantiles are known.
    makespans: Vec<(u64, f64)>,
}

impl CellAccumulator {
    fn new(n: usize, r: usize) -> Self {
        CellAccumulator {
            n,
            r,
            runs_failed: 0,
            metrics: vec![MetricAgg::new(); METRICS.len()],
            mincut_counts: Vec::new(),
            sdim_counts: Vec::new(),
            makespans: Vec::new(),
        }
    }

    fn record(&mut self, s: &RunSummary) {
        let values = [
            s.makespan_us,
            s.step3_us,
            s.step7_us,
            s.step8_us,
            s.wait_total_us,
            s.comparisons as f64,
            s.element_hops as f64,
            s.inbox_peak as f64,
        ];
        for (agg, v) in self.metrics.iter_mut().zip(values) {
            agg.record(v);
        }
        bump(&mut self.mincut_counts, s.mincut);
        bump(&mut self.sdim_counts, s.subcube_dim);
        self.makespans.push((s.run_index, s.makespan_us));
    }

    fn finish(self) -> CellReport {
        let makespan_hist = &self.metrics[0].hist;
        let wait_hist = &self.metrics[4].hist;
        let p50 = makespan_hist.quantile(0.5).unwrap_or(0);
        let p99 = makespan_hist.quantile(0.99).unwrap_or(0);
        let max = self.metrics[0].max;

        // Outliers: at/above the interpolated p99 estimate; the cell
        // maximum always qualifies so every non-empty cell captures ≥ 1.
        let mut outlier_runs: Vec<u64> = self
            .makespans
            .iter()
            .filter(|&&(_, mk)| mk as u64 >= p99 || mk == max)
            .map(|&(idx, _)| idx)
            .collect();
        outlier_runs.sort_unstable();

        // Median exemplar: the p50 order statistic, lowest index on ties.
        let median_run = if self.makespans.is_empty() {
            None
        } else {
            let mut sorted = self.makespans.clone();
            sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            Some(sorted[(sorted.len() - 1) / 2].0)
        };

        CellReport {
            n: self.n,
            r: self.r,
            runs: self.metrics[0].count,
            runs_failed: self.runs_failed,
            p50_makespan_us: p50,
            p99_makespan_us: p99,
            p50_wait_total_us: wait_hist.quantile(0.5).unwrap_or(0),
            p99_wait_total_us: wait_hist.quantile(0.99).unwrap_or(0),
            metrics: self.metrics,
            mincut_counts: self.mincut_counts,
            sdim_counts: self.sdim_counts,
            outlier_runs,
            median_run,
        }
    }
}

fn bump(counts: &mut Vec<u64>, index: usize) {
    if counts.len() <= index {
        counts.resize(index + 1, 0);
    }
    counts[index] += 1;
}

/// Streaming campaign aggregation. Feed [`record`](Self::record) /
/// [`record_failure`](Self::record_failure) **in ascending run-index
/// order** — the deterministic merge rule — then [`finish`](Self::finish).
#[derive(Clone, Debug)]
pub struct CampaignAccumulator {
    campaign_seed: u64,
    runs_per_cell: u64,
    m: u64,
    link_model: LinkModel,
    key_type: String,
    cells: Vec<CellAccumulator>,
}

impl CampaignAccumulator {
    /// A fresh accumulator echoing the campaign configuration.
    pub fn new(
        campaign_seed: u64,
        runs_per_cell: u64,
        m: u64,
        link_model: LinkModel,
        key_type: &str,
    ) -> Self {
        CampaignAccumulator {
            campaign_seed,
            runs_per_cell,
            m,
            link_model,
            key_type: key_type.to_string(),
            cells: Vec::new(),
        }
    }

    fn cell(&mut self, n: usize, r: usize) -> &mut CellAccumulator {
        if let Some(i) = self.cells.iter().position(|c| c.n == n && c.r == r) {
            &mut self.cells[i]
        } else {
            self.cells.push(CellAccumulator::new(n, r));
            self.cells.last_mut().unwrap()
        }
    }

    /// Streams one run's summary into its (n, r) cell.
    pub fn record(&mut self, s: &RunSummary) {
        self.cell(s.n, s.r).record(s);
    }

    /// Records a run that failed to plan/execute (kept out of the
    /// aggregates, surfaced as the cell's `runs_failed`).
    pub fn record_failure(&mut self, n: usize, r: usize) {
        self.cell(n, r).runs_failed += 1;
    }

    /// Closes the campaign: computes quantiles and the outlier/median
    /// selection per cell.
    pub fn finish(self) -> CampaignReport {
        CampaignReport {
            version: CAMPAIGN_SCHEMA_VERSION,
            campaign_seed: self.campaign_seed,
            runs_per_cell: self.runs_per_cell,
            m: self.m,
            link_model: self.link_model,
            key_type: self.key_type,
            cells: self
                .cells
                .into_iter()
                .map(CellAccumulator::finish)
                .collect(),
        }
    }
}

impl CampaignReport {
    /// Serializes the report as compact JSON. Floats use `Display` (Rust's
    /// shortest-round-trip formatting), so
    /// [`from_json`](Self::from_json) `∘` `to_json` is the identity —
    /// the same exactness contract [`RunReport`](super::RunReport) keeps.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + 1024 * self.cells.len());
        let _ = write!(
            out,
            "{{\"version\":{},\"campaign_seed\":{},\"runs_per_cell\":{},\"m\":{},\"link_model\":\"{}\",",
            self.version, self.campaign_seed, self.runs_per_cell, self.m, self.link_model
        );
        out.push_str("\"key_type\":");
        json::write_str(&mut out, &self.key_type);
        out.push_str(",\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"n\":{},\"r\":{},\"runs\":{},\"runs_failed\":{},",
                cell.n, cell.r, cell.runs, cell.runs_failed
            );
            for (name, agg) in METRICS.iter().zip(&cell.metrics) {
                let _ = write!(out, "\"{}\":{},", name, agg.to_json());
            }
            out.push_str("\"mincut_counts\":");
            write_u64_array(&mut out, &cell.mincut_counts);
            out.push_str(",\"sdim_counts\":");
            write_u64_array(&mut out, &cell.sdim_counts);
            let _ = write!(
                out,
                ",\"p50_makespan_us\":{},\"p99_makespan_us\":{},\"p50_wait_total_us\":{},\"p99_wait_total_us\":{},",
                cell.p50_makespan_us,
                cell.p99_makespan_us,
                cell.p50_wait_total_us,
                cell.p99_wait_total_us
            );
            out.push_str("\"outlier_runs\":");
            write_u64_array(&mut out, &cell.outlier_runs);
            if let Some(median) = cell.median_run {
                let _ = write!(out, ",\"median_run\":{median}");
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses [`to_json`](Self::to_json) output back, field for field.
    /// Rejects unknown schema versions.
    pub fn from_json(text: &str) -> Result<CampaignReport, String> {
        let doc = Json::parse(text)?;
        let int = |o: &Json, k: &str| {
            o.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("campaign report missing integer '{k}'"))
        };
        let version = int(&doc, "version")?;
        if version > CAMPAIGN_SCHEMA_VERSION {
            return Err(format!(
                "campaign report version {version} is newer than supported {CAMPAIGN_SCHEMA_VERSION}"
            ));
        }
        let link_model = match doc.get("link_model").and_then(Json::as_str) {
            Some(s) => LinkModel::parse(s).ok_or_else(|| format!("unknown link model '{s}'"))?,
            None => return Err("campaign report missing 'link_model'".into()),
        };
        let mut cells = Vec::new();
        for cell in doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("campaign report missing 'cells' array")?
        {
            let metrics: Vec<MetricAgg> = METRICS
                .iter()
                .map(|name| {
                    MetricAgg::from_json(
                        cell.get(name)
                            .ok_or_else(|| format!("cell missing metric '{name}'"))?,
                    )
                })
                .collect::<Result<_, String>>()?;
            cells.push(CellReport {
                n: int(cell, "n")? as usize,
                r: int(cell, "r")? as usize,
                runs: int(cell, "runs")?,
                runs_failed: int(cell, "runs_failed")?,
                metrics,
                mincut_counts: read_u64_array(cell, "mincut_counts")?,
                sdim_counts: read_u64_array(cell, "sdim_counts")?,
                p50_makespan_us: int(cell, "p50_makespan_us")?,
                p99_makespan_us: int(cell, "p99_makespan_us")?,
                p50_wait_total_us: int(cell, "p50_wait_total_us")?,
                p99_wait_total_us: int(cell, "p99_wait_total_us")?,
                outlier_runs: read_u64_array(cell, "outlier_runs")?,
                median_run: cell.get("median_run").and_then(Json::as_u64),
            });
        }
        Ok(CampaignReport {
            version,
            campaign_seed: int(&doc, "campaign_seed")?,
            runs_per_cell: int(&doc, "runs_per_cell")?,
            m: int(&doc, "m")?,
            link_model,
            key_type: doc
                .get("key_type")
                .and_then(Json::as_str)
                .ok_or("campaign report missing 'key_type'")?
                .to_string(),
            cells,
        })
    }

    /// Renders Table-1-style ASCII distribution tables, one block per
    /// (n, fault-count) cell: per-metric mean/min/p50/p99/max rows, the
    /// partition-shape distribution, a makespan histogram bar chart, and
    /// the outlier/median forensics line.
    pub fn tables(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign seed {} · {} runs/cell · M={} · link={} · keys={}",
            self.campaign_seed, self.runs_per_cell, self.m, self.link_model, self.key_type
        );
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "\ncell n={} r={} · {} runs{}",
                cell.n,
                cell.r,
                cell.runs,
                if cell.runs_failed > 0 {
                    format!(" · {} FAILED", cell.runs_failed)
                } else {
                    String::new()
                }
            );
            let _ = writeln!(
                out,
                "  {:<14} {:>14} {:>14} {:>12} {:>12} {:>14}",
                "metric", "mean", "min", "~p50", "~p99", "max"
            );
            for (name, agg) in METRICS.iter().zip(&cell.metrics) {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>14.1} {:>14.1} {:>12} {:>12} {:>14.1}",
                    name,
                    agg.mean(),
                    agg.min,
                    agg.hist.quantile(0.5).unwrap_or(0),
                    agg.hist.quantile(0.99).unwrap_or(0),
                    agg.max
                );
            }
            out.push_str("  partition shape:");
            for (m, &c) in cell.mincut_counts.iter().enumerate() {
                if c > 0 {
                    let _ = write!(out, " m={m} ×{c} ({:.1}%)", pct(c, cell.runs));
                }
            }
            out.push_str(" ·");
            for (s, &c) in cell.sdim_counts.iter().enumerate() {
                if c > 0 {
                    let _ = write!(out, " s={s} ×{c} ({:.1}%)", pct(c, cell.runs));
                }
            }
            out.push('\n');
            out.push_str("  makespan distribution (µs, log₂ buckets):\n");
            let hist = &cell.metrics[0].hist;
            let peak = hist.counts().iter().copied().max().unwrap_or(0).max(1);
            for (i, &c) in hist.counts().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let (lo, hi) = LogHistogram::bucket_range(i);
                let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
                let _ = writeln!(
                    out,
                    "    [{lo},{hi})  {bar} {c} ({:.1}%)",
                    pct(c, cell.runs)
                );
            }
            let outliers = cell
                .outlier_runs
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "  outlier runs (≥ ~p99 makespan): {} [{}] · median exemplar run {}",
                cell.outlier_runs.len(),
                outliers,
                cell.median_run
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "-".into())
            );
        }
        out
    }
}

fn pct(count: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        count as f64 / total as f64 * 100.0
    }
}

fn write_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn read_u64_array(doc: &Json, key: &str) -> Result<Vec<u64>, String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("cell missing '{key}' array"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("non-integer entry in '{key}'"))
        })
        .collect()
}

/// Live-progress instruments for one campaign, registered on a
/// [`Registry`]: a total-runs counter plus one makespan histogram per
/// (n, fault-count) cell — a mid-campaign Prometheus snapshot shows the
/// distributions filling in while workers are still drawing placements.
pub struct CampaignMetrics {
    /// Runs finished (any cell).
    pub runs_completed: Counter,
    cells: Vec<(usize, usize, Histogram)>,
}

impl CampaignMetrics {
    /// Registers the campaign instruments for the given (n, r) cells.
    pub fn register(registry: &Registry, cells: &[(usize, usize)]) -> CampaignMetrics {
        let runs_completed = registry.counter(
            "ftsort_campaign_runs_completed_total",
            "Monte-Carlo campaign runs finished",
        );
        let cells = cells
            .iter()
            .map(|&(n, r)| {
                let hist = registry.histogram(
                    &format!("ftsort_campaign_makespan_us_n{n}_r{r}"),
                    "Makespan distribution of one campaign (n, faults) cell, us",
                );
                (n, r, hist)
            })
            .collect();
        CampaignMetrics {
            runs_completed,
            cells,
        }
    }

    /// Records one finished run (called by worker threads as runs
    /// complete — live progress only; the deterministic aggregates come
    /// from the ordered merge pass).
    pub fn on_run(&self, n: usize, r: usize, makespan_us: f64) {
        self.runs_completed.inc();
        if let Some((_, _, hist)) = self.cells.iter().find(|(cn, cr, _)| *cn == n && *cr == r) {
            hist.record(makespan_us as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(run_index: u64, n: usize, r: usize, makespan: f64) -> RunSummary {
        RunSummary {
            run_index,
            seed: run_index.wrapping_mul(77),
            n,
            r,
            makespan_us: makespan,
            step3_us: makespan * 0.5,
            step7_us: makespan * 0.3,
            step8_us: makespan * 0.2,
            wait_total_us: 0.125 * run_index as f64,
            comparisons: 1000 + run_index,
            element_hops: 500 + 3 * run_index,
            inbox_peak: 2 + run_index % 5,
            mincut: 1 + (run_index % 3) as usize,
            subcube_dim: n - 1 - (run_index % 2) as usize,
            live: (1 << n) - r,
        }
    }

    fn sample_report() -> CampaignReport {
        let mut acc = CampaignAccumulator::new(42, 8, 2000, LinkModel::Uncontended, "i64");
        for i in 0..8 {
            acc.record(&summary(i, 5, 3, 40_000.0 + 1_000.0 * i as f64));
        }
        for i in 8..16 {
            acc.record(&summary(i, 6, 2, 90_000.0 + 500.0 * i as f64));
        }
        acc.record_failure(6, 2);
        acc.finish()
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let report = sample_report();
        let json = report.to_json();
        let back = CampaignReport::from_json(&json).expect("parse");
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut report = sample_report();
        report.version = CAMPAIGN_SCHEMA_VERSION + 1;
        let err = CampaignReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn aggregates_match_brute_force() {
        let summaries: Vec<RunSummary> = (0..32)
            .map(|i| summary(i, 5, 3, 30_000.0 + 997.0 * ((i * 7) % 13) as f64))
            .collect();
        let mut acc = CampaignAccumulator::new(1, 32, 2000, LinkModel::Uncontended, "i64");
        for s in &summaries {
            acc.record(s);
        }
        let report = acc.finish();
        let cell = &report.cells[0];
        assert_eq!(cell.runs, 32);

        // Brute-force recomputation, same accumulation order.
        let makespans: Vec<f64> = summaries.iter().map(|s| s.makespan_us).collect();
        let sum: f64 = makespans.iter().fold(0.0, |a, &b| a + b);
        let agg = cell.metric("makespan_us").unwrap();
        assert_eq!(agg.sum.to_bits(), sum.to_bits());
        assert_eq!(agg.mean().to_bits(), (sum / 32.0).to_bits());
        assert_eq!(
            agg.min,
            makespans.iter().cloned().fold(f64::INFINITY, f64::min)
        );
        assert_eq!(
            agg.max,
            makespans.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );

        let comp_sum: f64 = summaries.iter().fold(0.0, |a, s| a + s.comparisons as f64);
        assert_eq!(
            cell.metric("comparisons").unwrap().sum.to_bits(),
            comp_sum.to_bits()
        );

        // Quantile estimates land in the same bucket as the exact order
        // statistics.
        let mut sorted: Vec<u64> = makespans.iter().map(|&m| m as u64).collect();
        sorted.sort_unstable();
        for (q, field) in [(0.5, cell.p50_makespan_us), (0.99, cell.p99_makespan_us)] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            assert_eq!(
                LogHistogram::bucket_of(field),
                LogHistogram::bucket_of(sorted[rank - 1]),
                "q={q}"
            );
        }
    }

    #[test]
    fn outlier_policy_always_captures_the_max() {
        // All makespans equal: the interpolated p99 sits at the top of the
        // single bucket, but the max rule still captures every tied run.
        let mut acc = CampaignAccumulator::new(7, 4, 100, LinkModel::Uncontended, "u32");
        for i in 0..4 {
            acc.record(&summary(i, 4, 2, 50_000.0));
        }
        let cell = &acc.finish().cells[0];
        assert_eq!(cell.outlier_runs, vec![0, 1, 2, 3]);

        // Distinct makespans: the single maximum is always an outlier.
        let mut acc = CampaignAccumulator::new(7, 4, 100, LinkModel::Uncontended, "u32");
        for i in 0..4 {
            acc.record(&summary(i, 4, 2, 50_000.0 + 10_000.0 * i as f64));
        }
        let cell = &acc.finish().cells[0];
        assert!(cell.outlier_runs.contains(&3));
        assert_eq!(cell.median_run, Some(1));
    }

    #[test]
    fn record_order_determines_nothing_but_is_fixed() {
        // Same multiset fed in the canonical (run-index) order twice gives
        // byte-identical JSON — the determinism contract the driver's
        // ordered merge pass relies on.
        let a = sample_report();
        let b = sample_report();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn tables_render_outliers_and_shape() {
        let text = sample_report().tables();
        assert!(text.contains("cell n=5 r=3"), "{text}");
        assert!(text.contains("outlier runs"), "{text}");
        assert!(text.contains("partition shape"), "{text}");
        assert!(text.contains("makespan distribution"), "{text}");
    }

    #[test]
    fn campaign_metrics_register_and_record() {
        let registry = Registry::new();
        let metrics = CampaignMetrics::register(&registry, &[(5, 3), (6, 2)]);
        metrics.on_run(5, 3, 41_000.0);
        metrics.on_run(6, 2, 93_000.0);
        metrics.on_run(9, 9, 1.0); // unknown cell: counted, not bucketed
        assert_eq!(metrics.runs_completed.get(), 3);
        let prom = registry.render_prom();
        assert!(
            prom.contains("ftsort_campaign_runs_completed_total 3"),
            "{prom}"
        );
        assert!(prom.contains("ftsort_campaign_makespan_us_n5_r3"), "{prom}");
        super::super::metrics::validate_prom(&prom).expect("valid exposition");
    }
}
