//! Fault sets and fault models.
//!
//! The paper assumes *permanent* processor faults whose locations are known
//! before the sorting algorithm runs (identified off-line by a diagnosis
//! algorithm — see [`crate::diagnosis`]). Two severities are distinguished in
//! its §4, following Hastad, Leighton & Newman:
//!
//! * **Partial fault** — only the computational part of the processor is
//!   dead; its communication hardware and incident links still relay
//!   messages. This is what the NCUBE/7 VERTEX runtime gives you for free and
//!   what the paper's measurements use.
//! * **Total fault** — the processor and *all incident links* are dead;
//!   routes must detour around it, which costs extra hops.

use crate::address::NodeId;
use crate::topology::Hypercube;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt;

/// Severity of processor faults (paper §4, after Hastad et al.).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum FaultModel {
    /// Computation dead, communication alive: faulty nodes still relay
    /// messages (the NCUBE/VERTEX situation the paper simulates).
    #[default]
    Partial,
    /// Node and all incident links dead: routing must avoid faulty nodes.
    Total,
}

/// A (bidirectional) hypercube link, identified by its lower endpoint and
/// the dimension it spans.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct Link {
    /// The endpoint with the lower address (bit `dim` = 0).
    pub lo: NodeId,
    /// The dimension the link spans.
    pub dim: usize,
}

impl Link {
    /// The link incident to `node` along dimension `d` (normalized to the
    /// lower endpoint).
    pub fn new(node: NodeId, d: usize) -> Self {
        Link {
            lo: node.with_bit(d, 0),
            dim: d,
        }
    }

    /// The link joining two neighboring nodes.
    ///
    /// # Panics
    /// If the nodes are not hypercube neighbors.
    pub fn between(a: NodeId, b: NodeId) -> Self {
        let d = crate::address::single_bit_dim(a.raw() ^ b.raw());
        Link::new(a, d)
    }

    /// The two endpoints, lower first.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.lo.neighbor(self.dim))
    }
}

/// An immutable set of faulty processors (and, optionally, faulty links) in
/// a hypercube.
#[derive(Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultSet {
    cube: Hypercube,
    faulty: BTreeSet<NodeId>,
    faulty_links: BTreeSet<Link>,
    model: FaultModel,
}

impl FaultSet {
    /// Creates a fault set over `cube` with the given faulty nodes.
    ///
    /// # Panics
    /// If any address is out of range or listed twice.
    pub fn new(cube: Hypercube, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut faulty = BTreeSet::new();
        for p in nodes {
            assert!(
                cube.contains(p),
                "faulty node {p:?} outside Q{}",
                cube.dim()
            );
            assert!(faulty.insert(p), "duplicate faulty node {p:?}");
        }
        FaultSet {
            cube,
            faulty,
            faulty_links: BTreeSet::new(),
            model: FaultModel::default(),
        }
    }

    /// An empty (fault-free) fault set.
    pub fn none(cube: Hypercube) -> Self {
        FaultSet::new(cube, [])
    }

    /// Convenience constructor from raw addresses.
    pub fn from_raw(cube: Hypercube, raw: &[u32]) -> Self {
        FaultSet::new(cube, raw.iter().copied().map(NodeId::new))
    }

    /// Sets the fault model (builder style).
    pub fn with_model(mut self, model: FaultModel) -> Self {
        self.model = model;
        self
    }

    /// Adds faulty links (builder style). Link faults are physical — routes
    /// must detour around them under *both* fault models; they do not kill
    /// the endpoint processors.
    ///
    /// # Panics
    /// If a link is out of range or listed twice.
    pub fn with_faulty_links(mut self, links: impl IntoIterator<Item = Link>) -> Self {
        for l in links {
            assert!(
                self.cube.contains(l.lo) && l.dim < self.cube.dim(),
                "faulty link {l:?} outside Q{}",
                self.cube.dim()
            );
            assert!(self.faulty_links.insert(l), "duplicate faulty link {l:?}");
        }
        self
    }

    /// The faulty links, in order.
    pub fn faulty_links(&self) -> impl Iterator<Item = Link> + '_ {
        self.faulty_links.iter().copied()
    }

    /// Number of faulty links.
    pub fn link_fault_count(&self) -> usize {
        self.faulty_links.len()
    }

    /// Whether the link between two neighboring nodes is faulty.
    pub fn is_link_faulty(&self, a: NodeId, b: NodeId) -> bool {
        !self.faulty_links.is_empty() && self.faulty_links.contains(&Link::between(a, b))
    }

    /// Degrades every link fault into a processor fault on one endpoint
    /// (preferring an endpoint that is already faulty, else the lower one) —
    /// the classic reduction that lets processor-fault-only algorithms such
    /// as the paper's partition scheme absorb link failures at the price of
    /// idling one healthy processor per broken link.
    pub fn absorb_link_faults(&self) -> FaultSet {
        let mut faulty = self.faulty.clone();
        for l in &self.faulty_links {
            let (a, b) = l.endpoints();
            if !faulty.contains(&a) && !faulty.contains(&b) {
                faulty.insert(a);
            }
        }
        FaultSet {
            cube: self.cube,
            faulty,
            faulty_links: BTreeSet::new(),
            model: self.model,
        }
    }

    /// Whether every pair of normal processors can still reach each other
    /// (honoring the fault model and faulty links).
    pub fn is_connected(&self) -> bool {
        let normals: Vec<NodeId> = self.normal_nodes().collect();
        let Some(&start) = normals.first() else {
            return true;
        };
        let passable = |p: NodeId| match self.model {
            FaultModel::Partial => true,
            FaultModel::Total => self.is_normal(p),
        };
        let mut seen = vec![false; self.cube.len()];
        seen[start.index()] = true;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for v in self.cube.neighbors(u) {
                if !seen[v.index()] && passable(v) && !self.is_link_faulty(u, v) {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        normals.iter().all(|p| seen[p.index()])
    }

    /// Draws `r` distinct faulty processors uniformly at random, as in the
    /// paper's experiments ("the addresses of faulty processors are randomly
    /// generated on each of 10000 simulations").
    pub fn random<R: Rng + ?Sized>(cube: Hypercube, r: usize, rng: &mut R) -> Self {
        assert!(r <= cube.len(), "more faults than processors");
        // For the small cubes of the paper a shuffle-prefix draw is exact and
        // cheap; for large cubes fall back to rejection sampling.
        if cube.len() <= 1 << 16 {
            let mut all: Vec<u32> = (0..cube.len() as u32).collect();
            all.shuffle(rng);
            FaultSet::new(cube, all[..r].iter().copied().map(NodeId::new))
        } else {
            let mut set = BTreeSet::new();
            while set.len() < r {
                set.insert(NodeId::new(rng.random_range(0..cube.len() as u32)));
            }
            FaultSet {
                cube,
                faulty: set,
                faulty_links: BTreeSet::new(),
                model: FaultModel::default(),
            }
        }
    }

    /// The underlying topology.
    #[inline]
    pub fn cube(&self) -> Hypercube {
        self.cube
    }

    /// The fault model in force.
    #[inline]
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// Number of faulty processors `r`.
    #[inline]
    pub fn count(&self) -> usize {
        self.faulty.len()
    }

    /// Whether there are no faults.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.faulty.is_empty()
    }

    /// Whether `node` is faulty.
    #[inline]
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.faulty.contains(&node)
    }

    /// Whether `node` is a normal (non-faulty) processor.
    #[inline]
    pub fn is_normal(&self, node: NodeId) -> bool {
        !self.is_faulty(node)
    }

    /// Faulty addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.faulty.iter().copied()
    }

    /// Faulty addresses as a vector.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.faulty.iter().copied().collect()
    }

    /// Normal processors in ascending address order.
    pub fn normal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cube.nodes().filter(move |p| self.is_normal(*p))
    }

    /// Number of normal processors, `N − r`.
    #[inline]
    pub fn normal_count(&self) -> usize {
        self.cube.len() - self.count()
    }

    /// Whether the paper's standing assumption `r ≤ n − 1` holds.
    ///
    /// Under it no normal processor can be surrounded by `n` faulty
    /// neighbors, so every normal processor can still communicate.
    pub fn within_tolerance(&self) -> bool {
        self.cube.dim() > 0 && self.count() < self.cube.dim()
    }

    /// Whether some normal processor is *isolated* (all `n` neighbors
    /// faulty). Impossible when `r ≤ n − 1`; the partition algorithm remains
    /// applicable for `r ≥ n` as long as this returns `false` (paper §2.2).
    pub fn isolates_a_normal_node(&self) -> bool {
        if self.cube.dim() == 0 {
            return false;
        }
        self.normal_nodes()
            .any(|p| self.cube.neighbors(p).all(|q| self.is_faulty(q)))
    }

    /// Count of faulty processors inside a subcube.
    pub fn count_in(&self, sc: &crate::subcube::Subcube) -> usize {
        self.faulty.iter().filter(|p| sc.contains(**p)).count()
    }

    /// The faulty processors inside a subcube.
    pub fn faults_in(&self, sc: &crate::subcube::Subcube) -> Vec<NodeId> {
        self.faulty
            .iter()
            .copied()
            .filter(|p| sc.contains(*p))
            .collect()
    }
}

impl fmt::Debug for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaultSet(Q{}, {:?}, {:?})",
            self.cube.dim(),
            self.to_vec(),
            self.model
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(n: usize) -> Hypercube {
        Hypercube::new(n)
    }

    #[test]
    fn basic_membership() {
        let fs = FaultSet::from_raw(q(5), &[3, 5, 16, 24]); // the paper's Example 1
        assert_eq!(fs.count(), 4);
        assert_eq!(fs.normal_count(), 28);
        assert!(fs.is_faulty(NodeId::new(3)));
        assert!(fs.is_normal(NodeId::new(4)));
        assert!(fs.within_tolerance()); // r = 4 = n - 1
        assert_eq!(
            fs.to_vec(),
            vec![3u32.into(), 5u32.into(), 16u32.into(), 24u32.into()]
        );
    }

    #[test]
    fn tolerance_bound_is_n_minus_1() {
        let fs = FaultSet::from_raw(q(3), &[0, 1, 2]);
        assert!(!fs.within_tolerance()); // r = 3 = n
        let fs = FaultSet::from_raw(q(3), &[0, 1]);
        assert!(fs.within_tolerance());
    }

    #[test]
    fn isolation_detection() {
        // In Q2 node 0's neighbors are 1 and 2; killing both isolates it.
        let fs = FaultSet::from_raw(q(2), &[1, 2]);
        assert!(fs.isolates_a_normal_node());
        let fs = FaultSet::from_raw(q(3), &[1, 2]);
        assert!(!fs.isolates_a_normal_node()); // neighbor 4 survives
    }

    #[test]
    fn random_draw_has_exact_count_and_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in 1..=6 {
            for r in 0..n {
                let fs = FaultSet::random(q(n), r, &mut rng);
                assert_eq!(fs.count(), r);
                assert!(fs.iter().all(|p| q(n).contains(p)));
            }
        }
    }

    #[test]
    fn random_draw_is_reproducible_by_seed() {
        let a = FaultSet::random(q(6), 5, &mut StdRng::seed_from_u64(7));
        let b = FaultSet::random(q(6), 5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn random_draw_is_roughly_uniform() {
        // Each node should be picked with probability r/N.
        let mut rng = StdRng::seed_from_u64(123);
        let trials = 20_000;
        let mut hits = [0u32; 16];
        for _ in 0..trials {
            for p in FaultSet::random(q(4), 3, &mut rng).iter() {
                hits[p.index()] += 1;
            }
        }
        let expected = trials as f64 * 3.0 / 16.0;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expected).abs() / expected;
            assert!(dev < 0.10, "node {i}: {h} hits vs {expected} expected");
        }
    }

    #[test]
    fn count_in_subcubes() {
        let fs = FaultSet::from_raw(q(4), &[0, 6, 9]); // paper Fig. 3
        let (lo, hi) = q(4).bisect(1);
        assert_eq!(fs.count_in(&lo), 2); // {0, 9}
        assert_eq!(fs.count_in(&hi), 1); // {6}
        assert_eq!(fs.faults_in(&lo), vec![NodeId::new(0), NodeId::new(9)]);
    }

    #[test]
    fn normal_nodes_complement_faults() {
        let fs = FaultSet::from_raw(q(3), &[2, 5]);
        let normals: Vec<u32> = fs.normal_nodes().map(|p| p.raw()).collect();
        assert_eq!(normals, vec![0, 1, 3, 4, 6, 7]);
    }

    #[test]
    fn link_normalization_and_endpoints() {
        let l1 = Link::new(NodeId::new(0b101), 1);
        let l2 = Link::new(NodeId::new(0b111), 1);
        assert_eq!(l1, l2, "links normalize to the lower endpoint");
        assert_eq!(l1.endpoints(), (NodeId::new(0b101), NodeId::new(0b111)));
        assert_eq!(Link::between(NodeId::new(0b111), NodeId::new(0b101)), l1);
    }

    #[test]
    fn link_fault_membership() {
        let fs = FaultSet::none(q(3)).with_faulty_links([Link::new(NodeId::new(0), 2)]);
        assert_eq!(fs.link_fault_count(), 1);
        assert!(fs.is_link_faulty(NodeId::new(0), NodeId::new(4)));
        assert!(fs.is_link_faulty(NodeId::new(4), NodeId::new(0)));
        assert!(!fs.is_link_faulty(NodeId::new(0), NodeId::new(1)));
        assert_eq!(fs.normal_count(), 8, "link faults kill no processor");
    }

    #[test]
    fn absorb_link_faults_degrades_to_node_faults() {
        let fs = FaultSet::from_raw(q(3), &[5])
            .with_faulty_links([Link::new(NodeId::new(5), 1), Link::new(NodeId::new(0), 0)]);
        let absorbed = fs.absorb_link_faults();
        assert_eq!(absorbed.link_fault_count(), 0);
        // link (5,7): endpoint 5 already faulty → no extra fault
        // link (0,1): lower endpoint 0 marked faulty
        assert_eq!(absorbed.to_vec(), vec![NodeId::new(0), NodeId::new(5)]);
    }

    #[test]
    fn connectivity_with_link_faults() {
        // cutting all 3 links of node 0 disconnects it
        let all = [0usize, 1, 2].map(|d| Link::new(NodeId::new(0), d));
        let fs = FaultSet::none(q(3)).with_faulty_links(all);
        assert!(!fs.is_connected());
        // cutting two of them leaves a path
        let fs = FaultSet::none(q(3)).with_faulty_links(all[..2].to_vec());
        assert!(fs.is_connected());
    }

    #[test]
    fn connectivity_honours_fault_model() {
        // node 1 and 2 faulty in Q2: remaining normals 0, 3 connect only
        // through the faulty relays — fine under Partial, broken under Total
        let fs = FaultSet::from_raw(q(2), &[1, 2]);
        assert!(fs.clone().with_model(FaultModel::Partial).is_connected());
        assert!(!fs.with_model(FaultModel::Total).is_connected());
    }

    #[test]
    #[should_panic(expected = "duplicate faulty link")]
    fn duplicate_link_faults_rejected() {
        let _ = FaultSet::none(q(3))
            .with_faulty_links([Link::new(NodeId::new(0), 1), Link::new(NodeId::new(2), 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_faults_rejected() {
        let _ = FaultSet::from_raw(q(3), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_fault_rejected() {
        let _ = FaultSet::from_raw(q(3), &[8]);
    }
}
