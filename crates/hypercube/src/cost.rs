//! The paper's cost model and per-node virtual clocks.
//!
//! §3 of the paper estimates running time with two constants:
//!
//! * `t_{s/r}` — cost of sending or receiving **one element** between two
//!   *neighboring* processors (an element crossing `h` links costs
//!   `h · t_{s/r}`);
//! * `t_c` — cost of comparing a pair of elements.
//!
//! We add an optional per-message startup latency `t_startup` (real
//! multicomputers pay it; the paper's closed-form analysis folds it into
//! `t_{s/r}`, so it defaults to a small value and can be zeroed to match the
//! formulas exactly).
//!
//! Default constants are calibrated to first-generation NCUBE hardware
//! ratios — per-element communication roughly an order of magnitude more
//! expensive than a comparison — which is what shapes the paper's Figure 7.

use serde::{Deserialize, Serialize};

/// Cost constants, in microseconds.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of moving one element across one link (`t_{s/r}`), µs.
    pub t_sr: f64,
    /// Cost of one key comparison (`t_c`), µs.
    pub t_c: f64,
    /// Fixed per-message startup latency, µs (0 to match the paper's
    /// closed-form analysis exactly).
    pub t_startup: f64,
}

impl Default for CostModel {
    /// NCUBE-era calibration: a 4-byte key over a ~1.25 MB/s (10 Mbit/s)
    /// DMA channel is ≈ 3.2 µs/element/hop; a compare-and-move step inside
    /// a sort loop on a ~0.5 MIPS processor ≈ 3 µs; message startup
    /// ≈ 300 µs on first-generation hypercubes. First-generation hypercube
    /// CPUs were slow relative to their DMA links (`t_sr/t_c ≈ 1`), which
    /// is the regime that shapes the paper's Figure 7 crossovers (see
    /// `EXPERIMENTS.md` for the sensitivity discussion).
    fn default() -> Self {
        CostModel {
            t_sr: 3.2,
            t_c: 3.0,
            t_startup: 300.0,
        }
    }
}

impl CostModel {
    /// A model with zero startup cost, matching the paper's closed-form `T`.
    pub fn paper_form() -> Self {
        CostModel {
            t_startup: 0.0,
            ..CostModel::default()
        }
    }

    /// Cost of one message carrying `elements` keys across `hops` links.
    #[inline]
    pub fn transfer(&self, elements: usize, hops: u32) -> f64 {
        if hops == 0 {
            // local hand-off is free: same processor
            return 0.0;
        }
        self.t_startup * hops as f64 + self.t_sr * elements as f64 * hops as f64
    }

    /// Cost of `count` key comparisons.
    #[inline]
    pub fn compare(&self, count: usize) -> f64 {
        self.t_c * count as f64
    }

    /// Worst-case heapsort cost for `k` elements, as charged in the paper's
    /// step-3 analysis: `[(k − 1)·log₂⌈k⌉ + 1] · t_c`.
    pub fn heapsort(&self, k: usize) -> f64 {
        if k <= 1 {
            return self.t_c;
        }
        let log = (k as f64).log2().ceil();
        ((k as f64 - 1.0) * log + 1.0) * self.t_c
    }

    /// Cost of merging two sorted runs of total length `k`
    /// (paper step 7(c): `(k − 1) · t_c`).
    #[inline]
    pub fn merge(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.t_c * (k as f64 - 1.0)
        }
    }
}

/// A per-processor virtual clock for deterministic timing simulation.
///
/// Each node's clock advances when it computes; message passing synchronizes
/// clocks: the receive completes at
/// `max(receiver_now, sender_send_time + transfer_cost)`.
/// The turnaround time of a run is the maximum clock over all nodes.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current local time, µs.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances by a (non-negative) computation cost.
    #[inline]
    pub fn advance(&mut self, cost: f64) {
        debug_assert!(cost >= 0.0, "negative cost");
        self.now += cost;
    }

    /// Synchronizes on a message that left the sender at `sent_at` and costs
    /// `transfer` to arrive; local time becomes the arrival time if later.
    #[inline]
    pub fn receive(&mut self, sent_at: f64, transfer: f64) {
        self.now = self.now.max(sent_at + transfer);
    }

    /// Synchronizes on a message with a precomputed arrival time — used when
    /// the link scheduler (not `sent_at + transfer`) decides when a message
    /// lands, as under [`crate::sim::LinkModel::Contended`].
    #[inline]
    pub fn receive_at(&mut self, arrival: f64) {
        self.now = self.now.max(arrival);
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_elements_and_hops() {
        let m = CostModel {
            t_sr: 2.0,
            t_c: 1.0,
            t_startup: 10.0,
        };
        assert_eq!(m.transfer(5, 1), 10.0 + 10.0);
        assert_eq!(m.transfer(5, 3), 30.0 + 30.0);
        assert_eq!(m.transfer(0, 2), 20.0, "startup still paid");
        assert_eq!(m.transfer(100, 0), 0.0, "self-transfer is free");
    }

    #[test]
    fn paper_form_has_no_startup() {
        let m = CostModel::paper_form();
        assert_eq!(m.t_startup, 0.0);
        assert_eq!(m.transfer(10, 2), m.t_sr * 20.0);
    }

    #[test]
    fn heapsort_cost_matches_paper_formula() {
        let m = CostModel {
            t_sr: 0.0,
            t_c: 1.0,
            t_startup: 0.0,
        };
        // k = 8: (8-1)*3 + 1 = 22
        assert_eq!(m.heapsort(8), 22.0);
        // k = 1: degenerate, charge a single t_c
        assert_eq!(m.heapsort(1), 1.0);
    }

    #[test]
    fn merge_cost() {
        let m = CostModel::paper_form();
        assert_eq!(m.merge(0), 0.0);
        assert_eq!(m.merge(10), 9.0 * m.t_c);
    }

    #[test]
    fn clock_receive_takes_max() {
        let m = CostModel {
            t_sr: 1.0,
            t_c: 1.0,
            t_startup: 0.0,
        };
        let mut a = VirtualClock::new();
        a.advance(5.0);
        // message sent at t=10 with transfer 3 arrives at 13 > 5
        a.receive(10.0, m.transfer(3, 1));
        assert_eq!(a.now(), 13.0);
        // an early message does not move the clock backwards
        a.receive(1.0, 1.0);
        assert_eq!(a.now(), 13.0);
    }

    #[test]
    fn clock_reset() {
        let mut c = VirtualClock::new();
        c.advance(42.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }
}
