//! Operation counters for simulated runs.
//!
//! The simulation engines count the raw quantities the paper's analysis is
//! built from — messages, element·hops, comparisons — so benches can report
//! both virtual time and the underlying operation counts.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Counters accumulated during a simulated run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Elements carried, summed over messages (one element in one message
    /// counts once regardless of distance).
    pub elements_sent: u64,
    /// Elements × links crossed (the unit the paper charges `t_{s/r}` for).
    pub element_hops: u64,
    /// Links crossed, summed over messages (one message crossing 3 links
    /// counts 3 regardless of its size).
    pub message_hops: u64,
    /// Key comparisons performed.
    pub comparisons: u64,
    /// Maximum hops of any single message (turnaround-relevant).
    pub max_hops: u32,
    /// Largest single message, in elements (peak per-round traffic).
    pub max_message_elements: u64,
}

impl RunStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Records one message of `elements` keys crossing `hops` links.
    pub fn record_message(&mut self, elements: usize, hops: u32) {
        self.messages += 1;
        self.elements_sent += elements as u64;
        self.element_hops += elements as u64 * hops as u64;
        self.message_hops += hops as u64;
        self.max_hops = self.max_hops.max(hops);
        self.max_message_elements = self.max_message_elements.max(elements as u64);
    }

    /// Records `count` comparisons.
    pub fn record_comparisons(&mut self, count: usize) {
        self.comparisons += count as u64;
    }

    /// Mean hops per *element*, `element_hops / elements_sent` — how far the
    /// average key travels (0 if nothing was sent).
    pub fn mean_hops_per_element(&self) -> f64 {
        if self.elements_sent == 0 {
            0.0
        } else {
            self.element_hops as f64 / self.elements_sent as f64
        }
    }

    /// Mean hops per *message*, `message_hops / messages` — the average
    /// route length irrespective of payload size (0 if no messages).
    pub fn mean_hops_per_message(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.message_hops as f64 / self.messages as f64
        }
    }
}

impl Add for RunStats {
    type Output = RunStats;
    fn add(self, rhs: RunStats) -> RunStats {
        RunStats {
            messages: self.messages + rhs.messages,
            elements_sent: self.elements_sent + rhs.elements_sent,
            element_hops: self.element_hops + rhs.element_hops,
            message_hops: self.message_hops + rhs.message_hops,
            comparisons: self.comparisons + rhs.comparisons,
            max_hops: self.max_hops.max(rhs.max_hops),
            max_message_elements: self.max_message_elements.max(rhs.max_message_elements),
        }
    }
}

impl AddAssign for RunStats {
    fn add_assign(&mut self, rhs: RunStats) {
        *self = *self + rhs;
    }
}

impl Sum for RunStats {
    fn sum<I: Iterator<Item = RunStats>>(iter: I) -> RunStats {
        iter.fold(RunStats::new(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = RunStats::new();
        s.record_message(10, 2);
        s.record_message(5, 1);
        s.record_comparisons(7);
        assert_eq!(s.messages, 2);
        assert_eq!(s.elements_sent, 15);
        assert_eq!(s.element_hops, 25);
        assert_eq!(s.message_hops, 3);
        assert_eq!(s.comparisons, 7);
        assert_eq!(s.max_hops, 2);
    }

    #[test]
    fn add_merges_counters() {
        let mut a = RunStats::new();
        a.record_message(3, 4);
        let mut b = RunStats::new();
        b.record_message(2, 1);
        b.record_comparisons(5);
        let c = a + b;
        assert_eq!(c.messages, 2);
        assert_eq!(c.elements_sent, 5);
        assert_eq!(c.element_hops, 14);
        assert_eq!(c.message_hops, 5);
        assert_eq!(c.comparisons, 5);
        assert_eq!(c.max_hops, 4);
        a += b;
        assert_eq!(a, c);
    }

    /// Pins the two hop means apart: a big 3-hop message plus a small 1-hop
    /// message give a *per-element* mean dominated by the big message but a
    /// *per-message* mean that weights both equally.
    #[test]
    fn mean_hops_per_element_and_per_message_differ() {
        assert_eq!(RunStats::new().mean_hops_per_element(), 0.0);
        assert_eq!(RunStats::new().mean_hops_per_message(), 0.0);
        let mut s = RunStats::new();
        s.record_message(6, 3); // 18 element·hops
        s.record_message(2, 1); //  2 element·hops
        assert_eq!(s.mean_hops_per_element(), 20.0 / 8.0);
        assert_eq!(s.mean_hops_per_message(), 4.0 / 2.0);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            {
                let mut s = RunStats::new();
                s.record_message(1, 1);
                s
            },
            {
                let mut s = RunStats::new();
                s.record_comparisons(3);
                s
            },
        ];
        let total: RunStats = parts.into_iter().sum();
        assert_eq!(total.messages, 1);
        assert_eq!(total.comparisons, 3);
    }
}
