//! Classic topology embeddings into the hypercube.
//!
//! The hypercube's popularity (paper §1) came partly from how cheaply other
//! topologies embed into it: rings and meshes map with dilation 1 via Gray
//! codes. These embeddings are not used by the sorting algorithm itself but
//! complete the substrate — they are what makes "mapping onto other parallel
//! architectures" comparisons (paper §1) meaningful, and the ring embedding
//! doubles as a Hamiltonian-cycle generator for tests and demos.

use crate::address::{gray, gray_inverse, NodeId};
use crate::topology::Hypercube;

/// A ring of `2^n` nodes embedded in `Q_n` with dilation 1 (a Hamiltonian
/// cycle), via the reflected Gray code.
#[derive(Clone, Debug)]
pub struct RingEmbedding {
    cube: Hypercube,
}

impl RingEmbedding {
    /// Embeds the ring of `2^n` virtual nodes into `Q_n`.
    ///
    /// # Panics
    /// For `n == 0` (no cycle exists on one node).
    pub fn new(cube: Hypercube) -> Self {
        assert!(cube.dim() >= 1, "no ring on Q0");
        RingEmbedding { cube }
    }

    /// The physical node hosting ring position `i`.
    pub fn node_at(&self, i: usize) -> NodeId {
        assert!(i < self.cube.len());
        NodeId::new(gray(i as u32))
    }

    /// The ring position hosted by physical node `p`.
    pub fn position_of(&self, p: NodeId) -> usize {
        assert!(self.cube.contains(p));
        gray_inverse(p.raw()) as usize
    }

    /// Successor of ring position `i` (wraps around).
    pub fn next(&self, i: usize) -> usize {
        (i + 1) % self.cube.len()
    }

    /// The full cycle as physical addresses.
    pub fn cycle(&self) -> Vec<NodeId> {
        (0..self.cube.len()).map(|i| self.node_at(i)).collect()
    }
}

/// A `2^a × 2^b` mesh (with wraparound, i.e. a torus) embedded in
/// `Q_{a+b}` with dilation 1: row index Gray-coded into the high `a` bits,
/// column index into the low `b` bits.
#[derive(Clone, Debug)]
pub struct MeshEmbedding {
    rows_log2: usize,
    cols_log2: usize,
}

impl MeshEmbedding {
    /// Embeds the `2^rows_log2 × 2^cols_log2` torus into `Q_{rows+cols}`.
    pub fn new(rows_log2: usize, cols_log2: usize) -> Self {
        assert!(rows_log2 + cols_log2 <= crate::address::MAX_DIM);
        MeshEmbedding {
            rows_log2,
            cols_log2,
        }
    }

    /// The hypercube this mesh requires.
    pub fn cube(&self) -> Hypercube {
        Hypercube::new(self.rows_log2 + self.cols_log2)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        1 << self.rows_log2
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        1 << self.cols_log2
    }

    /// The physical node hosting mesh coordinate `(row, col)`.
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        assert!(row < self.rows() && col < self.cols());
        NodeId::new((gray(row as u32) << self.cols_log2) | gray(col as u32))
    }

    /// The mesh coordinate hosted by physical node `p`.
    pub fn position_of(&self, p: NodeId) -> (usize, usize) {
        let col_mask = (1u32 << self.cols_log2) - 1;
        let col = gray_inverse(p.raw() & col_mask) as usize;
        let row = gray_inverse(p.raw() >> self.cols_log2) as usize;
        (row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_a_hamiltonian_cycle() {
        for n in 1..=8 {
            let cube = Hypercube::new(n);
            let ring = RingEmbedding::new(cube);
            let cycle = ring.cycle();
            assert_eq!(cycle.len(), cube.len());
            // every node appears exactly once
            let mut seen = vec![false; cube.len()];
            for p in &cycle {
                assert!(!seen[p.index()]);
                seen[p.index()] = true;
            }
            // consecutive positions (and the wrap edge) are hypercube links
            for i in 0..cycle.len() {
                let j = ring.next(i);
                assert!(
                    cube.adjacent(cycle[i], cycle[j]),
                    "n={n}: positions {i}->{j} not adjacent"
                );
            }
        }
    }

    #[test]
    fn ring_position_roundtrip() {
        let ring = RingEmbedding::new(Hypercube::new(5));
        for i in 0..32 {
            assert_eq!(ring.position_of(ring.node_at(i)), i);
        }
    }

    #[test]
    fn mesh_neighbors_are_dilation_1() {
        let mesh = MeshEmbedding::new(2, 3); // 4 × 8 torus in Q5
        let cube = mesh.cube();
        assert_eq!(cube.dim(), 5);
        for r in 0..mesh.rows() {
            for c in 0..mesh.cols() {
                let here = mesh.node_at(r, c);
                let right = mesh.node_at(r, (c + 1) % mesh.cols());
                let down = mesh.node_at((r + 1) % mesh.rows(), c);
                assert!(cube.adjacent(here, right), "row {r} col {c} → right");
                assert!(cube.adjacent(here, down), "row {r} col {c} → down");
            }
        }
    }

    #[test]
    fn mesh_position_roundtrip_and_bijection() {
        let mesh = MeshEmbedding::new(3, 2);
        let mut seen = [false; 32];
        for r in 0..8 {
            for c in 0..4 {
                let p = mesh.node_at(r, c);
                assert!(!seen[p.index()], "collision at ({r},{c})");
                seen[p.index()] = true;
                assert_eq!(mesh.position_of(p), (r, c));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
