//! # hypercube — a simulated hypercube multicomputer
//!
//! This crate is the *substrate* for reproducing
//! *"Fault-Tolerant Sorting Algorithm on Hypercube Multicomputers"*
//! (Sheu, Chen & Chang, ICPP 1992): everything the paper's NCUBE/7 testbed
//! provided, rebuilt in software.
//!
//! * [`topology`] / [`address`] / [`subcube`] — the `Q_n` interconnect and
//!   its address algebra (bit operations, Gray codes, subcube splits).
//! * [`fault`] — permanent-fault sets under the *partial* and *total* fault
//!   models of the paper's §4.
//! * [`routing`] — e-cube (VERTEX-style) routing, plus shortest fault-avoiding
//!   detours for the total-fault model.
//! * [`sim`] — two interchangeable execution engines for async SPMD node
//!   programs: a sequential event-driven scheduler (the default) and a
//!   threaded MIMD engine (one OS thread per processor, bounded channels as
//!   links), both with identical deterministic virtual-time accounting under
//!   the paper's cost model ([`cost`]) and operation counters ([`stats`]).
//! * [`diagnosis`] — a PMC-style off-line diagnosis stand-in for the fault
//!   identification step the paper assumes.
//! * [`embedding`] — Gray-code ring/mesh embeddings (substrate completeness).
//!
//! ## Quick example
//!
//! ```
//! use hypercube::prelude::*;
//!
//! // A 3-cube with one faulty processor, NCUBE-like cost model.
//! let cube = Hypercube::new(3);
//! let faults = FaultSet::from_raw(cube, &[5]);
//! let engine = Engine::new(faults, CostModel::default());
//!
//! // Give every normal node its own address as data and run a max-reduction
//! // over the fault-free subcube {0,1,2,3} (dimension sweep on Q2).
//! let inputs: Vec<Option<Vec<u32>>> = (0..8)
//!     .map(|i| if i < 4 { Some(vec![i]) } else { None })
//!     .collect();
//! let out = engine.run(inputs, async |ctx, data| {
//!     let mut acc = data[0];
//!     for d in 0..2 {
//!         let got = ctx
//!             .exchange(ctx.me().neighbor(d), Tag::new(d as u64), vec![acc])
//!             .await;
//!         acc = acc.max(got[0]);
//!     }
//!     acc
//! });
//! assert!(out.into_results().iter().all(|&(_, v)| v == 3));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod address;
pub mod collectives;
pub mod cost;
pub mod diagnosis;
pub mod embedding;
pub mod fault;
pub mod obs;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod subcube;
pub mod topology;

/// The commonly-used names in one import.
pub mod prelude {
    pub use crate::address::NodeId;
    pub use crate::collectives::Participants;
    pub use crate::cost::CostModel;
    pub use crate::fault::{FaultModel, FaultSet, Link};
    pub use crate::obs::{RunObservation, RunReport};
    pub use crate::sim::{
        Comm, Engine, EngineKind, LinkModel, NodeCtx, RouterKind, RunOutcome, SeqEngine, Tag,
    };
    pub use crate::stats::RunStats;
    pub use crate::subcube::Subcube;
    pub use crate::topology::Hypercube;
}
