//! Off-line system-level fault diagnosis.
//!
//! The paper *assumes* fault locations are known before sorting starts,
//! citing distributed diagnosis algorithms (Armstrong & Gray; Bhat) and
//! Banerjee's off-line diagnosis. This module provides a working stand-in so
//! the end-to-end pipeline (diagnose → partition → sort) is runnable: a
//! PMC-style mutual-test round over hypercube links followed by syndrome
//! decoding.
//!
//! In the PMC model a *normal* tester reports its neighbor's true status,
//! while a *faulty* tester's reports are arbitrary (here: adversarially
//! generated from a seeded RNG). A classical result says a system is
//! one-step `t`-diagnosable if every unit has more than `t` testers and
//! `2t < N`; the hypercube's node degree `n` therefore supports `t = n − 1`
//! faults — exactly the paper's tolerance bound `r ≤ n − 1`.

use crate::address::NodeId;
use crate::fault::FaultSet;
use crate::topology::Hypercube;
use rand::Rng;

/// The outcome of one directed test: `tester` claims `tested` is OK/faulty.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TestResult {
    /// The processor performing the test.
    pub tester: NodeId,
    /// The processor being tested.
    pub tested: NodeId,
    /// The verdict reported by the tester (trustworthy only if the tester is
    /// itself normal).
    pub claims_faulty: bool,
}

/// The full syndrome: every processor tests each of its `n` neighbors.
#[derive(Clone, Debug)]
pub struct Syndrome {
    cube: Hypercube,
    results: Vec<TestResult>,
}

impl Syndrome {
    /// Simulates a complete mutual-test round under the PMC model.
    ///
    /// Normal testers report the truth; faulty testers report uniformly
    /// random verdicts drawn from `rng` (the adversarial part of PMC is
    /// "arbitrary", and random reports exercise the decoder's robustness).
    pub fn collect<R: Rng + ?Sized>(faults: &FaultSet, rng: &mut R) -> Self {
        let cube = faults.cube();
        let mut results = Vec::with_capacity(cube.len() * cube.dim());
        for tester in cube.nodes() {
            for tested in cube.neighbors(tester) {
                let claims_faulty = if faults.is_normal(tester) {
                    faults.is_faulty(tested)
                } else {
                    rng.random_bool(0.5)
                };
                results.push(TestResult {
                    tester,
                    tested,
                    claims_faulty,
                });
            }
        }
        Syndrome { cube, results }
    }

    /// The raw test results.
    pub fn results(&self) -> &[TestResult] {
        &self.results
    }

    /// Decodes the syndrome assuming at most `t` faults, returning the
    /// diagnosed fault set.
    ///
    /// Decoder: majority vote over testers, iterated to a fixed point.
    /// Starting from "a node accused by a strict majority of its testers is
    /// faulty", re-tally ignoring verdicts from already-diagnosed nodes until
    /// stable. Exact for `t ≤ n − 1` on `Q_n` in the random-report model with
    /// overwhelming probability, and exact for the paper's deterministic use
    /// (normal testers only) always; `diagnose` verifies consistency and
    /// returns `Err` when the syndrome is undecodable within `t`.
    pub fn diagnose(&self, t: usize) -> Result<FaultSet, DiagnosisError> {
        let n = self.cube.len();
        // accusations[v] = list of (tester, verdict)
        let mut votes: Vec<Vec<(NodeId, bool)>> = vec![Vec::new(); n];
        for r in &self.results {
            votes[r.tested.index()].push((r.tester, r.claims_faulty));
        }
        let mut faulty = vec![false; n];
        // Iterate: recompute each node's status from testers currently
        // believed normal. Fixed point in ≤ n rounds.
        for _ in 0..self.cube.dim().max(1) + 2 {
            let mut changed = false;
            for v in 0..n {
                let mut accuse = 0usize;
                let mut clear = 0usize;
                for &(tester, claims) in &votes[v] {
                    if faulty[tester.index()] {
                        continue;
                    }
                    if claims {
                        accuse += 1;
                    } else {
                        clear += 1;
                    }
                }
                let verdict = accuse > clear;
                if verdict != faulty[v] {
                    faulty[v] = verdict;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let diagnosed: Vec<NodeId> = (0..n).filter(|&v| faulty[v]).map(NodeId::from).collect();
        if diagnosed.len() > t {
            return Err(DiagnosisError::TooManyFaults {
                found: diagnosed.len(),
                bound: t,
            });
        }
        // Consistency check: every normal tester's verdicts must match the
        // diagnosis.
        for r in &self.results {
            if !faulty[r.tester.index()] && r.claims_faulty != faulty[r.tested.index()] {
                return Err(DiagnosisError::Inconsistent);
            }
        }
        Ok(FaultSet::new(self.cube, diagnosed))
    }
}

/// Why a syndrome could not be decoded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiagnosisError {
    /// More faults diagnosed than the declared bound `t`.
    TooManyFaults {
        /// Number of faults the decoder found.
        found: usize,
        /// The declared diagnosability bound.
        bound: usize,
    },
    /// The syndrome contradicts itself under the decoded fault set.
    Inconsistent,
}

impl std::fmt::Display for DiagnosisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagnosisError::TooManyFaults { found, bound } => {
                write!(f, "diagnosed {found} faults, exceeds bound {bound}")
            }
            DiagnosisError::Inconsistent => write!(f, "syndrome is inconsistent"),
        }
    }
}

impl std::error::Error for DiagnosisError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diagnoses_single_fault_exactly() {
        let cube = Hypercube::new(4);
        let truth = FaultSet::from_raw(cube, &[9]);
        let mut rng = StdRng::seed_from_u64(1);
        let syndrome = Syndrome::collect(&truth, &mut rng);
        let diagnosed = syndrome.diagnose(3).expect("decodable");
        assert_eq!(diagnosed.to_vec(), truth.to_vec());
    }

    #[test]
    fn diagnoses_up_to_n_minus_1_faults() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 3..=6 {
            let cube = Hypercube::new(n);
            for r in 0..n {
                for trial in 0..50 {
                    let truth = FaultSet::random(cube, r, &mut rng);
                    let syndrome = Syndrome::collect(&truth, &mut rng);
                    match syndrome.diagnose(n - 1) {
                        Ok(diag) => {
                            assert_eq!(diag.to_vec(), truth.to_vec(), "n={n} r={r} trial={trial}")
                        }
                        Err(e) => panic!("n={n} r={r} trial={trial}: {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn fault_free_syndrome_is_clean() {
        let cube = Hypercube::new(5);
        let truth = FaultSet::none(cube);
        let mut rng = StdRng::seed_from_u64(3);
        let syndrome = Syndrome::collect(&truth, &mut rng);
        assert!(syndrome.results().iter().all(|r| !r.claims_faulty));
        let diagnosed = syndrome.diagnose(4).unwrap();
        assert!(diagnosed.is_empty());
    }

    #[test]
    fn syndrome_has_n_times_degree_results() {
        let cube = Hypercube::new(4);
        let truth = FaultSet::from_raw(cube, &[1, 2]);
        let mut rng = StdRng::seed_from_u64(5);
        let syndrome = Syndrome::collect(&truth, &mut rng);
        assert_eq!(syndrome.results().len(), 16 * 4);
    }
}
