//! Subcube algebra.
//!
//! A *subcube* of `Q_n` is obtained by fixing some address bits and leaving
//! the rest free. We represent it as a pair `(fixed_mask, pattern)`:
//! bit `d` of `fixed_mask` is 1 when dimension `d` is fixed, and `pattern`
//! holds the fixed bit values (bits outside `fixed_mask` are zero).
//!
//! The paper's partition algorithm repeatedly splits `Q_n` along *cutting
//! dimensions*; every node of its checking tree is a subcube in this
//! representation.

use crate::address::NodeId;
use std::fmt;

/// A subcube of an `n`-dimensional hypercube, i.e. a sub-hypercube obtained
/// by fixing a subset of address bits.
///
/// ```
/// use hypercube::prelude::*;
///
/// let (lo, hi) = Hypercube::new(4).bisect(1); // split Q4 along dimension 1
/// assert_eq!(lo.len(), 8);
/// assert!(lo.contains(NodeId::new(0b0101)) ^ hi.contains(NodeId::new(0b0101)));
/// // local ↔ global address algebra
/// let w = lo.local_address(NodeId::new(0b0101));
/// assert_eq!(lo.global_address(w), NodeId::new(0b0101));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Subcube {
    /// Dimension of the enclosing hypercube.
    n: u8,
    /// Bit `d` set ⇔ dimension `d` is fixed.
    fixed_mask: u32,
    /// Values of the fixed bits (zero outside `fixed_mask`).
    pattern: u32,
}

impl Subcube {
    /// The full hypercube `Q_n` viewed as a subcube of itself.
    pub fn whole(n: usize) -> Self {
        assert!(n <= crate::address::MAX_DIM);
        Subcube {
            n: n as u8,
            fixed_mask: 0,
            pattern: 0,
        }
    }

    /// Builds a subcube from an explicit mask/pattern pair.
    ///
    /// # Panics
    /// If `pattern` has bits outside `fixed_mask`, or mask bits outside the
    /// `n`-bit address space.
    pub fn new(n: usize, fixed_mask: u32, pattern: u32) -> Self {
        assert!(n <= crate::address::MAX_DIM);
        let space = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        assert_eq!(fixed_mask & !space, 0, "mask outside address space");
        assert_eq!(pattern & !fixed_mask, 0, "pattern outside fixed mask");
        Subcube {
            n: n as u8,
            fixed_mask,
            pattern,
        }
    }

    /// Dimension of the enclosing hypercube.
    #[inline]
    pub fn ambient_dim(&self) -> usize {
        self.n as usize
    }

    /// Dimension of the subcube itself (number of free dimensions).
    #[inline]
    pub fn dim(&self) -> usize {
        self.n as usize - self.fixed_mask.count_ones() as usize
    }

    /// Number of processors in the subcube.
    #[inline]
    pub fn len(&self) -> usize {
        1usize << self.dim()
    }

    /// A subcube is never empty (it always contains at least one node).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The mask of fixed dimensions.
    #[inline]
    pub fn fixed_mask(&self) -> u32 {
        self.fixed_mask
    }

    /// The fixed bit values.
    #[inline]
    pub fn pattern(&self) -> u32 {
        self.pattern
    }

    /// Free dimensions in ascending order.
    pub fn free_dims(&self) -> Vec<usize> {
        (0..self.ambient_dim())
            .filter(|&d| self.fixed_mask >> d & 1 == 0)
            .collect()
    }

    /// Fixed dimensions in ascending order.
    pub fn fixed_dims(&self) -> Vec<usize> {
        (0..self.ambient_dim())
            .filter(|&d| self.fixed_mask >> d & 1 == 1)
            .collect()
    }

    /// Whether `node` lies inside this subcube.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.raw() & self.fixed_mask == self.pattern
    }

    /// Splits along dimension `d`, returning the `(u_d = 0, u_d = 1)` halves.
    ///
    /// This is one edge of the paper's checking tree: the left child gets the
    /// faulty processors whose bit `d` is 0, the right child those with 1.
    ///
    /// # Panics
    /// If `d` is already fixed.
    pub fn split(&self, d: usize) -> (Subcube, Subcube) {
        assert!(d < self.ambient_dim(), "dimension out of range");
        assert_eq!(self.fixed_mask >> d & 1, 0, "dimension already fixed");
        let mask = self.fixed_mask | (1 << d);
        (
            Subcube {
                n: self.n,
                fixed_mask: mask,
                pattern: self.pattern,
            },
            Subcube {
                n: self.n,
                fixed_mask: mask,
                pattern: self.pattern | (1 << d),
            },
        )
    }

    /// Iterates over all node addresses in the subcube in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let free = self.free_dims();
        let pattern = self.pattern;
        (0..self.len() as u32)
            .map(move |i| NodeId::new(pattern | crate::address::scatter_bits(i, &free)))
    }

    /// The *local address* of `node` within the subcube: its free-dimension
    /// bits packed into `dim()` bits (LSB = lowest free dimension).
    ///
    /// # Panics
    /// If the node is not contained in the subcube.
    pub fn local_address(&self, node: NodeId) -> u32 {
        assert!(self.contains(node), "node outside subcube");
        crate::address::extract_bits(node.raw(), &self.free_dims())
    }

    /// Inverse of [`Subcube::local_address`].
    pub fn global_address(&self, local: u32) -> NodeId {
        let free = self.free_dims();
        assert!(
            (local as u64) < (1u64 << free.len()),
            "local address out of range"
        );
        NodeId::new(self.pattern | crate::address::scatter_bits(local, &free))
    }

    /// Whether the two subcubes are disjoint.
    pub fn is_disjoint(&self, other: &Subcube) -> bool {
        let common = self.fixed_mask & other.fixed_mask;
        (self.pattern ^ other.pattern) & common != 0
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_subcube(&self, other: &Subcube) -> bool {
        // every dimension fixed in self must be fixed to the same value in other
        self.fixed_mask & other.fixed_mask == self.fixed_mask
            && (self.pattern ^ other.pattern) & self.fixed_mask == 0
    }

    /// Enumerates every subcube of `Q_n` with exactly `k` free dimensions.
    ///
    /// There are `C(n,k) · 2^(n-k)` of them. Used by the maximum
    /// fault-free-subcube baseline, which scans dimensions from `n-1`
    /// downward.
    pub fn enumerate(n: usize, k: usize) -> Vec<Subcube> {
        assert!(k <= n);
        let mut out = Vec::new();
        // choose the set of FIXED dimensions (n - k of them)
        let fixed_count = n - k;
        let mut choice: Vec<usize> = (0..fixed_count).collect();
        loop {
            let mut fixed_mask = 0u32;
            for &d in &choice {
                fixed_mask |= 1 << d;
            }
            // all patterns over the fixed dims
            let fixed_dims: Vec<usize> = choice.clone();
            for p in 0..(1u32 << fixed_count) {
                let pattern = crate::address::scatter_bits(p, &fixed_dims);
                out.push(Subcube::new(n, fixed_mask, pattern));
            }
            // next combination
            if fixed_count == 0 {
                break;
            }
            let mut i = fixed_count;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if choice[i] != i + n - fixed_count {
                    choice[i] += 1;
                    for j in i + 1..fixed_count {
                        choice[j] = choice[j - 1] + 1;
                    }
                    break;
                }
            }
        }
        out
    }
}

impl fmt::Debug for Subcube {
    /// Prints the address-space form used in the paper, e.g. `{u3 u2 0 u0}`
    /// rendered as `**0*` (MSB first, `*` = free bit).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.ambient_dim();
        let s: String = (0..n)
            .rev()
            .map(|d| {
                if self.fixed_mask >> d & 1 == 0 {
                    '*'
                } else if self.pattern >> d & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect();
        write!(f, "Q{}[{}]", self.dim(), s)
    }
}

impl fmt::Display for Subcube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_cube_contains_everything() {
        let q = Subcube::whole(4);
        assert_eq!(q.dim(), 4);
        assert_eq!(q.len(), 16);
        for u in 0..16u32 {
            assert!(q.contains(NodeId::new(u)));
        }
    }

    #[test]
    fn split_partitions_nodes() {
        let q = Subcube::whole(4);
        let (lo, hi) = q.split(1);
        assert_eq!(lo.dim(), 3);
        assert_eq!(hi.dim(), 3);
        let mut seen = [false; 16];
        for node in lo.nodes().chain(hi.nodes()) {
            assert!(!seen[node.index()], "split halves overlap");
            seen[node.index()] = true;
        }
        assert!(seen.iter().all(|&b| b), "split halves do not cover Q4");
        // membership matches bit 1
        for u in 0..16u32 {
            let node = NodeId::new(u);
            assert_eq!(lo.contains(node), node.bit(1) == 0);
            assert_eq!(hi.contains(node), node.bit(1) == 1);
        }
    }

    #[test]
    fn paper_fig3_partition_of_q4() {
        // Q4 with faults {0, 6, 9}; D = (1, 3) yields F_4^2 (Fig. 3/4).
        let q = Subcube::whole(4);
        let (l, r) = q.split(1);
        let (ll, lr) = l.split(3);
        let (rl, rr) = r.split(3);
        let faults = [NodeId::new(0), NodeId::new(6), NodeId::new(9)];
        let quads = [ll, lr, rl, rr];
        for sc in &quads {
            let count = faults.iter().filter(|f| sc.contains(**f)).count();
            assert!(count <= 1, "{sc:?} has {count} faults");
        }
        // address spaces: {u3 u2 0 u0} split again on u3
        assert_eq!(format!("{ll:?}"), "Q2[0*0*]");
        assert_eq!(format!("{lr:?}"), "Q2[1*0*]");
        assert_eq!(format!("{rl:?}"), "Q2[0*1*]");
        assert_eq!(format!("{rr:?}"), "Q2[1*1*]");
    }

    #[test]
    fn local_and_global_addresses_roundtrip() {
        let sc = Subcube::new(5, 0b01011, 0b01001); // fixed dims {0,1,3}, pattern u3=1,u1=0,u0=1
        assert_eq!(sc.dim(), 2);
        assert_eq!(sc.free_dims(), vec![2, 4]);
        for local in 0..4u32 {
            let g = sc.global_address(local);
            assert!(sc.contains(g));
            assert_eq!(sc.local_address(g), local);
        }
    }

    #[test]
    fn nodes_enumeration_is_sorted_and_complete() {
        let sc = Subcube::new(4, 0b0101, 0b0001);
        let nodes: Vec<u32> = sc.nodes().map(|p| p.raw()).collect();
        assert_eq!(nodes, vec![0b0001, 0b0011, 0b1001, 0b1011]);
    }

    #[test]
    fn disjointness_and_containment() {
        let q = Subcube::whole(3);
        let (a, b) = q.split(0);
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&a));
        assert!(q.contains_subcube(&a));
        assert!(q.contains_subcube(&b));
        assert!(!a.contains_subcube(&q));
        let (aa, _) = a.split(2);
        assert!(a.contains_subcube(&aa));
        assert!(b.is_disjoint(&aa));
    }

    #[test]
    fn enumerate_counts_match_combinatorics() {
        // C(n,k) * 2^(n-k)
        fn c(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            let mut r = 1usize;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for n in 0..=6 {
            for k in 0..=n {
                let subs = Subcube::enumerate(n, k);
                assert_eq!(subs.len(), c(n, k) << (n - k), "n={n} k={k}");
                // all distinct
                let mut set = std::collections::HashSet::new();
                for s in &subs {
                    assert_eq!(s.dim(), k);
                    assert!(set.insert((s.fixed_mask(), s.pattern())));
                }
            }
        }
    }

    #[test]
    fn enumerate_full_and_zero_dim() {
        assert_eq!(Subcube::enumerate(4, 4).len(), 1);
        assert_eq!(Subcube::enumerate(4, 0).len(), 16);
    }

    #[test]
    #[should_panic(expected = "already fixed")]
    fn split_twice_along_same_dim_panics() {
        let (a, _) = Subcube::whole(3).split(1);
        let _ = a.split(1);
    }

    #[test]
    #[should_panic(expected = "node outside subcube")]
    fn local_address_of_outsider_panics() {
        let (a, _) = Subcube::whole(3).split(0);
        a.local_address(NodeId::new(1));
    }
}
