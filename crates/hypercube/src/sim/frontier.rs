//! The round/frontier scheduling core shared by the deterministic engines
//! ([`SeqEngine`] and [`ParEngine`]).
//!
//! Both engines execute node programs in *rounds*. A round polls every node
//! on the ready frontier once — the node runs until it parks in a blocked
//! [`Comm::recv`] or finishes — with sends buffered in the sender's outbox
//! and observability records in a per-node record buffer. A barrier then
//! *commits* the round ([`RoundCommitter::commit`]): outboxes are delivered
//! to inboxes in ascending node-id order (which makes the receive-queue
//! high-water mark deterministic), buffered records are flushed to the
//! attached [`TraceSink`] in the same order, and the parked nodes whose
//! awaited `(src, tag)` message has now arrived form the next frontier.
//!
//! Because a round's sends stay invisible until its barrier, the members of
//! one frontier are mutually independent: polling them in any order — or on
//! any number of threads — produces the same clocks, statistics, traces,
//! record stream and inbox peaks. That is the determinism argument for the
//! parallel engine: it inherits byte-identical output from this core by
//! construction, and `tests/engine_diff.rs` / `tests/obs_invariants.rs`
//! assert it end to end.
//!
//! Nothing in this core reads a wall clock: virtual time comes from the
//! [`CostModel`] alone, so the scheduler profiler
//! ([`crate::obs::sched`]) — which *does* timestamp worker phases with
//! monotonic host time — lives entirely in the parallel engine's worker
//! loop and barrier, outside this file. Frontier commits stay
//! timestamp-free and byte-identical whether or not profiling is on.
//!
//! [`SeqEngine`]: super::sequential::SeqEngine
//! [`ParEngine`]: super::par::ParEngine
//! [`Comm::recv`]: super::Comm::recv

use super::engine::{trace_capacity, NodeOutcome, RunOutcome};
use super::trace::{Trace, TraceEvent, TraceKind};
use super::{LinkModel, Tag};
use crate::address::NodeId;
use crate::cost::{CostModel, VirtualClock};
use crate::obs::metrics::{self, EngineMetrics};
use crate::obs::schedule::LinkLedger;
use crate::obs::sink::{NodeSummary, TraceSink};
use crate::obs::{NodeMetrics, SpanLog};
use crate::stats::RunStats;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

/// A node cell as shared between its program's task and the committer.
pub(super) type SharedCell<K> = Arc<Mutex<NodeCell<K>>>;

/// A message buffered in the sender's outbox until the round's barrier,
/// then parked in the destination's inbox until received.
pub(super) struct SimMessage<K> {
    pub(super) src: NodeId,
    pub(super) dst: NodeId,
    pub(super) tag: Tag,
    pub(super) data: Vec<K>,
    pub(super) sent_at: f64,
    pub(super) hops: u32,
    /// Link-scheduled arrival time, stamped by the commit barrier under
    /// [`LinkModel::Contended`]. NaN under [`LinkModel::Uncontended`],
    /// where the receiver prices the transfer itself — keeping that path's
    /// float operations identical to the pre-contention engine.
    pub(super) arrival: f64,
    /// Time spent queued behind busy links, µs (0 when uncontended).
    pub(super) wait: f64,
}

/// An observability record buffered in its node's cell until the barrier
/// flushes it to the sink — per-node program order is preserved, and the
/// barrier's node-id-ordered flush makes the global stream deterministic.
pub(super) enum CellRecord {
    Event(TraceEvent),
    Span { phase: Option<u16>, time: f64 },
}

/// Per-node state of a frontier-scheduled run. During a round only the
/// node's own task touches its cell; at the barrier only the committer
/// does — so every lock acquisition is uncontended.
pub(super) struct NodeCell<K> {
    pub(super) clock: VirtualClock,
    pub(super) stats: RunStats,
    pub(super) trace: Option<Vec<TraceEvent>>,
    /// Observability spans ([`super::Comm::span_enter`]).
    pub(super) spans: SpanLog,
    /// Per-node utilization/communication metrics. `inbox_peak` here is
    /// exact and deterministic: the inbox length right after each
    /// barrier-ordered enqueue.
    pub(super) metrics: NodeMetrics,
    /// `Some((src, tag))` while the node is parked in a blocked `recv`.
    pub(super) waiting: Option<(NodeId, Tag)>,
    pub(super) participating: bool,
    /// Set (under the cell lock) when the node program returns.
    pub(super) done: bool,
    /// Messages delivered to this node, scanned front-to-back on `recv` so
    /// delivery stays FIFO per `(src, tag)` — the same order a channel
    /// gives.
    pub(super) inbox: Vec<SimMessage<K>>,
    /// Messages this node sent in the current round, awaiting the barrier.
    pub(super) outbox: Vec<SimMessage<K>>,
    /// Records awaiting the barrier flush (filled only when `sinking`).
    pub(super) records: Vec<CellRecord>,
    /// Whether a [`TraceSink`] is attached to the run.
    pub(super) sinking: bool,
}

impl<K> NodeCell<K> {
    fn new(dim: usize, tracing: bool, sinking: bool, participating: bool) -> Self {
        NodeCell {
            clock: VirtualClock::new(),
            stats: RunStats::new(),
            trace: (tracing && participating).then(|| Vec::with_capacity(trace_capacity(dim))),
            spans: SpanLog::new(),
            metrics: NodeMetrics::new(dim),
            waiting: None,
            participating,
            done: false,
            inbox: Vec::new(),
            outbox: Vec::new(),
            records: Vec::new(),
            sinking: sinking && participating,
        }
    }

    fn observing(&self) -> bool {
        self.trace.is_some() || self.sinking
    }

    fn emit(&mut self, ev: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(ev);
        }
        if self.sinking {
            self.records.push(CellRecord::Event(ev));
        }
    }
}

/// Builds one cell per processor address plus the static participation map
/// the send-side assert checks against.
pub(super) fn build_cells<K, I>(
    inputs: &[Option<I>],
    dim: usize,
    tracing: bool,
    sinking: bool,
) -> (Vec<SharedCell<K>>, Arc<Vec<bool>>) {
    let participation: Arc<Vec<bool>> = Arc::new(inputs.iter().map(Option::is_some).collect());
    let cells = participation
        .iter()
        .map(|&p| Arc::new(Mutex::new(NodeCell::new(dim, tracing, sinking, p))))
        .collect();
    (cells, participation)
}

/// The frontier engines' half of a [`super::NodeCtx`]: all operations act
/// on the node's own cell, so node programs of one round never contend.
pub(super) struct CellCtx<K> {
    cell: Arc<Mutex<NodeCell<K>>>,
    participation: Arc<Vec<bool>>,
    /// Live-telemetry handles, resolved once at construction (cold path);
    /// `None` — a single check per hook — whenever the process-global
    /// registry is not installed. Recording never touches clocks or
    /// payloads, so simulated output is byte-identical either way.
    metrics: Option<EngineMetrics>,
}

impl<K> CellCtx<K> {
    pub(super) fn new(cell: Arc<Mutex<NodeCell<K>>>, participation: Arc<Vec<bool>>) -> Self {
        CellCtx {
            cell,
            participation,
            metrics: metrics::global().map(|g| g.run.engine.clone()),
        }
    }

    fn cell(&self) -> std::sync::MutexGuard<'_, NodeCell<K>> {
        self.cell.lock().expect("node cell lock poisoned")
    }

    pub(super) fn send(
        &mut self,
        me: NodeId,
        dst: NodeId,
        tag: Tag,
        data: Vec<K>,
        hops: u32,
        cost: CostModel,
    ) {
        assert!(
            self.participation[dst.index()],
            "send to non-participating node {dst:?}"
        );
        if let Some(m) = &self.metrics {
            m.elements_priced.add(data.len() as u64);
            m.msg_elements.record(data.len() as u64);
        }
        let mut cell = self.cell();
        // The sender's port is busy pushing the elements onto its first link.
        cell.clock.advance(cost.transfer(data.len(), hops.min(1)));
        cell.stats.record_message(data.len(), hops);
        cell.metrics.on_send(me, dst, data.len(), hops, &cost);
        if cell.observing() {
            let ev = TraceEvent {
                time: cell.clock.now(),
                node: me,
                tag,
                kind: TraceKind::Send {
                    to: dst,
                    elements: data.len(),
                    hops,
                },
            };
            cell.emit(ev);
        }
        let sent_at = cell.clock.now();
        cell.outbox.push(SimMessage {
            src: me,
            dst,
            tag,
            data,
            sent_at,
            hops,
            arrival: f64::NAN,
            wait: 0.0,
        });
    }

    pub(super) async fn recv(
        &mut self,
        me: NodeId,
        src: NodeId,
        tag: Tag,
        cost: CostModel,
    ) -> Vec<K> {
        loop {
            {
                let mut cell = self.cell();
                if let Some(i) = cell.inbox.iter().position(|m| m.src == src && m.tag == tag) {
                    let msg = cell.inbox.remove(i);
                    cell.waiting = None;
                    let before = cell.clock.now();
                    if msg.arrival.is_nan() {
                        // Uncontended: the receiver prices the wire itself.
                        cell.clock
                            .receive(msg.sent_at, cost.transfer(msg.data.len(), msg.hops));
                    } else {
                        // Contended: the commit barrier's link ledger already
                        // decided when this message lands.
                        cell.clock.receive_at(msg.arrival);
                    }
                    // Any forward jump is time spent waiting on the wire.
                    cell.metrics.blocked_us += cell.clock.now() - before;
                    cell.metrics.link_wait_us += msg.wait;
                    cell.metrics.msgs_received += 1;
                    if let Some(m) = &self.metrics {
                        if msg.wait > 0.0 {
                            m.link_wait_us.add(msg.wait as u64);
                        }
                    }
                    if cell.observing() {
                        let ev = TraceEvent {
                            time: cell.clock.now(),
                            node: me,
                            tag,
                            kind: TraceKind::Recv {
                                from: src,
                                elements: msg.data.len(),
                                wait: msg.wait,
                            },
                        };
                        cell.emit(ev);
                    }
                    return msg.data;
                }
                // Park: the barrier wakes us once the message is delivered.
                cell.waiting = Some((src, tag));
            }
            PendOnce(false).await;
        }
    }

    pub(super) fn charge_comparisons(&mut self, me: NodeId, count: usize, cost: CostModel) {
        let mut cell = self.cell();
        cell.clock.advance(cost.compare(count));
        cell.stats.record_comparisons(count);
        if cell.observing() {
            let ev = TraceEvent {
                time: cell.clock.now(),
                node: me,
                tag: Tag::new(0),
                kind: TraceKind::Compute { comparisons: count },
            };
            cell.emit(ev);
        }
    }

    pub(super) fn span_enter(&mut self, me: NodeId, phase: u16) {
        let _ = me;
        let mut cell = self.cell();
        let now = cell.clock.now();
        cell.spans.enter(phase, now);
        if cell.sinking {
            cell.records.push(CellRecord::Span {
                phase: Some(phase),
                time: now,
            });
        }
    }

    pub(super) fn span_exit(&mut self, me: NodeId) {
        let _ = me;
        let mut cell = self.cell();
        let now = cell.clock.now();
        cell.spans.exit(now);
        if cell.sinking {
            cell.records.push(CellRecord::Span {
                phase: None,
                time: now,
            });
        }
    }

    pub(super) fn charge_compute(&mut self, cost: f64) {
        self.cell().clock.advance(cost);
    }

    pub(super) fn clock(&self) -> f64 {
        self.cell().clock.now()
    }
}

/// Yields exactly once, returning control to the scheduler.
pub(super) struct PendOnce(pub(super) bool);

impl Future for PendOnce {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.0 {
            Poll::Ready(())
        } else {
            self.0 = true;
            Poll::Pending
        }
    }
}

/// The barrier between rounds: delivers outboxes, flushes records, prunes
/// finished nodes and computes the next frontier. Owns reusable scratch so
/// warm rounds allocate nothing.
pub(super) struct RoundCommitter<K> {
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    /// Present under [`LinkModel::Contended`]: the shared-link busy clocks
    /// that stamp each delivered message's arrival and wait.
    ledger: Option<LinkLedger>,
    cost: CostModel,
    msgs: Vec<SimMessage<K>>,
    recs: Vec<CellRecord>,
    /// Live-telemetry handles (see [`CellCtx`]); `None` when disabled.
    metrics: Option<EngineMetrics>,
}

impl<K> RoundCommitter<K> {
    pub(super) fn new(
        sink: Option<Arc<Mutex<dyn TraceSink>>>,
        link_model: LinkModel,
        dim: usize,
        cost: CostModel,
    ) -> Self {
        RoundCommitter {
            sink,
            ledger: (link_model == LinkModel::Contended).then(|| LinkLedger::new(dim, 1 << dim)),
            cost,
            msgs: Vec::new(),
            recs: Vec::new(),
            metrics: metrics::global().map(|g| g.run.engine.clone()),
        }
    }

    /// Commits one round: for each node that ran (`ran`, ascending id),
    /// flushes its buffered records to the sink and delivers its outbox;
    /// then drops finished nodes from `alive` and fills `next` with the
    /// woken frontier (ascending id). Everything here is single-threaded
    /// and id-ordered — the source of cross-engine determinism.
    pub(super) fn commit(
        &mut self,
        cells: &[Arc<Mutex<NodeCell<K>>>],
        ran: &[usize],
        alive: &mut Vec<usize>,
        next: &mut Vec<usize>,
    ) {
        if let Some(m) = &self.metrics {
            m.rounds.inc();
        }
        for &i in ran {
            {
                let mut cell = cells[i].lock().expect("node cell lock poisoned");
                std::mem::swap(&mut cell.outbox, &mut self.msgs);
                if cell.sinking {
                    std::mem::swap(&mut cell.records, &mut self.recs);
                }
            }
            if !self.recs.is_empty() {
                let sink = self.sink.as_ref().expect("records buffered without a sink");
                flush_records(sink, i, &mut self.recs);
            }
            for mut msg in self.msgs.drain(..) {
                if let Some(ledger) = &mut self.ledger {
                    // Links are acquired in commit order — ascending ran
                    // node, then per-node outbox (program) order — which is
                    // the deterministic arbitration rule schema v2 records.
                    let (arrival, wait) = ledger.acquire(
                        msg.src,
                        msg.dst,
                        msg.data.len(),
                        msg.hops,
                        msg.sent_at,
                        &self.cost,
                    );
                    msg.arrival = arrival;
                    msg.wait = wait;
                }
                let mut dst = cells[msg.dst.index()]
                    .lock()
                    .expect("node cell lock poisoned");
                dst.inbox.push(msg);
                let backlog = dst.inbox.len() as u64;
                dst.metrics.inbox_peak = dst.metrics.inbox_peak.max(backlog);
                drop(dst);
                if let Some(m) = &self.metrics {
                    m.messages_delivered.inc();
                }
            }
        }
        next.clear();
        alive.retain(|&i| {
            let mut cell = cells[i].lock().expect("node cell lock poisoned");
            if cell.done {
                return false;
            }
            if let Some((src, tag)) = cell.waiting {
                if cell.inbox.iter().any(|m| m.src == src && m.tag == tag) {
                    cell.waiting = None;
                    next.push(i);
                }
            }
            true
        });
    }
}

/// Drains one node's buffered trace records into the sink, in buffer
/// (program) order. Shared by the sequential committer and the parallel
/// engine's serial flush phase so both emit the same byte stream.
pub(super) fn flush_records(
    sink: &Arc<Mutex<dyn TraceSink>>,
    node: usize,
    recs: &mut Vec<CellRecord>,
) {
    let mut sink = sink.lock().expect("trace sink lock poisoned");
    for rec in recs.drain(..) {
        match rec {
            CellRecord::Event(ev) => sink.event(&ev),
            CellRecord::Span { phase, time } => sink.span(NodeId::from(node), phase, time),
        }
    }
}

/// Panics with the full wait map — called when unfinished nodes remain but
/// the next frontier is empty.
pub(super) fn deadlock_panic<K>(cells: &[Arc<Mutex<NodeCell<K>>>], remaining: usize) -> ! {
    let parked: Vec<String> = cells
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let cell = c.lock().expect("node cell lock poisoned");
            cell.waiting
                .map(|(src, tag)| format!("P{i} waits for ({src:?}, {tag:?})"))
        })
        .collect();
    panic!(
        "deadlock: no runnable node, {remaining} unfinished [{}]",
        parked.join("; ")
    );
}

/// Unwraps the cells into per-node outcomes, emits the sink footer and
/// assembles the [`RunOutcome`] — the shared tail of both frontier engines.
pub(super) fn collect_run<K, T>(
    cells: Vec<Arc<Mutex<NodeCell<K>>>>,
    results: Vec<Option<T>>,
    sink: &Option<Arc<Mutex<dyn TraceSink>>>,
    dim: usize,
    cost: CostModel,
    link_model: LinkModel,
) -> RunOutcome<T> {
    let mut outcomes: Vec<Option<NodeOutcome<T>>> = Vec::with_capacity(cells.len());
    let mut traces = Vec::new();
    for (i, (result, cell)) in results.into_iter().zip(cells).enumerate() {
        let cell = Arc::into_inner(cell)
            .expect("all node contexts dropped with their tasks")
            .into_inner()
            .expect("node cell lock poisoned");
        match result {
            Some(result) => {
                let clock = cell.clock.now();
                outcomes.push(Some(NodeOutcome {
                    result,
                    clock,
                    stats: cell.stats,
                    spans: cell.spans.finish(clock),
                    metrics: cell.metrics,
                }));
                traces.push(cell.trace.unwrap_or_default());
            }
            None => {
                debug_assert!(!cell.participating, "participant P{i} lost its result");
                outcomes.push(None);
            }
        }
    }
    if let Some(sink) = sink {
        let summaries: Vec<NodeSummary> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                o.as_ref().map(|o| NodeSummary {
                    node: NodeId::from(i),
                    clock: o.clock,
                    blocked_us: o.metrics.blocked_us,
                    inbox_peak: o.metrics.inbox_peak,
                })
            })
            .collect();
        sink.lock()
            .expect("trace sink lock poisoned")
            .finish(&summaries);
    }
    RunOutcome::new(outcomes, Trace::assemble(traces), dim, cost, link_model)
}
