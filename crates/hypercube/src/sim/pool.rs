//! A lock-cheap pool of recycled `Vec<K>` payload slabs shared across an
//! entire run.
//!
//! The compare-split hot path cycles merge buffers at a high rate. A
//! per-node free list (`ftsort::Scratch`) already makes the warm path
//! allocation-free on one thread, but each node then warms its own slabs —
//! on the threaded and parallel engines that is `N` cold starts, and slabs
//! idled by finished nodes are stranded. A [`BufferPool`] fixes both: one
//! global slab store shared by every node of a run, accessed through
//! per-worker [`PoolHandle`]s that keep a small local free list, so the
//! warm path never touches the shared lock — it only pops and pushes a
//! thread-local `Vec`. The global mutex is hit on local misses and local
//! overflow only.
//!
//! Slab identity and capacity are deliberately unobservable to the
//! simulation: whichever engine runs, and however slabs migrate between
//! workers, simulated results stay byte-identical (the differential tests
//! pin this).
//!
//! Pools built with [`BufferPool::with_stats`] additionally count
//! take/put traffic and the parked-slab high-water mark into a
//! [`PoolStats`] block (relaxed atomics — the warm path stays alloc- and
//! lock-free) and, when the process-global metrics registry is installed,
//! mirror them into the `ftsort_pool_*` instruments. [`BufferPool::new`]
//! pools carry no stats at all, so library-internal pools pay nothing.

use crate::obs::metrics::{self, PoolMetrics};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Slabs a handle keeps locally before spilling to the shared store. Sized
/// for the compare-split working set (merge output + loser half + two
/// in-flight payloads) with slack; larger values just delay sharing.
const LOCAL_SLABS: usize = 8;

/// Pool traffic counters, recorded only by stats-enabled pools
/// ([`BufferPool::with_stats`]).
#[derive(Debug, Default)]
pub struct PoolStats {
    takes: AtomicU64,
    puts: AtomicU64,
    high_water: AtomicU64,
}

/// A snapshot of [`PoolStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolCounters {
    /// Slabs taken (local hit, shared hit or fresh allocation alike).
    pub takes: u64,
    /// Slabs returned.
    pub puts: u64,
    /// High-water mark of parked slabs in any single store — the shared
    /// store or one handle's local free list, whichever ran fullest.
    pub slab_high_water: u64,
}

impl PoolStats {
    /// A point-in-time snapshot of the counters.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            takes: self.takes.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            slab_high_water: self.high_water.load(Ordering::Relaxed),
        }
    }
}

/// The shared slab store of one run. Cheap to clone (an [`Arc`]); create
/// one per run and hand each node (or worker) a [`BufferPool::handle`].
pub struct BufferPool<K> {
    shared: Arc<Mutex<Vec<Vec<K>>>>,
    stats: Option<Arc<PoolStats>>,
    metrics: Option<PoolMetrics>,
}

impl<K> Clone for BufferPool<K> {
    fn clone(&self) -> Self {
        BufferPool {
            shared: Arc::clone(&self.shared),
            stats: self.stats.clone(),
            metrics: self.metrics.clone(),
        }
    }
}

impl<K> Default for BufferPool<K> {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl<K> BufferPool<K> {
    /// An empty pool with no statistics — the zero-overhead default used
    /// by the library sort paths.
    pub fn new() -> Self {
        BufferPool {
            shared: Arc::new(Mutex::new(Vec::new())),
            stats: None,
            metrics: None,
        }
    }

    /// An empty pool that counts its traffic into a [`PoolStats`] block
    /// and, if [`metrics::install_global`] has run, into the
    /// `ftsort_pool_*` registry instruments.
    pub fn with_stats() -> Self {
        BufferPool {
            shared: Arc::new(Mutex::new(Vec::new())),
            stats: Some(Arc::new(PoolStats::default())),
            metrics: metrics::global().map(|g| g.run.pool.clone()),
        }
    }

    /// This pool's statistics block, when built with
    /// [`with_stats`](Self::with_stats).
    pub fn stats(&self) -> Option<&Arc<PoolStats>> {
        self.stats.as_ref()
    }

    /// A per-worker handle drawing on this pool. The local free list is
    /// sized up front so `put` never grows it — a handle's warm
    /// take/put cycle allocates nothing from its very first use.
    pub fn handle(&self) -> PoolHandle<K> {
        PoolHandle {
            local: Vec::with_capacity(LOCAL_SLABS),
            shared: Arc::clone(&self.shared),
            stats: self.stats.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Slabs currently parked in the shared store (diagnostics/tests);
    /// slabs held by live handles are not counted.
    pub fn shared_slabs(&self) -> usize {
        self.shared.lock().expect("buffer pool lock poisoned").len()
    }
}

/// A per-worker view of a [`BufferPool`]: a small local free list backed by
/// the shared store. `take`/`put` are lock-free in the warm path.
pub struct PoolHandle<K> {
    local: Vec<Vec<K>>,
    shared: Arc<Mutex<Vec<Vec<K>>>>,
    stats: Option<Arc<PoolStats>>,
    metrics: Option<PoolMetrics>,
}

impl<K> PoolHandle<K> {
    fn note_high_water(&self, parked: usize) {
        if let Some(s) = &self.stats {
            s.high_water.fetch_max(parked as u64, Ordering::Relaxed);
        }
        if let Some(m) = &self.metrics {
            m.slab_high_water.set_max(parked as i64);
        }
    }

    /// Takes an empty slab with capacity ≥ `capacity`: most recently
    /// returned local slab first (cache warmth), then the shared store,
    /// then a fresh allocation.
    pub fn take(&mut self, capacity: usize) -> Vec<K> {
        if let Some(s) = &self.stats {
            s.takes.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(m) = &self.metrics {
            m.takes.inc();
        }
        let mut buf = match self.local.pop() {
            Some(buf) => buf,
            None => {
                let mut shared = self.shared.lock().expect("buffer pool lock poisoned");
                let buf = shared.pop();
                if let Some(m) = &self.metrics {
                    m.shared_slabs.set(shared.len() as i64);
                }
                buf.unwrap_or_default()
            }
        };
        buf.reserve(capacity);
        buf
    }

    /// Returns a spent slab. Contents are dropped; the allocation parks in
    /// the local list, spilling to the shared store past [`LOCAL_SLABS`].
    pub fn put(&mut self, mut buf: Vec<K>) {
        buf.clear();
        if let Some(s) = &self.stats {
            s.puts.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(m) = &self.metrics {
            m.puts.inc();
        }
        if self.local.len() < LOCAL_SLABS {
            self.local.push(buf);
            self.note_high_water(self.local.len());
        } else {
            let parked = {
                let mut shared = self.shared.lock().expect("buffer pool lock poisoned");
                shared.push(buf);
                if let Some(m) = &self.metrics {
                    m.shared_slabs.set(shared.len() as i64);
                }
                shared.len()
            };
            self.note_high_water(parked);
        }
    }

    /// Slabs parked locally in this handle (diagnostics/tests).
    pub fn local_slabs(&self) -> usize {
        self.local.len()
    }
}

impl<K> Drop for PoolHandle<K> {
    /// Returns local slabs to the shared store so other workers can reuse
    /// allocations warmed by finished nodes.
    fn drop(&mut self) {
        if self.local.is_empty() {
            return;
        }
        if let Ok(mut shared) = self.shared.lock() {
            shared.append(&mut self.local);
            let parked = shared.len();
            if let Some(m) = &self.metrics {
                m.shared_slabs.set(parked as i64);
            }
            drop(shared);
            self.note_high_water(parked);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returned_slab_keeps_its_capacity_on_reacquire() {
        let pool: BufferPool<u64> = BufferPool::new();
        let mut handle = pool.handle();
        let mut slab = handle.take(100);
        slab.extend(0..100);
        let ptr = slab.as_ptr();
        let cap = slab.capacity();
        handle.put(slab);
        let again = handle.take(10);
        assert_eq!(again.as_ptr(), ptr, "pooled allocation is reused");
        assert_eq!(again.capacity(), cap, "capacity survives the round trip");
        assert!(again.is_empty(), "contents are dropped on put");
    }

    #[test]
    fn slabs_flow_between_handles_through_the_shared_store() {
        let pool: BufferPool<u32> = BufferPool::new();
        let mut a = pool.handle();
        // Overflow a's local list so slabs spill to the shared store…
        for _ in 0..LOCAL_SLABS + 3 {
            let slab = a.take(64);
            a.put(slab);
        }
        // take/put cycles one slab; fill the local list for real:
        let slabs: Vec<_> = (0..LOCAL_SLABS + 3).map(|_| a.take(64)).collect();
        for s in slabs {
            a.put(s);
        }
        assert_eq!(a.local_slabs(), LOCAL_SLABS);
        assert_eq!(pool.shared_slabs(), 3);
        // …and another handle picks them up without allocating.
        let mut b = pool.handle();
        let got = b.take(1);
        assert!(got.capacity() >= 64, "b reuses a's spilled slab");
        assert_eq!(pool.shared_slabs(), 2);
    }

    #[test]
    fn dropping_a_handle_returns_its_local_slabs() {
        let pool: BufferPool<u8> = BufferPool::new();
        let mut handle = pool.handle();
        let s1 = handle.take(16);
        let s2 = handle.take(16);
        handle.put(s1);
        handle.put(s2);
        assert_eq!(pool.shared_slabs(), 0);
        drop(handle);
        assert_eq!(pool.shared_slabs(), 2);
    }

    #[test]
    fn plain_pools_carry_no_stats() {
        let pool: BufferPool<u8> = BufferPool::new();
        assert!(pool.stats().is_none());
        assert!(pool.handle().stats.is_none());
    }

    #[test]
    fn stats_pools_count_takes_puts_and_high_water() {
        let pool: BufferPool<u32> = BufferPool::with_stats();
        let mut a = pool.handle();
        let slabs: Vec<_> = (0..LOCAL_SLABS + 3).map(|_| a.take(64)).collect();
        let taken = slabs.len() as u64;
        for s in slabs {
            a.put(s);
        }
        // One extra round trip through the (now warm) local list.
        let s = a.take(8);
        a.put(s);
        let counters = pool.stats().expect("stats enabled").counters();
        assert_eq!(counters.takes, taken + 1);
        assert_eq!(counters.puts, taken + 1);
        // The local list filled to LOCAL_SLABS before spilling; the shared
        // store then grew to 3 — the fullest single store was the local one.
        assert_eq!(counters.slab_high_water, LOCAL_SLABS as u64);
        // Dropping the handle parks everything shared: new high water.
        drop(a);
        let counters = pool.stats().expect("stats enabled").counters();
        assert_eq!(counters.slab_high_water, taken);
        assert_eq!(pool.shared_slabs() as u64, taken);
    }
}
