//! A lock-cheap pool of recycled `Vec<K>` payload slabs shared across an
//! entire run.
//!
//! The compare-split hot path cycles merge buffers at a high rate. A
//! per-node free list (`ftsort::Scratch`) already makes the warm path
//! allocation-free on one thread, but each node then warms its own slabs —
//! on the threaded and parallel engines that is `N` cold starts, and slabs
//! idled by finished nodes are stranded. A [`BufferPool`] fixes both: one
//! global slab store shared by every node of a run, accessed through
//! per-worker [`PoolHandle`]s that keep a small local free list, so the
//! warm path never touches the shared lock — it only pops and pushes a
//! thread-local `Vec`. The global mutex is hit on local misses and local
//! overflow only.
//!
//! Slab identity and capacity are deliberately unobservable to the
//! simulation: whichever engine runs, and however slabs migrate between
//! workers, simulated results stay byte-identical (the differential tests
//! pin this).

use std::sync::{Arc, Mutex};

/// Slabs a handle keeps locally before spilling to the shared store. Sized
/// for the compare-split working set (merge output + loser half + two
/// in-flight payloads) with slack; larger values just delay sharing.
const LOCAL_SLABS: usize = 8;

/// The shared slab store of one run. Cheap to clone (an [`Arc`]); create
/// one per run and hand each node (or worker) a [`BufferPool::handle`].
pub struct BufferPool<K> {
    shared: Arc<Mutex<Vec<Vec<K>>>>,
}

impl<K> Clone for BufferPool<K> {
    fn clone(&self) -> Self {
        BufferPool {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<K> Default for BufferPool<K> {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl<K> BufferPool<K> {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            shared: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A per-worker handle drawing on this pool. The local free list is
    /// sized up front so `put` never grows it — a handle's warm
    /// take/put cycle allocates nothing from its very first use.
    pub fn handle(&self) -> PoolHandle<K> {
        PoolHandle {
            local: Vec::with_capacity(LOCAL_SLABS),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Slabs currently parked in the shared store (diagnostics/tests);
    /// slabs held by live handles are not counted.
    pub fn shared_slabs(&self) -> usize {
        self.shared.lock().expect("buffer pool lock poisoned").len()
    }
}

/// A per-worker view of a [`BufferPool`]: a small local free list backed by
/// the shared store. `take`/`put` are lock-free in the warm path.
pub struct PoolHandle<K> {
    local: Vec<Vec<K>>,
    shared: Arc<Mutex<Vec<Vec<K>>>>,
}

impl<K> PoolHandle<K> {
    /// Takes an empty slab with capacity ≥ `capacity`: most recently
    /// returned local slab first (cache warmth), then the shared store,
    /// then a fresh allocation.
    pub fn take(&mut self, capacity: usize) -> Vec<K> {
        let mut buf = self
            .local
            .pop()
            .or_else(|| self.shared.lock().expect("buffer pool lock poisoned").pop())
            .unwrap_or_default();
        buf.reserve(capacity);
        buf
    }

    /// Returns a spent slab. Contents are dropped; the allocation parks in
    /// the local list, spilling to the shared store past [`LOCAL_SLABS`].
    pub fn put(&mut self, mut buf: Vec<K>) {
        buf.clear();
        if self.local.len() < LOCAL_SLABS {
            self.local.push(buf);
        } else {
            self.shared
                .lock()
                .expect("buffer pool lock poisoned")
                .push(buf);
        }
    }

    /// Slabs parked locally in this handle (diagnostics/tests).
    pub fn local_slabs(&self) -> usize {
        self.local.len()
    }
}

impl<K> Drop for PoolHandle<K> {
    /// Returns local slabs to the shared store so other workers can reuse
    /// allocations warmed by finished nodes.
    fn drop(&mut self) {
        if self.local.is_empty() {
            return;
        }
        if let Ok(mut shared) = self.shared.lock() {
            shared.append(&mut self.local);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returned_slab_keeps_its_capacity_on_reacquire() {
        let pool: BufferPool<u64> = BufferPool::new();
        let mut handle = pool.handle();
        let mut slab = handle.take(100);
        slab.extend(0..100);
        let ptr = slab.as_ptr();
        let cap = slab.capacity();
        handle.put(slab);
        let again = handle.take(10);
        assert_eq!(again.as_ptr(), ptr, "pooled allocation is reused");
        assert_eq!(again.capacity(), cap, "capacity survives the round trip");
        assert!(again.is_empty(), "contents are dropped on put");
    }

    #[test]
    fn slabs_flow_between_handles_through_the_shared_store() {
        let pool: BufferPool<u32> = BufferPool::new();
        let mut a = pool.handle();
        // Overflow a's local list so slabs spill to the shared store…
        for _ in 0..LOCAL_SLABS + 3 {
            let slab = a.take(64);
            a.put(slab);
        }
        // take/put cycles one slab; fill the local list for real:
        let slabs: Vec<_> = (0..LOCAL_SLABS + 3).map(|_| a.take(64)).collect();
        for s in slabs {
            a.put(s);
        }
        assert_eq!(a.local_slabs(), LOCAL_SLABS);
        assert_eq!(pool.shared_slabs(), 3);
        // …and another handle picks them up without allocating.
        let mut b = pool.handle();
        let got = b.take(1);
        assert!(got.capacity() >= 64, "b reuses a's spilled slab");
        assert_eq!(pool.shared_slabs(), 2);
    }

    #[test]
    fn dropping_a_handle_returns_its_local_slabs() {
        let pool: BufferPool<u8> = BufferPool::new();
        let mut handle = pool.handle();
        let s1 = handle.take(16);
        let s2 = handle.take(16);
        handle.put(s1);
        handle.put(s2);
        assert_eq!(pool.shared_slabs(), 0);
        drop(handle);
        assert_eq!(pool.shared_slabs(), 2);
    }
}
