//! Work-stealing primitives for the parallel frontier engine: a vendored
//! Chase–Lev deque, a sense-reversing barrier, and the shard cell the
//! scheduler's claim protocol synchronizes.
//!
//! No external crates: the deque is the classic Chase–Lev design (Chase &
//! Lev, *Dynamic Circular Work-Stealing Deque*, SPAA '05) with the
//! C11-memory-order corrections of Lê et al. (PPoPP '13), specialized to
//! `u32` shard ids — which makes every slot an [`AtomicU32`] and the whole
//! structure safe Rust (the general design needs `unsafe` only to move
//! arbitrary `T` through racing slots).
//!
//! The barrier is a centralized sense-reversing barrier: arrivals decrement
//! a counter, the last arrival flips the global *sense* and releases the
//! rest. Waiters spin briefly (a round's tail is usually microseconds away)
//! and then park on a condvar, so oversubscribed hosts — including the
//! single-core CI case — don't burn a timeslice spinning at every round.
//! [`SenseBarrier::poison`] releases all waiters permanently; the engine
//! uses it to unwind the whole pool when one worker panics inside a node
//! program.

use crate::obs::metrics::{self, WsMetrics};
use crate::obs::sched::{SchedCat, WorkerProf};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A fixed-capacity Chase–Lev work-stealing deque of `u32` items.
///
/// The owner pushes and pops at the *bottom* (LIFO, cache-warm); thieves
/// steal from the *top* (FIFO). Capacity is fixed at construction: the
/// scheduler never holds more than the total shard count in one deque, so
/// the ring cannot overflow and the hot path never allocates.
pub(super) struct WsDeque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: Box<[AtomicU32]>,
    mask: usize,
}

impl WsDeque {
    /// A deque holding at most `capacity` items at once.
    pub(super) fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        WsDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: (0..cap).map(|_| AtomicU32::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Owner-only: pushes `v` at the bottom.
    pub(super) fn push(&self, v: u32) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        debug_assert!(
            (b - t) as usize <= self.mask,
            "WsDeque overflow: capacity {} exceeded",
            self.mask + 1
        );
        self.buf[b as usize & self.mask].store(v, Ordering::Relaxed);
        // Publish the slot before publishing the new bottom.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops from the bottom (the most recent push).
    pub(super) fn pop(&self) -> Option<u32> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let v = self.buf[b as usize & self.mask].load(Ordering::Relaxed);
            if t == b {
                // Last element: race the thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(v)
            } else {
                Some(v)
            }
        } else {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side: steals from the top (the oldest item). `None` means the
    /// deque looked empty or the steal lost a race — callers just move to
    /// the next victim either way.
    pub(super) fn steal(&self) -> Option<u32> {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let v = self.buf[t as usize & self.mask].load(Ordering::Relaxed);
            self.top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
                .then_some(v)
        } else {
            None
        }
    }
}

/// How many pause iterations a barrier waiter spins before parking. Rounds
/// are typically short, so most waits resolve in the spin window; the
/// constant is small enough that a descheduled peer (or a single-core
/// host) costs at most a few hundred nanoseconds of wasted spin.
const BARRIER_SPINS: usize = 64;

/// A centralized sense-reversing barrier over a fixed set of participants,
/// with poisoning for panic unwinding.
pub(super) struct SenseBarrier {
    participants: usize,
    /// Arrivals still missing in the current phase.
    pending: AtomicUsize,
    /// The global sense: flipped by the last arrival of each phase.
    /// Waiters of a phase wait for it to differ from the value they saw on
    /// arrival.
    sense: AtomicBool,
    poisoned: AtomicBool,
    /// Waiters currently registered for a condvar park. Lets the release
    /// path skip the mutex + notify entirely when everyone resolved in the
    /// spin window — the common case, and the whole cost of the barrier
    /// when the pool is a single worker.
    parkers: AtomicUsize,
    /// Park support for waiters that exhausted their spin budget. The
    /// mutex guards nothing — it exists to pair with the condvar.
    lock: Mutex<()>,
    cv: Condvar,
    /// Live-telemetry handles, resolved once at construction from the
    /// process-wide registry (see [`metrics::global`]); `None` keeps every
    /// hook a single branch.
    metrics: Option<WsMetrics>,
}

impl SenseBarrier {
    pub(super) fn new(participants: usize) -> Self {
        SenseBarrier {
            participants: participants.max(1),
            pending: AtomicUsize::new(participants.max(1)),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            parkers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            metrics: metrics::global().map(|g| g.run.ws.clone()),
        }
    }

    /// Waits for all participants. Returns `true` if the barrier was
    /// poisoned (by [`poison`](Self::poison)) — callers must unwind their
    /// phase loop instead of proceeding. (The engine always goes through
    /// [`wait_prof`](Self::wait_prof); this plain form serves the module's
    /// own barrier tests.)
    #[cfg(test)]
    #[must_use]
    pub(super) fn wait(&self) -> bool {
        self.wait_prof(None)
    }

    /// [`wait`](Self::wait) with scheduler-profiler hooks: the arrival
    /// switches the recorder to [`SchedCat::Barrier`], exhausting the spin
    /// window records a park/unpark pair around the condvar sleep, and the
    /// return switches back to [`SchedCat::Other`] — so barrier wait and
    /// park time tile the worker's timeline. `None` (the un-profiled
    /// path, and what `wait` passes) makes every hook a null check.
    #[must_use]
    pub(super) fn wait_prof(&self, mut prof: Option<&mut WorkerProf>) -> bool {
        if let Some(p) = prof.as_deref_mut() {
            p.barrier_arrived();
        }
        let my_sense = self.sense.load(Ordering::Acquire);
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset the counter for the next phase, flip the
            // sense, and wake any parked waiters. The SeqCst pair on
            // `sense`/`parkers` (here and in the park path below) rules out
            // the lost wakeup: a waiter that registered after our `parkers`
            // read is guaranteed to see the flipped sense before parking.
            self.pending.store(self.participants, Ordering::Release);
            self.sense.store(!my_sense, Ordering::SeqCst);
            if let Some(m) = &self.metrics {
                m.barrier_epochs.inc();
            }
            if self.parkers.load(Ordering::SeqCst) > 0 {
                drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
                self.cv.notify_all();
            }
            if let Some(p) = prof.as_deref_mut() {
                p.switch(SchedCat::Other, 0);
            }
            return self.poisoned.load(Ordering::Acquire);
        }
        let mut released = false;
        for _ in 0..BARRIER_SPINS {
            if self.sense.load(Ordering::Acquire) != my_sense
                || self.poisoned.load(Ordering::Acquire)
            {
                released = true;
                break;
            }
            std::hint::spin_loop();
        }
        if !released {
            if let Some(p) = prof.as_deref_mut() {
                p.parked();
            }
            self.parkers.fetch_add(1, Ordering::SeqCst);
            if let Some(m) = &self.metrics {
                m.parked_workers.add(1);
            }
            let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            while self.sense.load(Ordering::SeqCst) == my_sense
                && !self.poisoned.load(Ordering::SeqCst)
            {
                guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
            drop(guard);
            self.parkers.fetch_sub(1, Ordering::SeqCst);
            if let Some(m) = &self.metrics {
                m.parked_workers.sub(1);
            }
            if let Some(p) = prof.as_deref_mut() {
                p.unparked();
            }
        }
        if let Some(p) = prof {
            p.switch(SchedCat::Other, 0);
        }
        self.poisoned.load(Ordering::Acquire)
    }

    /// Permanently releases every current and future waiter with a `true`
    /// return from [`wait`](Self::wait). Called from a panicking worker's
    /// unwind guard so `thread::scope` can join the pool and re-raise the
    /// original panic instead of hanging at the barrier.
    pub(super) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.cv.notify_all();
    }
}

/// A shard-claimed cell: interior mutability whose synchronization is the
/// scheduler's claim protocol, not a lock.
///
/// The parallel engine guarantees that between two barrier crossings each
/// cell is accessed by **at most one** worker — the one that claimed the
/// owning shard from a deque (every shard id is pushed to exactly one
/// deque per phase, and Chase–Lev pop/steal hand each item to exactly one
/// claimant). The barrier's release/acquire edges order the accesses of
/// successive phases.
///
/// # Safety
/// `get` callers must hold a claim obtained through that protocol (or
/// otherwise have exclusive, barrier-separated access, e.g. the
/// coordinator outside the worker phases).
pub(super) struct ShardSlot<T>(UnsafeCell<T>);

unsafe impl<T: Send> Sync for ShardSlot<T> {}

impl<T> ShardSlot<T> {
    pub(super) fn new(value: T) -> Self {
        ShardSlot(UnsafeCell::new(value))
    }

    /// Exclusive access under the claim protocol (see type docs).
    #[allow(clippy::mut_from_ref)]
    pub(super) unsafe fn get(&self) -> &mut T {
        unsafe { &mut *self.0.get() }
    }

    /// Exclusive access through an exclusive reference — safe, for the
    /// single-threaded setup and teardown around the worker scope.
    pub(super) fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn deque_lifo_for_owner_fifo_for_thief() {
        let q = WsDeque::new(8);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.steal(), Some(1), "thief takes the oldest");
        assert_eq!(q.pop(), Some(3), "owner takes the newest");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.steal(), None);
    }

    #[test]
    fn deque_capacity_rounds_up_and_recycles() {
        let q = WsDeque::new(3); // rounds to 4
        for round in 0..5 {
            for i in 0..4 {
                q.push(round * 4 + i);
            }
            for i in (0..4).rev() {
                assert_eq!(q.pop(), Some(round * 4 + i));
            }
        }
    }

    #[test]
    fn deque_concurrent_steal_claims_each_item_once() {
        // 4 thieves race the owner for 10_000 items; every item must be
        // claimed exactly once (sum check), none lost, none duplicated.
        const ITEMS: u32 = 10_000;
        let q = WsDeque::new(ITEMS as usize);
        let claimed = AtomicU64::new(0);
        let count = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| loop {
                    match q.steal() {
                        Some(v) => {
                            claimed.fetch_add(v as u64, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if count.load(Ordering::Relaxed) >= ITEMS as usize {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for v in 1..=ITEMS {
                q.push(v);
            }
            // the owner helps drain so the test terminates even if thieves
            // are descheduled
            while let Some(v) = q.pop() {
                claimed.fetch_add(v as u64, Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), ITEMS as usize);
        assert_eq!(
            claimed.load(Ordering::Relaxed),
            (ITEMS as u64) * (ITEMS as u64 + 1) / 2
        );
    }

    #[test]
    fn barrier_synchronizes_phases() {
        // 4 participants increment a counter per phase; after each barrier
        // crossing every thread must observe the full phase's increments.
        let barrier = SenseBarrier::new(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for phase in 1..=16usize {
                        counter.fetch_add(1, Ordering::Relaxed);
                        assert!(!barrier.wait(), "unexpected poison");
                        assert_eq!(counter.load(Ordering::Relaxed), phase * 4);
                        assert!(!barrier.wait(), "unexpected poison");
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn poison_releases_parked_waiters() {
        let barrier = SenseBarrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| barrier.wait());
            // Let the waiter reach the parked state, then poison instead of
            // arriving.
            std::thread::sleep(std::time::Duration::from_millis(10));
            barrier.poison();
            assert!(waiter.join().unwrap(), "poisoned wait must return true");
        });
        assert!(barrier.wait(), "poison is permanent");
    }
}
